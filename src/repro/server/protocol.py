"""The query server's wire protocol: length-prefixed JSON frames.

The inventory is an *online* artifact — §1's stakeholders "retrieve the
historical statistical summary … by querying for a specific location"
against a service, not a library.  This module fixes the bytes both ends
of that service speak:

::

    [4-byte big-endian unsigned length][UTF-8 JSON payload]

Requests are JSON objects ``{"id": …, "type": …, **params}``; responses
are ``{"id": …, "ok": true, "result": …}`` or ``{"id": …, "ok": false,
"error": {"code": …, "message": …}}``.  The length prefix makes framing
trivial and — crucially for a server — lets the reader reject an
oversized frame from its first four bytes, before buffering a byte of
payload.

Cell summaries do not travel as raw JSON: their sketch state round-trips
through the inventory's own binary codec
(:mod:`repro.inventory.codec`), base64-wrapped into the JSON envelope.
The codec is the format the SSTables persist, so a summary read back by
a client is bit-identical to what an in-process backend returns — the
server adds no serialisation of its own to trust.
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct
from collections.abc import Callable

from repro.inventory.codec import CodecError, decode, encode
from repro.inventory.summary import CellSummary

#: Hard ceiling on one frame's payload, server and client side.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

#: Request types the server understands (mirrors the CLI's query surface).
REQUEST_TYPES = (
    "ping",
    "stats",
    "summary_at",
    "top_destinations_at",
    "route_cells",
    "eta",
    "destination",
    "trace",
    "multi_get",
    "multi_query",
    "ingest",
)

#: The multi-request types: one frame carrying many sub-requests, answered
#: in order.  They amortise framing and round-trip cost; they do not nest.
MULTI_TYPES = ("multi_get", "multi_query")

#: Ceiling on sub-requests per multi frame (CPU fan-out guard; the byte
#: budget below bounds the *response*, this bounds the *work*).
MAX_MULTI_ITEMS = 1024

# Error codes carried in failure responses.
ERR_BAD_FRAME = "bad_frame"
ERR_FRAME_TOO_LARGE = "frame_too_large"
ERR_TRUNCATED = "truncated_frame"
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_TYPE = "unknown_type"
ERR_DEADLINE = "deadline_exceeded"
ERR_INTERNAL = "internal"
#: The stored table under the backend failed its checksums mid-query.
#: Clients get this typed error (and a live connection), never a wrong
#: answer and never a silently dropped socket.
ERR_CORRUPTION = "data_corruption"
#: A sharded deployment could not reach any endpoint (primary or
#: replica) of the shard owning the requested keys.  Like corruption,
#: this is a typed error on a live connection — the router answers
#: within its deadline, never a hang and never a dropped socket.
ERR_SHARD_UNAVAILABLE = "shard_unavailable"
#: The live backend's maintenance worker fell behind and the ingest
#: backpressure valve timed out: the batch was NOT applied (nothing was
#: logged to the WAL), so the client may simply retry after a pause.
#: A typed error on a live connection — never a hang, never a dropped
#: socket, never a silently shed write.
ERR_INGEST_BACKPRESSURE = "ingest_backpressure"


class ProtocolError(Exception):
    """A violation of the wire protocol, tagged with its error code.

    ``details``, when present, is a small JSON-safe dict carried in the
    error envelope so clients can react structurally (e.g. the offending
    sub-request index of a rejected multi frame) instead of parsing
    messages.
    """

    def __init__(
        self, code: str, message: str, details: dict | None = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.details = details


class FrameTooLargeError(ProtocolError):
    """A frame whose declared length exceeds the negotiated maximum."""

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(
            ERR_FRAME_TOO_LARGE,
            f"frame of {declared:,} bytes exceeds the {limit:,}-byte limit",
        )


class TruncatedFrameError(ProtocolError):
    """The peer closed the connection mid-frame."""

    def __init__(self, wanted: int, got: int) -> None:
        super().__init__(
            ERR_TRUNCATED, f"expected {wanted} more bytes, got {got}"
        )


class FanOutTooLargeError(ProtocolError):
    """A multi-request whose fan-out blows a size budget.

    Raised by the *service* while a multi frame is being answered, so the
    server converts it into a typed ``frame_too_large`` error response on
    a live connection — the client learns **which** sub-request to split
    the batch at (``details["index"]``, also named in the message)
    instead of losing the socket.
    """

    def __init__(self, index: int, message: str) -> None:
        super().__init__(ERR_FRAME_TOO_LARGE, message, details={"index": index})
        self.index = index


class BadRequestError(ProtocolError):
    """A structurally valid frame carrying an invalid request."""

    def __init__(self, message: str) -> None:
        super().__init__(ERR_BAD_REQUEST, message)


class ShardUnavailableError(ProtocolError):
    """Every endpoint of the shard owning a request's keys is down.

    Raised by the router's backend while a request is being answered, so
    the (router-fronting) server converts it into a typed
    ``shard_unavailable`` error response on a live connection.  The
    shard's name rides in ``details`` so operators can page the right
    pair of processes.
    """

    def __init__(self, shard: str, message: str) -> None:
        super().__init__(ERR_SHARD_UNAVAILABLE, message, details={"shard": shard})
        self.shard = shard


class IngestBackpressureError(ProtocolError):
    """The live backend refused a batch because maintenance fell behind.

    Raised by the service's write path when the backend's backpressure
    valve times out, so the server converts it into a typed
    ``ingest_backpressure`` error response on a live connection.  The
    batch was never applied (the valve sits before the WAL append), so
    retrying after a pause is always safe; the backlog shape rides in
    ``details`` so operators can tell a transient stall from a wedged
    worker.
    """

    def __init__(
        self,
        message: str,
        *,
        frozen_memtables: int = 0,
        debt_bytes: int = 0,
        waited_s: float = 0.0,
    ) -> None:
        super().__init__(
            ERR_INGEST_BACKPRESSURE,
            message,
            details={
                "frozen_memtables": frozen_memtables,
                "debt_bytes": debt_bytes,
                "waited_s": waited_s,
            },
        )


class UnknownRequestError(ProtocolError):
    """A request type the server does not implement."""

    def __init__(self, request_type: object) -> None:
        super().__init__(
            ERR_UNKNOWN_TYPE,
            f"unknown request type {request_type!r}; "
            f"expected one of {', '.join(REQUEST_TYPES)}",
        )


# -- framing ---------------------------------------------------------------------


def encode_frame(message: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one message to a length-prefixed frame."""
    payload = json.dumps(
        message, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(payload) > max_bytes:
        raise FrameTooLargeError(len(payload), max_bytes)
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame's payload; every message must be a JSON object."""
    try:
        message = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_FRAME, f"frame is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            ERR_BAD_FRAME, f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def read_frame_blocking(
    read: Callable[[int], bytes], max_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """Read one frame from a blocking byte source (``sock.makefile('rb').read``).

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`TruncatedFrameError` on EOF mid-frame and
    :class:`FrameTooLargeError` on an oversized declared length.
    """
    header = _read_exact(read, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(length, max_bytes)
    payload = _read_exact(read, length, allow_eof=False)
    assert payload is not None  # allow_eof=False raises instead
    return decode_payload(payload)


def _read_exact(
    read: Callable[[int], bytes], count: int, allow_eof: bool
) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = read(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise TruncatedFrameError(remaining, count - remaining)
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Same contract as :func:`read_frame_blocking`.  The length is checked
    before any payload is buffered, so a hostile 4 GiB declaration costs
    the server four bytes, not four gigabytes.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrameError(_LENGTH.size, len(exc.partial))
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(length, max_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(length, len(exc.partial))
    return decode_payload(payload)


# -- envelopes -------------------------------------------------------------------


def ok_response(request_id: object, result: dict) -> dict:
    """A success envelope."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: object,
    code: str,
    message: str,
    details: dict | None = None,
) -> dict:
    """A failure envelope (``details`` rides along when structured)."""
    error: dict = {"code": code, "message": message}
    if details is not None:
        error["details"] = details
    return {"id": request_id, "ok": False, "error": error}


# -- summary transport -----------------------------------------------------------


def summary_to_wire(summary: CellSummary) -> str:
    """A cell summary as a base64 string of its codec encoding."""
    return base64.b64encode(encode(summary.to_dict())).decode("ascii")


def summary_from_wire(text: str) -> CellSummary:
    """Reconstruct a summary sent by :func:`summary_to_wire`."""
    try:
        payload = decode(base64.b64decode(text.encode("ascii")))
    except (ValueError, CodecError) as exc:
        raise ProtocolError(ERR_BAD_FRAME, f"undecodable summary payload: {exc}")
    return CellSummary.from_dict(payload)
