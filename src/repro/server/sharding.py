"""Key-space sharding: the consistent-hash ring and the placement manifest.

One asyncio process over one SSTable set is a ceiling, not an
architecture.  This module splits the inventory key-space across N
*shards* so that N plain ``repro serve`` processes — none of which knows
it is a shard — can each own a slice of the key-space, and a router
(:mod:`repro.server.router`) can recombine their answers.

Three design decisions carry everything else:

- **Cells are the unit of placement.**  The ring hashes the *cell
  prefix* of the existing order-preserving SSTable key encoding
  (:func:`repro.inventory.sstable._key_bytes`), so every grouping-set
  key of one cell — plain, per-type, per-route — lands on the same
  shard.  Point lookups and the position queries built on them are
  always shard-local; only ``route_cells`` (whose cells span the map by
  construction) needs a scatter.
- **Consistent hashing with virtual nodes.**  Each shard owns ``vnodes``
  points on a 64-bit ring (BLAKE2b, stable across processes and
  platforms); a cell belongs to the first shard point at or after its
  hash.  Adding or removing one shard therefore moves only the cells in
  the ranges it gains or loses — roughly ``1/N`` of the key-space — not
  a full reshuffle.
- **The placement manifest is the unit of publication.**  Which shard
  serves which table (and under which ring parameters) is a small JSON
  document written through the :mod:`repro.inventory.fsio` atomic seam:
  temp → fsync → rename → dir-fsync.  A reader sees the old complete
  manifest or the new complete manifest, never a half-applied one — the
  property the router's snapshot-consistent topology swap builds on.

:func:`split_inventory` fans a combined table out into per-shard tables
(one sorted pass; per-shard key order is inherited from the global
order), and :func:`rebalance` recomputes the ring for a new shard set
and re-splits, bumping the manifest version.  The combined table stays
the readable single-node reference: a build with ``shards=1`` touches
none of this.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import struct
from contextlib import ExitStack
from dataclasses import dataclass
from pathlib import Path

from repro.inventory import fsio
from repro.inventory.sstable import SSTableReader, SSTableWriter, _key_bytes
from repro.inventory.keys import GroupKey

#: Manifest format tag (bumped only on incompatible schema changes).
PLACEMENT_FORMAT = "repro-placement-v1"

#: Default virtual nodes per shard — enough that a 4-shard ring keeps
#: per-shard load within a few percent of even for realistic cell counts.
DEFAULT_VNODES = 64

_POINT = struct.Struct(">Q")


def _stable_hash(data: bytes) -> int:
    """A 64-bit position on the ring, stable across runs and platforms."""
    return _POINT.unpack(hashlib.blake2b(data, digest_size=8).digest())[0]


def cell_token(cell: int) -> bytes:
    """The bytes a cell is hashed by: the cell's own order-preserving
    SSTable key prefix, so placement and storage agree on identity."""
    return _key_bytes(GroupKey(cell=cell))


class HashRing:
    """A consistent-hash ring mapping cells to shard indices.

    Deterministic in its inputs: two rings built from the same shard
    names and ``vnodes`` agree on every assignment, which is what lets
    the build side (splitting tables) and the serve side (routing
    queries) be separate processes with no coordination beyond the
    placement manifest.
    """

    def __init__(self, shard_names: list[str] | tuple[str, ...], vnodes: int = DEFAULT_VNODES) -> None:
        if not shard_names:
            raise ValueError("a ring needs at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ValueError(f"duplicate shard names: {list(shard_names)}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.shard_names = tuple(shard_names)
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for index, name in enumerate(self.shard_names):
            for vnode in range(vnodes):
                token = f"{name}#{vnode}".encode("utf-8")
                points.append((_stable_hash(token), index))
        # Ties between two shards' vnodes (astronomically unlikely with
        # 64-bit points) resolve by shard index, deterministically.
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def __len__(self) -> int:
        return len(self.shard_names)

    def primary(self, cell: int) -> int:
        """The shard index owning a cell (first point clockwise)."""
        position = _stable_hash(cell_token(cell))
        index = bisect.bisect_left(self._hashes, position)
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._points[index][1]

    def owners(self, cell: int, count: int = 2) -> tuple[int, ...]:
        """The first ``count`` *distinct* shards clockwise from a cell.

        ``owners(cell)[0] == primary(cell)``; successors are where
        replicated placements would put further copies of the range.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        count = min(count, len(self.shard_names))
        position = _stable_hash(cell_token(cell))
        start = bisect.bisect_left(self._hashes, position)
        seen: list[int] = []
        for step in range(len(self._points)):
            shard = self._points[(start + step) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == count:
                    break
        return tuple(seen)


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the placement: its name and its table."""

    name: str
    table: str
    entries: int


@dataclass(frozen=True)
class Placement:
    """The placement manifest: which shard serves which table, and the
    ring parameters that make cell ownership reproducible anywhere.

    Immutable — a rebalance produces a *new* placement with ``version``
    bumped; the router swaps whole placements atomically, never edits
    one in place.
    """

    version: int
    resolution: int
    vnodes: int
    shards: tuple[ShardSpec, ...]
    source: str | None = None

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"placement version must be >= 1, got {self.version}")
        if not self.shards:
            raise ValueError("a placement needs at least one shard")

    def ring(self) -> HashRing:
        """The (deterministic) ring for this placement."""
        return HashRing([spec.name for spec in self.shards], self.vnodes)

    def shard_names(self) -> tuple[str, ...]:
        """Shard names in ring order."""
        return tuple(spec.name for spec in self.shards)

    def total_entries(self) -> int:
        """Entries across every shard table (== the source table's)."""
        return sum(spec.entries for spec in self.shards)

    def to_json(self) -> dict:
        """The manifest as a JSON-ready dict."""
        return {
            "format": PLACEMENT_FORMAT,
            "version": self.version,
            "resolution": self.resolution,
            "vnodes": self.vnodes,
            "source": self.source,
            "shards": [
                {"name": spec.name, "table": spec.table, "entries": spec.entries}
                for spec in self.shards
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Placement":
        """Inverse of :meth:`to_json` (validates the format tag)."""
        if payload.get("format") != PLACEMENT_FORMAT:
            raise ValueError(
                f"not a placement manifest (format {payload.get('format')!r}, "
                f"expected {PLACEMENT_FORMAT!r})"
            )
        return cls(
            version=int(payload["version"]),
            resolution=int(payload["resolution"]),
            vnodes=int(payload["vnodes"]),
            source=payload.get("source"),
            shards=tuple(
                ShardSpec(
                    name=str(entry["name"]),
                    table=str(entry["table"]),
                    entries=int(entry["entries"]),
                )
                for entry in payload["shards"]
            ),
        )


def placement_path(output: str | Path) -> Path:
    """Where a build publishes the placement manifest for ``output``."""
    output = Path(output)
    return output.with_name(output.name + ".placement.json")


def save_placement(path: str | Path, placement: Placement) -> None:
    """Publish a manifest through the fsio atomic seam (readers only
    ever observe a complete manifest)."""
    payload = json.dumps(placement.to_json(), indent=2, sort_keys=True) + "\n"
    fsio.atomic_write_bytes(path, payload.encode("utf-8"))


def load_placement(path: str | Path) -> Placement:
    """Read a manifest written by :func:`save_placement`."""
    with open(path, "rb") as handle:
        return Placement.from_json(json.loads(handle.read().decode("utf-8")))


def shard_table_path(output: str | Path, name: str, version: int) -> Path:
    """The table path for one shard of one placement version.

    Version 1 (the build's own split) keeps the short ``<out>.<shard>``
    name; rebalanced splits are tagged ``<out>.v<version>.<shard>`` so a
    new generation of tables never overwrites one still being served.
    """
    output = Path(output)
    tag = f".v{version}" if version > 1 else ""
    return output.with_name(f"{output.name}{tag}.{name}")


def default_shard_names(shards: int) -> list[str]:
    """The conventional shard naming: ``shard-0`` … ``shard-N-1``."""
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    return [f"shard-{index}" for index in range(shards)]


def split_inventory(
    source: str | Path,
    resolution: int,
    shards: int | list[str] = 4,
    vnodes: int = DEFAULT_VNODES,
    version: int = 1,
) -> Placement:
    """Fan a combined table out into per-shard tables + a manifest.

    One sorted scan of ``source``; each entry is appended to the table
    of the shard owning its *cell*, so per-shard tables are sorted for
    free and every grouping-set key of a cell is colocated.  Tables are
    written through :class:`SSTableWriter` (staged, checksummed, atomic)
    and the manifest is published last — a crash mid-split leaves the
    previous placement generation fully intact.

    Returns the new :class:`Placement`; the manifest itself is written
    to :func:`placement_path` of ``source``  only by callers that want
    it published (see :func:`publish_split`).
    """
    source = Path(source)
    names = (
        default_shard_names(shards) if isinstance(shards, int) else list(shards)
    )
    ring = HashRing(names, vnodes)
    paths = [shard_table_path(source, name, version) for name in names]
    counts = [0] * len(names)
    with ExitStack() as stack:
        reader = stack.enter_context(SSTableReader(source))
        writers = [stack.enter_context(SSTableWriter(path)) for path in paths]
        for key, summary in reader.scan():
            shard = ring.primary(key.cell)
            writers[shard].add(key, summary)
            counts[shard] += 1
    return Placement(
        version=version,
        resolution=resolution,
        vnodes=vnodes,
        source=source.name,
        shards=tuple(
            ShardSpec(name=name, table=path.name, entries=count)
            for name, path, count in zip(names, paths, counts)
        ),
    )


def publish_split(
    source: str | Path,
    resolution: int,
    shards: int | list[str] = 4,
    vnodes: int = DEFAULT_VNODES,
) -> Placement:
    """Split ``source`` and atomically publish the placement manifest
    next to it (the build-side entry point behind
    ``build_inventory(..., shards=N)`` and ``repro build --shards``)."""
    placement = split_inventory(source, resolution, shards=shards, vnodes=vnodes)
    save_placement(placement_path(source), placement)
    return placement


def rebalance(
    current: Placement,
    source: str | Path,
    shards: int | list[str],
) -> Placement:
    """Recompute the ring for a new shard set and re-split the source.

    The shard-join/leave procedure: tables for the *new* generation are
    written under version-tagged names (never over tables still being
    served), and the returned placement carries ``version + 1``.  The
    caller publishes it with :func:`save_placement` once the new shard
    servers are up; routers that reload the manifest swap atomically.
    """
    names = (
        default_shard_names(shards) if isinstance(shards, int) else list(shards)
    )
    if list(names) == list(current.shard_names()):
        raise ValueError("rebalance requires a changed shard set")
    return split_inventory(
        source,
        current.resolution,
        shards=names,
        vnodes=current.vnodes,
        version=current.version + 1,
    )
