"""The concurrent query server: asyncio framing around a threaded core.

Architecture — one event loop, one worker pool, one shared backend:

- the **event loop** owns all sockets.  Per connection it reads frames
  (under an idle timeout), writes responses, and nothing else — so a
  thousand mostly-idle clients cost a thousand coroutines, not threads;
- each request is answered on a **worker thread**
  (``run_in_executor``), because a point lookup is blocking file I/O.
  The pool is sized to ``max_concurrency``, matching the semaphore;
- a **semaphore** bounds in-flight requests.  Excess requests queue *in
  the loop*, cheaply, and their wait counts against the same deadline as
  their execution — under overload clients get fast ``deadline_exceeded``
  errors instead of unbounded queueing (backpressure, not buffering);
- **per-request deadlines** (``asyncio.wait_for``) and **per-connection
  read timeouts** keep one slow consumer or one stalled/malformed writer
  from pinning resources: a frame that stops arriving hits the idle
  timeout, an oversized frame is rejected from its length prefix, and
  in both cases only *that* connection is dropped;
- **graceful drain**: shutdown stops accepting, lets every in-flight
  request finish and flush its response (up to ``drain_timeout_s``),
  then cancels idle readers.

The fault-isolation tests in ``tests/test_server.py`` pin each of these
properties with hostile clients.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import errno
import logging
import threading
import time
from types import TracebackType
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.inventory.sstable import CorruptionError
from repro.obs import registry
from repro.obs import trace as obs
from repro.obs.exposition import MetricsExporter, server_exposition
from repro.server import protocol
from repro.server.service import InventoryService
from repro.server.metrics import ServerMetrics

#: One request end-to-end on the server; queue wait + handler + encoding.
SPAN_REQUEST = registry.register_span(
    "server.request",
    "one request end-to-end on the server: semaphore queue wait + handler "
    "+ response assembly (attrs: type, queue_wait_ms, status code on error)",
)
#: Just the handler body, on a worker thread — subtract from
#: ``server.request`` to see protocol/queueing overhead.
SPAN_HANDLE = registry.register_span(
    "server.handle",
    "the handler body of one request, on a worker thread (attrs: type); "
    "server.request minus server.handle is queueing + framing overhead",
)

#: One WARNING line per over-threshold request (``--slow-request-ms``).
_slowlog = logging.getLogger("repro.server.slowlog")


@dataclass(frozen=True)
class ServerConfig:
    """Tunable limits; the defaults suit tests and small deployments."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the kernel pick (the bound port is reported)
    max_concurrency: int = 16
    request_timeout_s: float = 10.0
    idle_timeout_s: float = 30.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    drain_timeout_s: float = 5.0
    #: Successful requests slower than this are logged (one WARNING line
    #: on ``repro.server.slowlog``) and counted; ``None`` disables.
    slow_request_s: float | None = None
    #: Extra bind attempts when the requested (non-zero) port is still in
    #: TIME_WAIT or briefly held — parallel CI runners starting many
    #: servers hit this window; with ``port=0`` the kernel picks and no
    #: retry is needed.  0 disables (first EADDRINUSE raises).
    bind_retries: int = 5
    bind_retry_delay_s: float = 0.2

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if self.request_timeout_s <= 0 or self.idle_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.slow_request_s is not None and self.slow_request_s < 0:
            raise ValueError("slow_request_s must be >= 0 (or None)")
        if self.bind_retries < 0 or self.bind_retry_delay_s < 0:
            raise ValueError("bind retry settings must be >= 0")


class _Connection:
    """Book-keeping for one client: its task and whether a request is
    currently being answered (the unit graceful drain waits on)."""

    __slots__ = ("task", "busy")

    def __init__(self) -> None:
        self.task: asyncio.Task | None = None
        self.busy = False


class InventoryServer:
    """Serves an :class:`~repro.server.service.InventoryService` over TCP."""

    def __init__(
        self, service: InventoryService, config: ServerConfig | None = None
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._connections: set[_Connection] = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        # A fixed port can sit in TIME_WAIT between back-to-back test
        # servers (or be transiently held by a sibling CI runner); retry
        # a few times before giving up.  Port 0 never collides.
        attempts = 1 + (self.config.bind_retries if self.config.port else 0)
        for attempt in range(attempts):
            try:
                self._server = await asyncio.start_server(
                    self._serve_connection, self.config.host, self.config.port
                )
                break
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE or attempt == attempts - 1:
                    raise
                await asyncio.sleep(self.config.bind_retry_delay_s)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative when port 0 was asked."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        """Block until the server is shut down."""
        if self._server is None:
            raise RuntimeError("server is not started")
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests,
        then drop idle connections."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + self.config.drain_timeout_s
        while (
            any(conn.busy for conn in self._connections)
            and self._loop.time() < deadline
        ):
            await asyncio.sleep(0.01)
        # Whatever is left is either idle (blocked reading the next
        # frame) or past the drain deadline: cancel and reap.
        tasks = [conn.task for conn in self._connections if conn.task is not None]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection handling -------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection()
        conn.task = asyncio.current_task()
        self._connections.add(conn)
        self.metrics.connection_opened()
        try:
            await self._connection_loop(conn, reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown reaping an idle or overdue connection
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # peer vanished mid-write; nothing to tell it
        finally:
            self._connections.discard(conn)
            self.metrics.connection_closed()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _connection_loop(
        self,
        conn: _Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while not self._draining:
            try:
                frame = await asyncio.wait_for(
                    protocol.read_frame(reader, self.config.max_frame_bytes),
                    self.config.idle_timeout_s,
                )
            except asyncio.TimeoutError:
                break  # idle client: reclaim the connection
            except protocol.ProtocolError as exc:
                # Framing is broken (oversized/truncated/non-JSON): the
                # stream cannot be resynchronised, so answer and close.
                self.metrics.record_error("?", exc.code)
                with contextlib.suppress(Exception):
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_response(None, exc.code, str(exc))
                        )
                    )
                    await writer.drain()
                break
            if frame is None:
                break  # clean EOF
            conn.busy = True
            try:
                response = await self._respond(frame)
                try:
                    payload = protocol.encode_frame(
                        response, self.config.max_frame_bytes
                    )
                except protocol.FrameTooLargeError as exc:
                    # The *answer* blew the frame budget (a huge route):
                    # tell the client cleanly rather than killing the task.
                    self.metrics.record_error("?", exc.code)
                    payload = protocol.encode_frame(
                        protocol.error_response(frame.get("id"), exc.code, str(exc))
                    )
                writer.write(payload)
                await writer.drain()
            finally:
                conn.busy = False

    async def _respond(self, request: dict) -> dict:
        request_id = request.get("id")
        request_type = request.get("type")
        label = request_type if isinstance(request_type, str) else "?"
        started = time.perf_counter()
        with obs.span(SPAN_REQUEST, type=label) as sp:
            try:
                result = await asyncio.wait_for(
                    self._process(request, sp), self.config.request_timeout_s
                )
            except asyncio.TimeoutError:
                sp.set("code", protocol.ERR_DEADLINE)
                self.metrics.record_error(label, protocol.ERR_DEADLINE)
                return protocol.error_response(
                    request_id,
                    protocol.ERR_DEADLINE,
                    f"request exceeded the "
                    f"{self.config.request_timeout_s:g}s deadline",
                )
            except protocol.ProtocolError as exc:
                sp.set("code", exc.code)
                self.metrics.record_error(label, exc.code)
                if (
                    label in protocol.MULTI_TYPES
                    and exc.code == protocol.ERR_FRAME_TOO_LARGE
                ):
                    self.metrics.record_multi_rejected()
                return protocol.error_response(
                    request_id, exc.code, str(exc), details=exc.details
                )
            except CorruptionError as exc:
                # The stored table failed a checksum under this query.  The
                # client gets a typed error on a live connection — never a
                # wrong answer, never a dead socket — and the corruption
                # counter flags the table for `repro fsck`.
                sp.set("code", protocol.ERR_CORRUPTION)
                self.metrics.record_error(label, protocol.ERR_CORRUPTION)
                self.metrics.record_corruption(label)
                return protocol.error_response(
                    request_id, protocol.ERR_CORRUPTION, str(exc)
                )
            except Exception as exc:  # noqa: BLE001 - the wire gets a clean error
                sp.set("code", protocol.ERR_INTERNAL)
                self.metrics.record_error(label, protocol.ERR_INTERNAL)
                return protocol.error_response(
                    request_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            elapsed = time.perf_counter() - started
            self.metrics.record_request(label, elapsed)
            if label in protocol.MULTI_TYPES:
                items = request.get(
                    "keys" if label == "multi_get" else "requests"
                )
                if isinstance(items, list):
                    self.metrics.record_batched(len(items))
            slow_after = self.config.slow_request_s
            if slow_after is not None and elapsed >= slow_after:
                self.metrics.record_slow(label)
                _slowlog.warning(
                    "slow request: type=%s id=%r took %.1fms (threshold %.1fms)",
                    label, request_id, elapsed * 1e3, slow_after * 1e3,
                )
            return protocol.ok_response(request_id, result)

    async def _process(
        self, request: dict, sp: obs.SpanLike = obs.NOOP_SPAN
    ) -> dict:
        # The semaphore wait happens inside the request deadline: a
        # request that cannot be *started* in time fails fast instead of
        # queueing forever — that is the backpressure contract.
        queued = time.perf_counter()
        async with self._semaphore:
            waited = time.perf_counter() - queued
            self.metrics.record_queue_wait(waited)
            sp.set("queue_wait_ms", round(waited * 1e3, 3))
            if obs.enabled():
                # Worker threads do not inherit this task's contextvars:
                # carry the request span's context across the executor
                # boundary so handler-side spans (inventory.get,
                # sstable.read_block) nest under this request.
                rtype = request.get("type")
                label = rtype if isinstance(rtype, str) else "?"
                context = contextvars.copy_context()

                def _handle_traced() -> dict:
                    with obs.span(SPAN_HANDLE, type=label):
                        return self.service.handle(request)

                result = await self._loop.run_in_executor(
                    self._executor, context.run, _handle_traced
                )
            else:
                result = await self._loop.run_in_executor(
                    self._executor, self.service.handle, request
                )
        if request.get("type") == "stats":
            result = dict(result)
            result["server"] = self.metrics.snapshot()
        return result

    def exposition(self) -> str:
        """The ``/metrics`` payload: server counters/latency gauges plus
        the backend's block-cache counters when it has them."""
        cache = None
        cache_stats = getattr(
            getattr(self.service, "inventory", None), "cache_stats", None
        )
        if callable(cache_stats):
            cache = cache_stats()
        return server_exposition(self.metrics.snapshot(), cache)


async def serve(
    service: InventoryService,
    config: ServerConfig | None = None,
    metrics_port: int | None = None,
) -> None:
    """Start a server and run it until cancelled (the CLI entry point).

    ``metrics_port`` additionally stands up a Prometheus-style
    ``GET /metrics`` HTTP endpoint on that port (0 = kernel-assigned)
    exposing the server's counters and latency/queue-wait gauges.
    """
    server = InventoryServer(service, config)
    await server.start()
    host, port = server.address
    print(f"serving on {host}:{port} "
          f"(max {server.config.max_concurrency} in-flight, "
          f"{server.config.request_timeout_s:g}s deadline)")
    exporter = None
    if metrics_port is not None:
        exporter = MetricsExporter(
            server.exposition, host=server.config.host, port=metrics_port
        )
        metrics_host, bound = exporter.start()
        print(f"metrics on http://{metrics_host}:{bound}/metrics")
    try:
        await server.serve_forever()
    finally:
        if exporter is not None:
            exporter.stop()
        await server.shutdown()


class ServerThread:
    """A server on a background event-loop thread, for sync callers.

    Tests, benchmarks and notebooks use this to stand up a real TCP
    server without touching asyncio::

        with ServerThread(InventoryService(backend)) as handle:
            client = InventoryClient(*handle.address)

    Entering starts the loop and waits for the bound address; exiting
    performs the same graceful drain as a signal-stopped CLI server.
    """

    def __init__(
        self, service: InventoryService, config: ServerConfig | None = None
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.server: InventoryServer | None = None
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ServerThread":
        """Start the loop thread and block until the server is bound."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._failure is not None:
            self._thread.join()
            raise self._failure
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = InventoryServer(self.service, self.config)
        try:
            await server.start()
        except BaseException as exc:
            self._failure = exc
            self._ready.set()
            return
        self.server = server
        self.address = server.address
        self._ready.set()
        await self._stop.wait()
        await server.shutdown()

    def stop(self) -> None:
        """Request a graceful drain and wait for the loop to finish."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()
