"""The scatter-gather router: N shard servers behind one query surface.

:class:`ShardedInventory` is a :class:`~repro.inventory.backend.QueryableInventory`
whose storage happens to be other servers.  It subclasses
:class:`~repro.inventory.backend.InventoryQueryMixin`, so every position
query reduces to :meth:`ShardedInventory.get` — which forwards the exact
key to the shard owning its cell — and routed answers are byte-identical
to single-node answers *by construction*: the same mixin code runs over
the same point lookups, and summaries travel the wire as the codec's own
bytes.  Fronted by the ordinary :class:`~repro.server.InventoryServer` +
:class:`~repro.server.InventoryService`, the router is just another
backend; shard servers are just ordinary ``repro serve`` processes that
never learn they are shards.

Routing shapes:

- **point lookups** (``summary_at`` / ``top_destinations_at`` / ``eta``)
  are cell-local by the ring's construction, so they cost one forwarded
  request to one shard;
- **``multi_get``** batches are grouped by owning shard and forwarded as
  one sub-``multi_get`` per shard (the
  :meth:`ShardedInventory.multi_summary_at` hook the service discovers),
  so a B-key batch costs ``min(B, shards)`` round trips, not B;
- **``route_cells``** scatters to every shard and unions the disjoint
  partial answers in cell order — the single-node serialization order.

Availability model — primary + replica per shard, trip-wire health:

- every shard endpoint carries a consecutive-failure count fed by both
  the request path and a background prober; at ``failure_threshold`` the
  endpoint trips to DOWN (``router.shard_down``) and the request path
  stops offering it traffic (fast-fail to the replica, no per-request
  connect timeout against a dead host);
- a read that lands on any endpoint past the first counts one
  ``router.failover``; when *every* endpoint of the owning shard is
  down, the request fails fast with the typed ``shard_unavailable``
  error on a live connection — never a hang past the deadline;
- DOWN endpoints recover only through the prober (``router.shard_up``),
  so one slow endpoint cannot flap in and out of rotation on the hot
  path.

Rebalancing is snapshot-consistent: the ring, shard set and endpoint
health live in one immutable :class:`Topology`; every request captures
one reference up front, and :meth:`ShardedInventory.apply_placement`
swaps in a whole new topology built from a new placement manifest — no
request ever observes a half-applied placement.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, TypeVar

from repro.engine.metrics import CounterSet
from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.inventory.backend import InventoryQueryMixin
from repro.inventory.keys import GroupKey
from repro.inventory.summary import CellSummary
from repro.obs import registry
from repro.obs import trace as obs
from repro.server import protocol
from repro.server.client import InventoryClient, ServerError
from repro.server.protocol import FanOutTooLargeError, ShardUnavailableError
from repro.server.sharding import Placement

T = TypeVar("T")

#: One routed point lookup (attrs: shard; failover set when a replica
#: answered).
SPAN_LOOKUP = registry.register_span(
    "router.lookup",
    "one routed point lookup on the shard owning the key's cell "
    "(attrs: shard; failover=True when a non-primary endpoint answered)",
)
#: One scatter-gather across every shard (attrs: type, shards).
SPAN_SCATTER = registry.register_span(
    "router.scatter",
    "one scatter-gather request fanned out to every shard "
    "(attrs: type, shards)",
)
#: Reads answered by an endpoint other than the first (the failover
#: trip of the primary/replica pair).
FAILOVER = registry.register_counter(
    "router.failover",
    "routed reads answered by a non-primary endpoint after the primary "
    "failed or was marked down",
)
SHARD_DOWN = registry.register_counter(
    "router.shard_down",
    "endpoint trips to DOWN: consecutive failures reached the threshold",
)
SHARD_UP = registry.register_counter(
    "router.shard_up",
    "endpoint recoveries: a health probe succeeded against a DOWN endpoint",
)
UNAVAILABLE = registry.register_counter(
    "router.unavailable",
    "requests failed typed shard_unavailable: no live endpoint for the "
    "owning shard",
)
RELOADS = registry.register_counter(
    "router.reloads",
    "placement reloads applied (topology swaps, including rebalances)",
)
PROBES = registry.register_counter(
    "router.health_probes",
    "background health probes issued against shard endpoints",
)

#: Error codes that indict the *endpoint*, not the request — the ones
#: worth a failover.  Anything else (bad_request, data_corruption, …) is
#: an application answer and propagates unchanged.
_RETRYABLE_CODES = frozenset(
    {protocol.ERR_TRUNCATED, protocol.ERR_DEADLINE, protocol.ERR_INTERNAL}
)


def _is_endpoint_failure(exc: Exception) -> bool:
    """Does this exception mean "try the replica" rather than "answer"?"""
    if isinstance(exc, ServerError):
        return exc.code in _RETRYABLE_CODES
    return isinstance(exc, (OSError, protocol.ProtocolError))


class _Pool:
    """A tiny thread-safe pool of :class:`InventoryClient` connections to
    one endpoint (the fronting server answers on many worker threads, and
    one client is one connection)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        connect_timeout: float,
        max_idle: int = 4,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_idle = max_idle
        self._idle: list[InventoryClient] = []
        self._lock = threading.Lock()
        self._closed = False

    def acquire(self) -> InventoryClient:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return InventoryClient(
            self.host,
            self.port,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
        )

    def release(self, client: InventoryClient) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(client)
                return
        client.close()

    def close(self) -> None:
        """Close idle connections; borrowed ones close on release."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()


class Endpoint:
    """One serving address of a shard, with its trip-wire health state.

    The state machine: **UP** (failures == 0) → **SUSPECT** (some
    consecutive failures, still offered traffic) → **DOWN** (failures
    reached the threshold; skipped by the request path) → back to **UP**
    only via a successful health probe.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        connect_timeout: float,
        failure_threshold: int,
    ) -> None:
        self.host = host
        self.port = port
        self.failure_threshold = failure_threshold
        self.pool = _Pool(host, port, timeout, connect_timeout)
        self._lock = threading.Lock()
        self._failures = 0
        self._down = False

    @property
    def address(self) -> str:
        """The endpoint as ``host:port`` (for stats and messages)."""
        return f"{self.host}:{self.port}"

    @property
    def down(self) -> bool:
        """True when the trip wire has removed this endpoint from rotation."""
        with self._lock:
            return self._down

    @property
    def state(self) -> str:
        """The health state name: ``up``, ``suspect`` or ``down``."""
        with self._lock:
            if self._down:
                return "down"
            return "suspect" if self._failures else "up"

    def record_success(self) -> bool:
        """Reset the failure count; True if this flipped DOWN → UP."""
        with self._lock:
            recovered = self._down
            self._down = False
            self._failures = 0
        return recovered

    def record_failure(self) -> bool:
        """Count one failure; True if this tripped the endpoint DOWN."""
        with self._lock:
            if self._down:
                return False
            self._failures += 1
            self._down = self._failures >= self.failure_threshold
            return self._down

    def stats(self) -> dict:
        """One endpoint row of the router's ``shard_stats()``."""
        with self._lock:
            return {
                "address": self.address,
                "state": "down" if self._down else ("suspect" if self._failures else "up"),
                "consecutive_failures": self._failures,
            }


class ShardState:
    """One shard of one topology: its table slice and its endpoints
    (first endpoint is the primary, the rest are replicas)."""

    def __init__(
        self, name: str, table: str, entries: int, endpoints: tuple[Endpoint, ...]
    ) -> None:
        if not endpoints:
            raise ValueError(f"shard {name!r} needs at least one endpoint")
        self.name = name
        self.table = table
        self.entries = entries
        self.endpoints = endpoints


class Topology:
    """One immutable routing snapshot: placement version, ring, shards.

    Requests capture a single ``Topology`` reference up front and use
    only it — the swap in :meth:`ShardedInventory.apply_placement` is
    one attribute assignment, so a request sees the whole old placement
    or the whole new one, never a mixture.
    """

    def __init__(self, placement: Placement, shards: tuple[ShardState, ...]) -> None:
        self.placement = placement
        self.version = placement.version
        self.resolution = placement.resolution
        self.ring = placement.ring()
        self.shards = shards

    def owner(self, cell: int) -> ShardState:
        """The shard serving a cell (primary ring owner)."""
        return self.shards[self.ring.primary(cell)]

    def close(self) -> None:
        """Close every endpoint's idle connections (borrowed ones close
        as they are released)."""
        for shard in self.shards:
            for endpoint in shard.endpoints:
                endpoint.pool.close()


class ShardedInventory(InventoryQueryMixin):
    """A queryable inventory backed by N shard servers.

    ``addresses`` maps each placement shard name to its serving
    endpoints as ``(host, port)`` pairs — the first is the primary, any
    further ones are replicas (other servers of the same shard table).
    Duck-compatible with :class:`~repro.inventory.backend.QueryableInventory`
    for everything the serving stack uses, so the ordinary
    :class:`~repro.server.InventoryService` (and through it the ETA and
    destination apps) runs unmodified on top.
    """

    def __init__(
        self,
        placement: Placement,
        addresses: dict[str, list[tuple[str, int]]],
        timeout: float = 30.0,
        connect_timeout: float = 2.0,
        failure_threshold: int = 3,
        probe_interval_s: float | None = None,
    ) -> None:
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.failure_threshold = failure_threshold
        self.counters = CounterSet()
        self.resolution = placement.resolution
        self._swap_lock = threading.Lock()
        self._topology = self._build_topology(placement, addresses)
        self._retired: list[Topology] = []
        self._prober: threading.Thread | None = None
        self._stop_probing = threading.Event()
        if probe_interval_s is not None:
            self.start_probing(probe_interval_s)

    # -- topology ------------------------------------------------------------------

    def _build_topology(
        self, placement: Placement, addresses: dict[str, list[tuple[str, int]]]
    ) -> Topology:
        missing = [
            spec.name for spec in placement.shards if not addresses.get(spec.name)
        ]
        if missing:
            raise ValueError(
                f"no addresses for placement shards: {', '.join(missing)}"
            )
        shards = tuple(
            ShardState(
                spec.name,
                spec.table,
                spec.entries,
                tuple(
                    Endpoint(
                        host,
                        port,
                        self.timeout,
                        self.connect_timeout,
                        self.failure_threshold,
                    )
                    for host, port in addresses[spec.name]
                ),
            )
            for spec in placement.shards
        )
        return Topology(placement, shards)

    @property
    def topology(self) -> Topology:
        """The current routing snapshot (capture once per request)."""
        return self._topology

    def apply_placement(
        self, placement: Placement, addresses: dict[str, list[tuple[str, int]]]
    ) -> None:
        """Swap in a new placement atomically (rebalance / shard join /
        shard leave).  In-flight requests finish on the topology they
        captured; the old topology's idle connections are closed and
        borrowed ones close as they are released."""
        topology = self._build_topology(placement, addresses)
        with self._swap_lock:
            old = self._topology
            self._topology = topology
            self.resolution = placement.resolution
            self._retired.append(old)
        old.close()
        self.counters.increment(RELOADS)

    # -- shard calls ---------------------------------------------------------------

    def _call(self, shard: ShardState, op: Callable[[InventoryClient], T]) -> T:
        """Run one operation against a shard: primary first, then
        replicas, skipping endpoints already tripped DOWN.

        Raises :class:`ShardUnavailableError` when no endpoint answers —
        fast when all are already down (no connection attempts), and in
        any case bounded by the endpoints' own timeouts, so the fronting
        server's deadline converts slow failure into a typed error, not
        a hang."""
        live = [e for e in shard.endpoints if not e.down]
        if not live:
            self.counters.increment(UNAVAILABLE)
            raise ShardUnavailableError(
                shard.name,
                f"shard {shard.name!r}: all {len(shard.endpoints)} "
                f"endpoints are down",
            )
        last: Exception | None = None
        for endpoint in live:
            client: InventoryClient | None = None
            try:
                client = endpoint.pool.acquire()
                result = op(client)
            except Exception as exc:  # noqa: BLE001 - classified below
                if not _is_endpoint_failure(exc):
                    # An application answer (bad_request, corruption…):
                    # the endpoint — and its connection — are healthy.
                    if client is not None:
                        endpoint.pool.release(client)
                    endpoint.record_success()
                    raise
                if client is not None:
                    client.close()
                if endpoint.record_failure():
                    self.counters.increment(SHARD_DOWN)
                last = exc
                continue
            endpoint.pool.release(client)
            endpoint.record_success()
            if endpoint is not shard.endpoints[0]:
                self.counters.increment(FAILOVER)
            return result
        self.counters.increment(UNAVAILABLE)
        raise ShardUnavailableError(
            shard.name,
            f"shard {shard.name!r}: no endpoint answered "
            f"(last error: {last})",
        )

    # -- the QueryableInventory surface --------------------------------------------

    def get(self, key: GroupKey) -> CellSummary | None:
        """Forward an exact-key lookup to the shard owning its cell.

        The wire protocol speaks positions, not keys, so the lookup
        travels as ``summary_at`` of the cell's own center — which maps
        back to the same cell at the placement's resolution.  Every
        mixin position query therefore routes through here unchanged.
        """
        if key.origin is not None and key.vessel_type is None:
            # No grouping set stores origin without vessel type; the
            # single-node backend answers None without a wire trip.
            return None
        topology = self._topology
        shard = topology.owner(key.cell)
        lat, lon = cell_to_latlng(key.cell)
        with obs.span(SPAN_LOOKUP, shard=shard.name):
            return self._call(
                shard,
                lambda client: client.summary_at(
                    lat,
                    lon,
                    vessel_type=key.vessel_type,
                    origin=key.origin,
                    destination=key.destination,
                ),
            )

    def top_destinations_at(
        self, lat: float, lon: float, vessel_type: str | None = None, n: int = 5
    ) -> list[tuple[str, int]]:
        """Forward the whole query to the owning shard: its mixin runs
        the identical fallback logic (typed summary, then plain) against
        local lookups, one round trip instead of two."""
        topology = self._topology
        shard = topology.owner(latlng_to_cell(lat, lon, topology.resolution))
        with obs.span(SPAN_LOOKUP, shard=shard.name):
            return self._call(
                shard,
                lambda client: client.top_destinations_at(
                    lat, lon, vessel_type=vessel_type, n=n
                ),
            )

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """Scatter to every shard; union the disjoint partial answers in
        ascending cell order — the single-node serialization order."""
        topology = self._topology
        merged: dict[int, CellSummary] = {}
        with obs.span(SPAN_SCATTER, type="route_cells", shards=len(topology.shards)):
            for shard in topology.shards:
                partial = self._call(
                    shard,
                    lambda client: client.route_cells(
                        origin, destination, vessel_type
                    ),
                )
                merged.update(partial)
        return dict(sorted(merged.items()))

    def multi_summary_at(self, keys: list[dict]) -> list[CellSummary | None]:
        """Answer a validated ``multi_get`` batch: group keys by owning
        shard, forward one sub-``multi_get`` per shard, reassemble in
        request order.  The service hook that collapses a B-key batch
        from B forwarded lookups to ``min(B, shards)`` round trips."""
        topology = self._topology
        by_shard: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            cell = latlng_to_cell(
                float(key["lat"]), float(key["lon"]), topology.resolution
            )
            by_shard.setdefault(topology.ring.primary(cell), []).append(index)
        answers: list[CellSummary | None] = [None] * len(keys)
        with obs.span(SPAN_SCATTER, type="multi_get", shards=len(by_shard)):
            for shard_index, indices in by_shard.items():
                shard = topology.shards[shard_index]
                subset = [keys[i] for i in indices]
                try:
                    partial = self._call(
                        shard,
                        lambda client, subset=subset: client.multi_get(subset),
                    )
                except ServerError as exc:
                    if (
                        exc.code == protocol.ERR_FRAME_TOO_LARGE
                        and isinstance(exc.details, dict)
                        and isinstance(exc.details.get("index"), int)
                    ):
                        # Re-anchor the shard-relative index so "split
                        # the batch here" points into the caller's list.
                        where = indices[min(exc.details["index"], len(indices) - 1)]
                        raise FanOutTooLargeError(
                            where,
                            f"keys[{where}]: sub-batch response exceeded "
                            f"the frame budget on shard {shard.name!r} — "
                            f"split the batch and retry",
                        )
                    raise
                for position, summary in zip(indices, partial):
                    answers[position] = summary
        return answers

    def cells(self) -> set[int]:
        """Unsupported over the wire: enumerate the shard tables instead."""
        raise NotImplementedError(
            "cells() is not served over the wire; query the shard tables "
            "directly"
        )

    def items(self) -> Iterator[tuple[GroupKey, CellSummary]]:
        """Unsupported over the wire: scan the shard tables instead."""
        raise NotImplementedError(
            "items() is not served over the wire; scan the shard tables "
            "directly"
        )

    def __len__(self) -> int:
        return self._topology.placement.total_entries()

    # -- health --------------------------------------------------------------------

    def probe_once(self) -> None:
        """One health sweep: ping every endpoint of the current topology.

        Successful probes reset failure counts (and recover DOWN
        endpoints, counting ``router.shard_up``); failed probes feed the
        same trip wires as the request path.  The background prober
        calls this on its interval; tests call it directly for
        deterministic recovery."""
        topology = self._topology
        for shard in topology.shards:
            for endpoint in shard.endpoints:
                self.counters.increment(PROBES)
                client: InventoryClient | None = None
                try:
                    client = endpoint.pool.acquire()
                    client.ping()
                except Exception:  # noqa: BLE001 - any failure trips the wire
                    if client is not None:
                        client.close()
                    if endpoint.record_failure():
                        self.counters.increment(SHARD_DOWN)
                    continue
                endpoint.pool.release(client)
                if endpoint.record_success():
                    self.counters.increment(SHARD_UP)

    def start_probing(self, interval_s: float) -> None:
        """Run :meth:`probe_once` every ``interval_s`` seconds on a
        daemon thread until :meth:`close`."""
        if interval_s <= 0:
            raise ValueError(f"probe interval must be positive, got {interval_s}")
        if self._prober is not None:
            raise RuntimeError("prober is already running")

        def _probe_loop() -> None:
            while not self._stop_probing.wait(interval_s):
                self.probe_once()

        self._prober = threading.Thread(
            target=_probe_loop, name="repro-router-prober", daemon=True
        )
        self._prober.start()

    def shard_stats(self) -> dict:
        """Per-shard health + router counters — surfaced through the
        fronting server's ``stats`` request (the same optional-hook
        pattern as the block cache)."""
        topology = self._topology
        return {
            "placement_version": topology.version,
            "shards": [
                {
                    "name": shard.name,
                    "table": shard.table,
                    "entries": shard.entries,
                    "endpoints": [e.stats() for e in shard.endpoints],
                }
                for shard in topology.shards
            ],
            "counters": self.counters.as_dict(),
        }

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Stop probing and close every pooled connection (current and
        retired topologies)."""
        self._stop_probing.set()
        if self._prober is not None:
            self._prober.join(timeout=5.0)
            self._prober = None
        with self._swap_lock:
            retired, self._retired = self._retired, []
            topology = self._topology
        for old in retired:
            old.close()
        topology.close()

    def __enter__(self) -> "ShardedInventory":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
