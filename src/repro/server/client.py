"""A synchronous client for the inventory query server.

:class:`InventoryClient` speaks the length-prefixed JSON protocol over
one TCP connection and maps responses back into the library's own types
(:class:`~repro.inventory.summary.CellSummary`,
:class:`~repro.apps.eta.EtaEstimate`), so code written against a local
:class:`~repro.inventory.backend.QueryableInventory` ports to the remote
server by swapping the object — the position-query methods carry the
same names and signatures.

The client is deliberately synchronous (plain sockets, no asyncio): the
consumers are tests, benchmarks' closed-loop load generators, and
scripts, all of which want a blocking call per request.  One client is
one connection and is **not** thread-safe; concurrent load uses one
client per thread, which is also how it exercises the server's
concurrency for real.
"""

from __future__ import annotations

import itertools
import socket

from repro.apps.eta import EtaEstimate
from repro.inventory.summary import CellSummary
from repro.server import protocol


class ServerError(Exception):
    """An error response from the server, tagged with its code.

    ``details`` carries the error's structured payload when the server
    sent one — e.g. a rejected multi frame's ``{"index": n}`` naming the
    offending sub-request.
    """

    def __init__(
        self, code: str, message: str, details: dict | None = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.details = details


class InventoryClient:
    """One blocking connection to an inventory query server."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        connect_timeout: float | None = None,
    ) -> None:
        # The router's pools connect with a short ``connect_timeout`` so
        # a dead endpoint fails fast (on to the replica) while in-flight
        # requests keep the generous per-request ``timeout``.
        self.max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection(
            (host, port),
            timeout=timeout if connect_timeout is None else connect_timeout,
        )
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    # -- transport -----------------------------------------------------------------

    def request(self, request_type: str, **params) -> dict:
        """Send one request, wait for its response, return the result.

        Raises :class:`ServerError` for error responses and
        :class:`~repro.server.protocol.ProtocolError` for transport
        faults (truncated or oversized frames).
        """
        request_id = next(self._ids)
        frame = {"id": request_id, "type": request_type, **params}
        self._sock.sendall(protocol.encode_frame(frame, self.max_frame_bytes))
        response = protocol.read_frame_blocking(
            self._file.read, self.max_frame_bytes
        )
        if response is None:
            raise ServerError(
                protocol.ERR_TRUNCATED, "server closed the connection"
            )
        if response.get("id") not in (request_id, None):
            raise ServerError(
                protocol.ERR_BAD_FRAME,
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}",
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            details = error.get("details")
            raise ServerError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unspecified server error"),
                details if isinstance(details, dict) else None,
            )
        result = response.get("result")
        if not isinstance(result, dict):
            raise ServerError(
                protocol.ERR_BAD_FRAME, f"malformed result payload: {result!r}"
            )
        return result

    def close(self) -> None:
        """Close the connection."""
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "InventoryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the query surface ---------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.request("ping").get("pong"))

    def stats(self) -> dict:
        """Inventory + server observability snapshot."""
        return self.request("stats")

    def trace(self, n: int = 50) -> dict:
        """The live tail of the server's trace ring buffer.

        Returns ``{"enabled": bool, "spans": [span records]}`` — empty
        spans (not an error) when the server runs without tracing.
        """
        return self.request("trace", n=n)

    def summary_at(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> CellSummary | None:
        """Remote twin of :meth:`QueryableInventory.summary_at`."""
        result = self.request(
            "summary_at",
            **_position_params(lat, lon, vessel_type, origin, destination),
        )
        raw = result.get("summary")
        return None if raw is None else protocol.summary_from_wire(raw)

    def multi_get(self, keys: list[dict]) -> list[CellSummary | None]:
        """Fetch summaries for many positions in ONE round trip.

        Prefer this over a loop of :meth:`summary_at` calls whenever the
        positions are known up front: all lookups travel in a single
        frame, so framing and network round-trip cost is paid once
        instead of ``len(keys)`` times (the dominant cost for warm point
        lookups — see ``benchmarks/bench_serving_throughput.py``).

        Each key is a dict of the :meth:`summary_at` parameters:
        ``{"lat": …, "lon": …}`` plus optional ``vessel_type`` /
        ``origin`` / ``destination``.  Summaries return in key order,
        ``None`` where the cell is empty.

        A fan-out too large for one response frame fails with a typed
        ``frame_too_large`` :class:`ServerError` whose
        ``details["index"]`` names the first offending sub-request —
        split the batch there and retry; the connection stays usable.
        """
        result = self.request("multi_get", keys=list(keys))
        return [
            None if raw is None else protocol.summary_from_wire(raw)
            for raw in result.get("summaries", [])
        ]

    def ingest(self, records: list[dict]) -> dict:
        """Send a batch of live records to a ``--live`` server.

        Each record is the wire form of an
        :class:`~repro.inventory.memtable.IngestRecord` — required
        ``mmsi``/``ts``/``lat``/``lon``/``sog``/``cog`` plus optional
        ``vessel_type``, ``heading``, trip fields and ``extras`` (see
        ``IngestRecord.to_wire``).  Returns the ack:
        ``{"accepted": n, "durable": bool, "flushed": bool}`` — a record
        is durable once its WAL entry is fsynced, so ``durable`` is
        always true under the default ``sync_every=1`` policy.

        A read-only backend answers a typed ``bad_request``
        :class:`ServerError`; so does a malformed record, with the
        message naming ``records[i]`` and the bad field.  The fan-out
        cap of the multi requests applies (split large batches).
        """
        result = self.request("ingest", records=list(records))
        return dict(result.get("ingest", {}))

    def multi_query(self, requests: list[dict]) -> list[dict]:
        """Send many (non-multi) requests in ONE round trip.

        Each item is a full request body, e.g. ``{"type": "eta",
        "lat": …, "lon": …}``.  Responses return in request order as
        per-item envelopes: ``{"ok": True, "result": …}`` on success,
        ``{"ok": False, "error": {"code", "message"}}`` per failed item
        — one bad sub-request does not fail the batch.  Like
        :meth:`multi_get`, an oversized fan-out fails typed with the
        offending index in ``details`` on a live connection.
        """
        result = self.request("multi_query", requests=list(requests))
        return list(result.get("responses", []))

    def top_destinations_at(
        self, lat: float, lon: float, vessel_type: str | None = None, n: int = 5
    ) -> list[tuple[str, int]]:
        """Remote twin of :meth:`QueryableInventory.top_destinations_at`."""
        params: dict = {"lat": lat, "lon": lon, "n": n}
        if vessel_type is not None:
            params["vessel_type"] = vessel_type
        result = self.request("top_destinations_at", **params)
        return [(dest, count) for dest, count in result.get("destinations", [])]

    def route_cells(
        self, origin: str, destination: str, vessel_type: str
    ) -> dict[int, CellSummary]:
        """Remote twin of :meth:`QueryableInventory.route_cells`."""
        result = self.request(
            "route_cells",
            origin=origin,
            destination=destination,
            vessel_type=vessel_type,
        )
        return {
            int(cell): protocol.summary_from_wire(raw)
            for cell, raw in result.get("cells", {}).items()
        }

    def eta(
        self,
        lat: float,
        lon: float,
        vessel_type: str | None = None,
        origin: str | None = None,
        destination: str | None = None,
    ) -> EtaEstimate | None:
        """Remote twin of :meth:`~repro.apps.eta.EtaEstimator.estimate`."""
        result = self.request(
            "eta", **_position_params(lat, lon, vessel_type, origin, destination)
        )
        payload = result.get("eta")
        if payload is None:
            return None
        return EtaEstimate(
            mean_s=payload["mean_s"],
            p10_s=payload["p10_s"],
            p50_s=payload["p50_s"],
            p90_s=payload["p90_s"],
            samples=payload["samples"],
            grouping=payload["grouping"],
            destination_matched=payload["destination_matched"],
        )

    def destination(
        self,
        track: list[tuple[float, float]],
        vessel_type: str | None = None,
    ) -> dict:
        """Remote twin of
        :meth:`~repro.apps.destination.DestinationPredictor.predict_track`:
        returns ``{"best", "ranking", "observations", "matched_observations"}``
        with ``ranking`` as (destination, share) tuples."""
        params: dict = {"track": [[lat, lon] for lat, lon in track]}
        if vessel_type is not None:
            params["vessel_type"] = vessel_type
        result = self.request("destination", **params)
        result["ranking"] = [
            (dest, share) for dest, share in result.get("ranking", [])
        ]
        return result


def _position_params(
    lat: float,
    lon: float,
    vessel_type: str | None,
    origin: str | None,
    destination: str | None,
) -> dict:
    params: dict = {"lat": lat, "lon": lon}
    if vessel_type is not None:
        params["vessel_type"] = vessel_type
    if origin is not None:
        params["origin"] = origin
    if destination is not None:
        params["destination"] = destination
    return params
