"""The serving layer: the inventory as an online query service.

The paper's inventory exists to be *queried* — MarineTraffic answers
pattern, ETA and destination requests from the precomputed summaries.
This package is that serving tier for any
:class:`~repro.inventory.backend.QueryableInventory` backend:

- :mod:`repro.server.protocol` — the length-prefixed JSON wire format,
  frame limits and error codes;
- :mod:`repro.server.service` — request dispatch onto the backend and
  the reused ETA/destination apps (pure, socket-free, unit-testable);
- :mod:`repro.server.server` — the asyncio TCP server: bounded
  concurrency (semaphore backpressure), per-request deadlines,
  per-connection idle timeouts, graceful drain;
- :mod:`repro.server.metrics` — request/error counters and
  latency/queue-wait digests, served back through the ``stats`` request
  and exposed in Prometheus text form via ``--metrics-port``
  (:mod:`repro.obs.exposition`);
- :mod:`repro.server.client` — the synchronous client whose query
  methods mirror the in-process backend's (plus ``trace`` for the live
  span ring buffer);
- :mod:`repro.server.sharding` — the consistent-hash ring, the
  per-shard table splitter and the placement manifest;
- :mod:`repro.server.router` — :class:`ShardedInventory`, a queryable
  backend whose storage is N shard servers (failover, health probes,
  snapshot-consistent rebalancing).

``python -m repro serve --inventory inv.sst`` stands the whole stack up
from a persisted table; ``python -m repro route --placement …`` fronts a
sharded deployment with the same protocol.
"""

from repro.server.client import InventoryClient, ServerError
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    MAX_MULTI_ITEMS,
    FanOutTooLargeError,
    FrameTooLargeError,
    ProtocolError,
    ShardUnavailableError,
    TruncatedFrameError,
)
from repro.server.router import ShardedInventory
from repro.server.server import (
    InventoryServer,
    ServerConfig,
    ServerThread,
    serve,
)
from repro.server.service import InventoryService
from repro.server.sharding import (
    HashRing,
    Placement,
    ShardSpec,
    load_placement,
    placement_path,
    save_placement,
    split_inventory,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_MULTI_ITEMS",
    "FanOutTooLargeError",
    "FrameTooLargeError",
    "HashRing",
    "InventoryClient",
    "InventoryServer",
    "InventoryService",
    "Placement",
    "ProtocolError",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "ServerThread",
    "ShardSpec",
    "ShardUnavailableError",
    "ShardedInventory",
    "TruncatedFrameError",
    "load_placement",
    "placement_path",
    "save_placement",
    "serve",
    "split_inventory",
]
