"""Command-line interface: the whole loop without writing Python.

::

    python -m repro generate --vessels 24 --days 14 --out archive.csv
    python -m repro build    --archive archive.csv --resolution 6 --out inv.sst
    python -m repro compact  --inputs day1.sst day2.sst --out week.sst
    python -m repro query    --inventory inv.sst --lat 1.2 --lon 103.8
    python -m repro serve    --inventory inv.sst --port 7077
    python -m repro serve    --live live_dir/ --resolution 6 --port 7077
    python -m repro ingest   --feed archive.csv --port 7077
    python -m repro route    --placement inv.sst.placement.json \
                             --shard shard-0=127.0.0.1:7081 ...
    python -m repro render   --inventory inv.sst --feature speed --out map.ppm
    python -m repro info     --inventory inv.sst
    python -m repro fsck     --inventory inv.sst [--salvage fixed.sst]
    python -m repro trace    --trace build.trace

``generate`` writes a NOAA-style CSV archive plus sidecar fleet/port CSVs;
``build`` runs the pipeline and persists the inventory as windowed,
compacted SSTables (``--resume`` continues an interrupted windowed
build from its manifest); ``compact`` k-way merges tables; ``query`` and
``render`` serve straight from a table through the block-cached
:class:`~repro.inventory.backend.SSTableInventory` — no command ever
materializes the whole store in memory.  ``serve`` exposes the same
table over TCP through the concurrent query server
(:mod:`repro.server`): bounded in-flight requests, per-request
deadlines, graceful drain on Ctrl-C.  ``build --shards N`` additionally
splits the table into per-shard SSTables plus a placement manifest, and
``route`` fronts the shard servers with the scatter-gather router
(failover, health probes) behind the identical protocol.  ``serve
--live`` opens a :class:`~repro.inventory.live.LiveInventory` directory
instead of a read-only table: the server then also accepts ``ingest``
requests (WAL + memtable write path, crash-recovery on open), and
``repro ingest`` feeds it from a CSV or NMEA file — optionally tailing
the file as a receiver would.  ``fsck`` verifies every checksum in a
table and can salvage the readable blocks of a damaged one; ``fsck
--wal`` triages a live directory's WAL segments (recoverable torn tail
vs hard corruption).

Tracing (``repro.obs``): ``build --trace spans.jsonl`` records a span
per pipeline stage (the paper's Fig. 3 funnel) and ``repro trace``
renders the recorded file as a per-stage profile table;
``serve --trace`` does the same for requests, ``serve --trace-ring``
keeps the last N spans queryable live via the ``trace`` request, and
``serve --metrics-port`` exposes Prometheus-style ``GET /metrics``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.ais import read_csv, write_csv
from repro.ais.vesseltypes import MarketSegment
from repro.apps import raster_from_inventory, write_ppm
from repro.geo.polygon import BoundingBox
from repro.inventory import (
    SSTableInventory,
    merge_tables,
    open_inventory,
    salvage_table,
    verify_table,
)
from repro.world.fleet import Vessel
from repro.world.ports import PORTS


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Patterns of Life: maritime mobility inventory tools",
    )
    commands = parser.add_subparsers(required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic AIS archive"
    )
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--vessels", type=int, default=24)
    generate.add_argument("--days", type=float, default=14.0)
    generate.add_argument("--interval", type=float, default=600.0,
                          help="report interval in seconds")
    generate.add_argument("--out", type=Path, required=True,
                          help="positions CSV path (fleet/ports sidecars "
                               "derive from it)")
    generate.set_defaults(handler=_cmd_generate)

    build = commands.add_parser(
        "build", help="run the pipeline over an archive, persist the inventory"
    )
    build.add_argument("--archive", type=Path, required=True,
                       help="positions CSV from 'generate'")
    build.add_argument("--fleet", type=Path, default=None,
                       help="fleet sidecar CSV (default: <archive>.fleet.csv)")
    build.add_argument("--resolution", type=int, default=6)
    build.add_argument("--windows", type=int, default=1,
                       help="ingestion windows: one SSTable per window, "
                            "compacted into --out")
    build.add_argument("--out", type=Path, required=True,
                       help="inventory SSTable path")
    build.add_argument("--resume", action="store_true",
                       help="continue an interrupted windowed build: "
                            "reuse completed windows verified against "
                            "the build manifest")
    build.add_argument("--shards", type=int, default=1,
                       help="also split the compacted table into this many "
                            "per-shard SSTables (consistent hashing on "
                            "cells) and publish <out>.placement.json "
                            "for 'repro route' (1 = single table)")
    build.add_argument("--trace", type=Path, default=None,
                       help="record a span per pipeline stage to this "
                            "JSONL file (render with 'repro trace')")
    build.set_defaults(handler=_cmd_build)

    compact = commands.add_parser(
        "compact", help="k-way merge inventory tables into one"
    )
    compact.add_argument("--inputs", type=Path, nargs="+", required=True,
                         help="input SSTable paths")
    compact.add_argument("--out", type=Path, required=True,
                         help="compacted SSTable path (must not be an input)")
    compact.add_argument("--block-size", type=int, default=16 * 1024)
    compact.set_defaults(handler=_cmd_compact)

    query = commands.add_parser("query", help="point-query an inventory")
    query.add_argument("--inventory", type=Path, required=True)
    query.add_argument("--lat", type=float, required=True)
    query.add_argument("--lon", type=float, required=True)
    query.add_argument("--resolution", type=int, default=None,
                       help="grid resolution (default: inferred from the "
                            "table's keys)")
    query.add_argument("--vessel-type", default=None)
    query.add_argument("--origin", default=None)
    query.add_argument("--destination", default=None)
    query.set_defaults(handler=_cmd_query)

    serve = commands.add_parser(
        "serve", help="serve an inventory over TCP (length-prefixed JSON)"
    )
    serve.add_argument("--inventory", type=Path, default=None,
                       help="read-only SSTable to serve")
    serve.add_argument("--live", type=Path, default=None, metavar="DIR",
                       help="serve a live (WAL + memtable) inventory "
                            "directory instead: accepts 'ingest' "
                            "requests, recovers on open")
    serve.add_argument("--sync-every", type=int, default=1,
                       help="--live: fsync the WAL every N appends "
                            "(1 = every record is durable before ack)")
    serve.add_argument("--sync-interval", type=float, default=None,
                       help="--live: also fsync when this many seconds "
                            "passed since the last one")
    serve.add_argument("--flush-records", type=int, default=50_000,
                       help="--live: memtable records that seal it and "
                            "schedule a background flush (0 = manual)")
    serve.add_argument("--tier-fanout", type=int, default=4,
                       help="--live: same-size-tier tables that trigger "
                            "one tier compaction (0 = never compact)")
    serve.add_argument("--maintenance", choices=("background", "inline"),
                       default="background",
                       help="--live: run flush/compaction jobs on the "
                            "maintenance thread (default) or inline on "
                            "the ingest path (deterministic, stalls)")
    serve.add_argument("--max-frozen", type=int, default=None,
                       help="--live: sealed-but-unflushed memtables "
                            "that arm the ingest backpressure valve")
    serve.add_argument("--backpressure-wait", type=float, default=None,
                       help="--live: seconds an ingest may stall on the "
                            "valve before failing typed "
                            "(ingest_backpressure)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7077,
                       help="TCP port (0 = pick a free one and report it)")
    serve.add_argument("--resolution", type=int, default=None,
                       help="grid resolution (default: inferred)")
    serve.add_argument("--cache-blocks", type=int, default=256,
                       help="block-cache capacity shared by all connections")
    serve.add_argument("--max-concurrency", type=int, default=16,
                       help="in-flight request cap (excess requests queue "
                            "against their deadline)")
    serve.add_argument("--request-timeout", type=float, default=10.0,
                       help="per-request deadline in seconds")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       help="per-connection read timeout in seconds")
    serve.add_argument("--trace", type=Path, default=None,
                       help="record request/handler/storage spans to "
                            "this JSONL file")
    serve.add_argument("--trace-ring", type=int, default=0, metavar="N",
                       help="keep the last N spans in memory, served "
                            "live via the 'trace' request (0 = off)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="also expose Prometheus-style GET /metrics "
                            "on this port (0 = pick a free one)")
    serve.add_argument("--slow-request-ms", type=float, default=None,
                       help="log (repro.server.slowlog) and count "
                            "successful requests slower than this")
    serve.set_defaults(handler=_cmd_serve)

    route = commands.add_parser(
        "route",
        help="front N shard servers with the scatter-gather router "
             "(same wire protocol as 'serve')",
    )
    route.add_argument("--placement", type=Path, required=True,
                       help="placement manifest published by "
                            "'build --shards' (<out>.placement.json)")
    route.add_argument("--shard", action="append", default=[],
                       metavar="NAME=HOST:PORT[,HOST:PORT...]",
                       help="serving endpoints of one placement shard; "
                            "first address is the primary, the rest are "
                            "replicas (repeat per shard)")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7070,
                       help="TCP port (0 = pick a free one and report it)")
    route.add_argument("--max-concurrency", type=int, default=16)
    route.add_argument("--request-timeout", type=float, default=10.0,
                       help="per-request deadline in seconds")
    route.add_argument("--idle-timeout", type=float, default=30.0)
    route.add_argument("--shard-timeout", type=float, default=5.0,
                       help="per-shard-call timeout in seconds (keep it "
                            "under --request-timeout so failover fits "
                            "inside the request deadline)")
    route.add_argument("--connect-timeout", type=float, default=2.0,
                       help="shard connection timeout (fast-fail to the "
                            "replica when an endpoint host is dead)")
    route.add_argument("--failure-threshold", type=int, default=3,
                       help="consecutive failures before an endpoint is "
                            "marked down and skipped")
    route.add_argument("--probe-interval", type=float, default=5.0,
                       help="background health-probe period in seconds "
                            "(down endpoints recover only via probes; "
                            "0 disables probing)")
    route.add_argument("--metrics-port", type=int, default=None,
                       help="also expose Prometheus-style GET /metrics "
                            "on this port (0 = pick a free one)")
    route.set_defaults(handler=_cmd_route)

    ingest = commands.add_parser(
        "ingest",
        help="feed a CSV/NMEA archive to a live server ('serve --live')",
    )
    ingest.add_argument("--feed", type=Path, required=True,
                        help="CSV archive (NOAA columns) or, with "
                             "--nmea, a file of NMEA sentences")
    ingest.add_argument("--nmea", action="store_true",
                        help="decode the feed as NMEA sentences instead "
                             "of CSV rows")
    ingest.add_argument("--fleet", type=Path, default=None,
                        help="fleet sidecar CSV mapping MMSI to market "
                             "segment (vessel_type is 'unknown' without)")
    ingest.add_argument("--host", default="127.0.0.1")
    ingest.add_argument("--port", type=int, default=7077)
    ingest.add_argument("--batch", type=int, default=256,
                        help="records per ingest frame")
    ingest.add_argument("--limit", type=int, default=None,
                        help="stop after this many records")
    ingest.add_argument("--follow", action="store_true",
                        help="keep tailing the feed for appended records "
                             "(Ctrl-C to stop)")
    ingest.add_argument("--poll", type=float, default=2.0,
                        help="--follow: seconds between polls of the feed")
    ingest.add_argument("--backpressure-retries", type=int, default=5,
                        help="retries (exponential backoff) when the "
                             "server answers ingest_backpressure before "
                             "giving up on a batch")
    ingest.add_argument("--timeout", type=float, default=10.0,
                        help="per-request client timeout in seconds")
    ingest.set_defaults(handler=_cmd_ingest)

    trace = commands.add_parser(
        "trace", help="render a recorded JSONL trace as a per-span profile"
    )
    trace.add_argument("--trace", type=Path, required=True,
                       help="JSONL trace recorded by 'build --trace' or "
                            "'serve --trace'")
    trace.add_argument("--limit", type=int, default=None,
                       help="show only the top N span names by total time")
    trace.set_defaults(handler=_cmd_trace)

    render = commands.add_parser("render", help="render a feature map (PPM)")
    render.add_argument("--inventory", type=Path, required=True)
    render.add_argument("--resolution", type=int, default=None,
                        help="grid resolution (default: inferred)")
    render.add_argument("--feature", choices=("speed", "course", "count", "ata"),
                        default="speed")
    render.add_argument("--bbox", default="-65,72,-180,180",
                        help="lat_min,lat_max,lon_min,lon_max")
    render.add_argument("--width", type=int, default=360)
    render.add_argument("--height", type=int, default=170)
    render.add_argument("--out", type=Path, required=True)
    render.set_defaults(handler=_cmd_render)

    info = commands.add_parser("info", help="summarize an inventory table")
    info.add_argument("--inventory", type=Path, required=True)
    info.set_defaults(handler=_cmd_info)

    fsck = commands.add_parser(
        "fsck", help="verify a table's checksums; optionally salvage it"
    )
    fsck.add_argument("--inventory", type=Path, default=None,
                      help="SSTable to verify")
    fsck.add_argument("--wal", type=Path, default=None, metavar="DIR",
                      help="also verify a live directory: every WAL "
                           "segment (recoverable torn tail vs hard "
                           "corruption) and every manifest table")
    fsck.add_argument("--salvage", type=Path, default=None,
                      help="write the readable entries of a damaged table "
                           "to this path (must differ from --inventory)")
    fsck.set_defaults(handler=_cmd_fsck)

    from repro.analysis.runner import build_arg_parser as _lint_flags

    lint = commands.add_parser(
        "lint",
        help="check repro's source invariants (durability, locking, "
             "determinism, observability) with the static analyzer",
    )
    _lint_flags(lint)
    lint.set_defaults(handler=_cmd_lint)

    return parser


def _cmd_generate(args) -> int:
    data = generate_dataset(
        WorldConfig(
            seed=args.seed,
            n_vessels=args.vessels,
            days=args.days,
            report_interval_s=args.interval,
        )
    )
    count = write_csv(args.out, data.positions)
    fleet_path = _fleet_sidecar(args.out)
    with open(fleet_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["mmsi", "imo", "name", "callsign", "flag", "segment",
             "ship_type", "grt", "length_m", "beam_m", "design_speed_kn"]
        )
        for vessel in data.fleet:
            writer.writerow(
                [vessel.mmsi, vessel.imo, vessel.name, vessel.callsign,
                 vessel.flag, vessel.segment.value, vessel.ship_type,
                 vessel.grt, vessel.length_m, vessel.beam_m,
                 vessel.design_speed_kn]
            )
    print(f"wrote {count:,} reports to {args.out}")
    print(f"wrote {len(data.fleet)} vessels to {fleet_path}")
    return 0


def _cmd_build(args) -> int:
    fleet_path = args.fleet or _fleet_sidecar(args.archive)
    fleet = _read_fleet(fleet_path)
    positions = list(read_csv(args.archive))
    print(f"loaded {len(positions):,} reports and {len(fleet)} vessels")
    trace_sink = None
    if args.trace is not None:
        from repro.obs import JsonlSink
        from repro.obs import trace as obs

        trace_sink = JsonlSink(args.trace)
        obs.configure(trace_sink)
    try:
        result = build_inventory(
            positions,
            fleet,
            PORTS,
            PipelineConfig(resolution=args.resolution),
            output=args.out,
            windows=args.windows,
            resume=args.resume,
            shards=getattr(args, "shards", 1),
        )
    finally:
        if trace_sink is not None:
            from repro.obs import trace as obs

            obs.disable()
            trace_sink.close()
            print(f"wrote trace to {args.trace} (render: repro trace "
                  f"--trace {args.trace})")
    for stage, count in result.funnel.items():
        print(f"  {stage:<22} {count:>10,}")
    window_note = f" ({args.windows} windows)" if args.windows > 1 else ""
    print(f"wrote {result.entries:,} groups to {args.out}{window_note}")
    if result.placement is not None:
        from repro.server.sharding import placement_path

        for spec in result.placement.shards:
            print(f"  {spec.name:<14} {spec.entries:>10,} groups "
                  f"-> {spec.table}")
        print(f"published placement to {placement_path(args.out)} "
              f"(serve each shard with 'repro serve', front them with "
              f"'repro route')")
    return 0


def _cmd_compact(args) -> int:
    entries = merge_tables(args.inputs, args.out, block_size=args.block_size)
    print(
        f"compacted {len(args.inputs)} tables "
        f"({', '.join(str(p) for p in args.inputs)}) into {args.out}: "
        f"{entries:,} groups"
    )
    return 0


def _cmd_query(args) -> int:
    with SSTableInventory(
        args.inventory, resolution=args.resolution
    ) as inventory:
        return _print_summary(inventory, args)


def _print_summary(inventory: SSTableInventory, args) -> int:
    summary = inventory.summary_at(
        args.lat,
        args.lon,
        vessel_type=args.vessel_type,
        origin=args.origin,
        destination=args.destination,
    )
    if summary is None:
        print("no data for this cell")
        return 1
    print(f"records:      {summary.records}")
    print(f"ships:        {summary.ships.cardinality()}")
    print(f"trips:        {summary.trips.cardinality()}")
    speed = summary.speed_percentiles()
    print(f"speed kn:     mean {summary.mean_speed_kn():.1f} "
          f"p10/p50/p90 {speed[0]:.1f}/{speed[1]:.1f}/{speed[2]:.1f}")
    course = summary.mean_course_deg()
    print(f"course:       {'—' if course is None else f'{course:.0f}°'}")
    ata = summary.mean_ata_s()
    print(f"mean ATA:     {'—' if ata is None else f'{ata/3600.0:.1f} h'}")
    print(f"destinations: "
          + ", ".join(f"{t.value}×{t.count}"
                      for t in summary.destinations.top(5)))
    return 0


def _serve_config(args):
    """The server limits for 'serve' (split out so tests can pin the
    arg-to-config plumbing without binding a socket)."""
    from repro.server import ServerConfig

    slow_ms = getattr(args, "slow_request_ms", None)
    return ServerConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        request_timeout_s=args.request_timeout,
        idle_timeout_s=args.idle_timeout,
        slow_request_s=None if slow_ms is None else slow_ms / 1e3,
    )


def _serve_sinks(args) -> list:
    """The trace sinks 'serve' installs (JSONL file and/or live ring)."""
    from repro.obs import JsonlSink, RingBufferSink

    sinks: list = []
    if getattr(args, "trace", None) is not None:
        sinks.append(JsonlSink(args.trace))
    if getattr(args, "trace_ring", 0) > 0:
        sinks.append(RingBufferSink(args.trace_ring))
    return sinks


def _serve_backend(args):
    """Open the backend 'serve' fronts: a read-only table, or — under
    ``--live`` — a crash-recovering WAL + memtable inventory that also
    accepts ``ingest`` requests."""
    if (args.inventory is None) == (args.live is None):
        raise ValueError("serve needs exactly one of --inventory or --live")
    if args.live is not None:
        from repro.inventory.live import LiveInventory

        kwargs = {}
        if getattr(args, "max_frozen", None) is not None:
            kwargs["max_frozen_memtables"] = args.max_frozen
        if getattr(args, "backpressure_wait", None) is not None:
            kwargs["backpressure_wait_s"] = args.backpressure_wait
        return LiveInventory(
            args.live,
            resolution=args.resolution,
            sync_every=args.sync_every,
            sync_interval_s=args.sync_interval,
            flush_records=args.flush_records,
            tier_fanout=args.tier_fanout,
            background_maintenance=(
                getattr(args, "maintenance", "background") != "inline"
            ),
            cache_blocks=args.cache_blocks,
            **kwargs,
        )
    return SSTableInventory(
        args.inventory, resolution=args.resolution, cache_blocks=args.cache_blocks
    )


def _cmd_serve(args) -> int:
    import asyncio

    from repro.obs import trace as obs
    from repro.server import InventoryService, serve

    config = _serve_config(args)
    sinks = _serve_sinks(args)
    if sinks:
        obs.configure(*sinks)
    with _serve_backend(args) as inventory:
        if args.live is not None:
            stats = inventory.ingest_stats()
            print(f"live inventory {args.live}: {stats['tables']} tables, "
                  f"{stats['memtable_records']:,} replayed records at "
                  f"resolution {inventory.resolution} "
                  f"(sync_every={args.sync_every}, "
                  f"maintenance={stats['maintenance']}, "
                  f"tier_fanout={args.tier_fanout})")
        else:
            print(f"inventory {args.inventory}: {len(inventory):,} groups "
                  f"at resolution {inventory.resolution}")
        try:
            asyncio.run(
                serve(
                    InventoryService(inventory),
                    config,
                    metrics_port=args.metrics_port,
                )
            )
        except KeyboardInterrupt:
            print("interrupted: drained and closed")
        finally:
            if sinks:
                obs.disable()
                for sink in sinks:
                    close = getattr(sink, "close", None)
                    if callable(close):
                        close()
    return 0


def _feed_records(args, segments: dict[int, str]):
    """Yield wire-format ingest records from the feed file.

    CSV archives stream through :func:`repro.ais.csvio.read_csv` (NOAA
    columns, bad rows skipped); with ``--nmea`` the file is decoded
    sentence-by-sentence and non-position messages are dropped.  Either
    way a report becomes the wire dict ``InventoryClient.ingest``
    sends — reports with the position-not-available sentinels (lat 91 /
    lon 181) are dropped, heading 511 (the AIS not-available sentinel)
    travels as absent, and the fleet sidecar supplies ``vessel_type``.
    """
    from repro.ais.csvio import read_csv
    from repro.ais.messages import (
        HEADING_NOT_AVAILABLE,
        LAT_NOT_AVAILABLE,
        LON_NOT_AVAILABLE,
        PositionReport,
    )

    if args.nmea:
        from repro.ais.codec import decode_sentences

        def reports():
            with open(args.feed) as handle:
                yield from (
                    message
                    for message in decode_sentences(handle)
                    if isinstance(message, PositionReport)
                )
    else:
        def reports():
            yield from read_csv(args.feed)

    for report in reports():
        if report.lat >= LAT_NOT_AVAILABLE or report.lon >= LON_NOT_AVAILABLE:
            continue  # the vessel reported "position not available"
        record: dict = {
            "mmsi": report.mmsi,
            "ts": report.epoch_ts,
            "lat": report.lat,
            "lon": report.lon,
            "sog": report.sog,
            "cog": report.cog,
        }
        if report.heading != HEADING_NOT_AVAILABLE:
            record["heading"] = report.heading
        segment = segments.get(report.mmsi)
        if segment is not None:
            record["vessel_type"] = segment
        yield record


def _cmd_ingest(args) -> int:
    import time

    from repro.server.client import InventoryClient, ServerError
    from repro.server.protocol import ERR_INGEST_BACKPRESSURE

    if args.batch < 1:
        raise ValueError("--batch must be at least 1")
    segments: dict[int, str] = {}
    if args.fleet is not None:
        segments = {
            vessel.mmsi: vessel.segment.value
            for vessel in _read_fleet(args.fleet)
        }
    sent = 0
    durable = True

    def send(client, batch):
        """One batch, retrying typed write stalls with backoff — the
        server refused the batch outright (nothing was applied), so a
        resend cannot double-ingest."""
        delay = 0.25
        for attempt in range(max(0, args.backpressure_retries) + 1):
            try:
                return client.ingest(batch)
            except ServerError as exc:
                if (
                    exc.code != ERR_INGEST_BACKPRESSURE
                    or attempt == args.backpressure_retries
                ):
                    raise
                print(f"server backpressure (attempt {attempt + 1}): "
                      f"retrying in {delay:.2f}s", file=sys.stderr)
                time.sleep(delay)
                delay = min(delay * 2, 5.0)
        raise AssertionError("unreachable")

    try:
        with InventoryClient(args.host, args.port, timeout=args.timeout) as client:
            while True:
                batch: list[dict] = []
                already = sent
                skipped = 0
                for record in _feed_records(args, segments):
                    # --follow re-reads the feed each poll; records the
                    # server already acked are skipped by count, so only
                    # the appended tail travels again.
                    if skipped < already:
                        skipped += 1
                        continue
                    batch.append(record)
                    if args.limit is not None and sent + len(batch) >= args.limit:
                        break
                    if len(batch) >= args.batch:
                        ack = send(client, batch)
                        sent += int(ack.get("accepted", 0))
                        durable = bool(ack.get("durable", False))
                        batch = []
                if args.limit is not None:
                    batch = batch[: max(0, args.limit - sent)]
                if batch:
                    ack = send(client, batch)
                    sent += int(ack.get("accepted", 0))
                    durable = bool(ack.get("durable", False))
                if args.limit is not None and sent >= args.limit:
                    break
                if not args.follow:
                    break
                time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    except (ServerError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(f"ingested {sent:,} records from {args.feed} before the "
              f"error", file=sys.stderr)
        return 1
    durability = "durable" if durable else "accepted (fsync pending)"
    print(f"ingested {sent:,} records from {args.feed} ({durability})")
    return 0


def _route_addresses(args) -> dict[str, list[tuple[str, int]]]:
    """Parse the repeated ``--shard NAME=HOST:PORT[,HOST:PORT]`` flags
    (split out so tests can pin the parsing without binding sockets)."""
    addresses: dict[str, list[tuple[str, int]]] = {}
    for spec in args.shard:
        name, separator, rest = spec.partition("=")
        if not separator or not name or not rest:
            raise ValueError(
                f"--shard must look like NAME=HOST:PORT[,HOST:PORT], "
                f"got {spec!r}"
            )
        if name in addresses:
            raise ValueError(f"--shard {name!r} given twice")
        endpoints: list[tuple[str, int]] = []
        for address in rest.split(","):
            host, separator, port = address.rpartition(":")
            if not separator or not host or not port.isdigit():
                raise ValueError(
                    f"--shard {name!r}: bad address {address!r} "
                    f"(expected HOST:PORT)"
                )
            endpoints.append((host, int(port)))
        addresses[name] = endpoints
    return addresses


def _cmd_route(args) -> int:
    import asyncio

    from repro.server import InventoryService, ShardedInventory, serve
    from repro.server.sharding import load_placement

    placement = load_placement(args.placement)
    addresses = _route_addresses(args)
    unknown = sorted(set(addresses) - set(placement.shard_names()))
    if unknown:
        raise ValueError(
            f"--shard names not in the placement: {', '.join(unknown)} "
            f"(placement has: {', '.join(placement.shard_names())})"
        )
    config = _serve_config(args)
    with ShardedInventory(
        placement,
        addresses,
        timeout=args.shard_timeout,
        connect_timeout=args.connect_timeout,
        failure_threshold=args.failure_threshold,
        probe_interval_s=args.probe_interval if args.probe_interval > 0 else None,
    ) as sharded:
        print(f"placement {args.placement} v{placement.version}: "
              f"{placement.total_entries():,} groups across "
              f"{len(placement.shards)} shards at resolution "
              f"{placement.resolution}")
        for spec in placement.shards:
            endpoints = ", ".join(
                f"{host}:{port}" for host, port in addresses[spec.name]
            )
            print(f"  {spec.name:<14} {spec.entries:>10,} groups @ {endpoints}")
        try:
            asyncio.run(
                serve(
                    InventoryService(sharded),
                    config,
                    metrics_port=args.metrics_port,
                )
            )
        except KeyboardInterrupt:
            print("interrupted: drained and closed")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import profile_records, read_trace, render_profile

    rows = profile_records(read_trace(args.trace))
    if not rows:
        print(f"no spans recorded in {args.trace}")
        return 1
    for line in render_profile(rows, limit=args.limit):
        print(line)
    return 0


def _cmd_render(args) -> int:
    lat_min, lat_max, lon_min, lon_max = (
        float(part) for part in args.bbox.split(",")
    )
    accessors = {
        "speed": lambda s: s.mean_speed_kn(),
        "course": lambda s: s.mean_course_deg(),
        "count": lambda s: float(s.records),
        "ata": lambda s: (s.mean_ata_s() or 0.0) / 3600.0,
    }
    # Rendering walks pixels row by row, so neighbouring samples hit the
    # same block: a generous cache turns the raster into ~one table read.
    with SSTableInventory(
        args.inventory, resolution=args.resolution, cache_blocks=256
    ) as inventory:
        raster = raster_from_inventory(
            inventory, accessors[args.feature],
            BoundingBox(lat_min, lat_max, lon_min, lon_max),
            width=args.width, height=args.height,
        )
    write_ppm(raster, args.out, colormap=args.feature)
    print(f"wrote {args.out} ({raster.coverage():.2%} coverage)")
    return 0


def _cmd_info(args) -> int:
    with open_inventory(args.inventory) as reader:
        print(f"entries: {reader.entry_count:,} in {reader.block_count} blocks")
        from repro.inventory.keys import GroupingSet

        counts = {grouping_set: 0 for grouping_set in GroupingSet}
        records = 0
        for key, summary in reader.scan():
            counts[key.grouping_set] += 1
            if key.grouping_set is GroupingSet.CELL:
                records += summary.records
        for grouping_set, count in counts.items():
            print(f"  {grouping_set.value:<14} {count:>10,} groups")
        print(f"records aggregated: {records:,}")
    return 0


def _cmd_fsck(args) -> int:
    if args.inventory is None and args.wal is None:
        raise ValueError("fsck needs --inventory and/or --wal")
    exit_code = 0
    if args.inventory is not None:
        check = verify_table(args.inventory)
        for line in check.lines():
            print(line)
        if not check.ok:
            exit_code = 1
            if args.salvage is not None:
                report = salvage_table(args.inventory, args.salvage)
                print(
                    f"salvaged {report.entries_recovered:,} entries to "
                    f"{report.output} ({report.entries_lost:,} lost, "
                    f"{len(report.blocks_skipped)} blocks skipped)"
                )
    if args.wal is not None:
        wal_code = _fsck_wal(args.wal)
        # Corruption (1) dominates orphans (3): numeric max would let a
        # benign orphan report mask a corrupt table in --inventory.
        if 1 in (exit_code, wal_code):
            exit_code = 1
        else:
            exit_code = max(exit_code, wal_code)
    return exit_code


def _fsck_wal(directory: Path) -> int:
    """Triage a live directory: WAL segments, manifest tables, orphans.

    A recoverable torn tail (the crash left a partial final entry —
    the next open truncates it and replays the rest) exits 0 with a
    warning; hard corruption (CRC failures with entries after them, or
    damage in a non-final segment) exits 1.  Orphan staged tables —
    ``tab-*.sst`` files the manifest does not reference, or ``*.tmp``
    staging leftovers — exit 3: they are NOT corruption (a crash
    between the table write and the manifest commit leaves them behind
    by design, and the WAL still covers every record they hold), but
    they consume disk until deleted, so fsck names them distinctly.
    Corruption dominates orphans in the exit code.
    """
    from repro.inventory.live import manifest_tables
    from repro.inventory.wal import verify_wal

    check = verify_wal(directory)
    for line in check.lines():
        print(line)
    if check.hard_corruption:
        print(f"{directory}: HARD WAL corruption — acked records may be "
              f"lost; restore the directory from a replica or backup")
        return 1
    if check.torn_tail:
        print(f"{directory}: recoverable torn tail — the next open "
              f"truncates the partial entry and replays the rest")
    manifest = list(manifest_tables(directory))
    bad_tables = 0
    for table in manifest:
        table_check = verify_table(table)
        status = "ok" if table_check.ok else "CORRUPT"
        print(f"table {table.name}: {status}")
        if not table_check.ok:
            bad_tables += 1
    if bad_tables:
        print(f"{directory}: {bad_tables} manifest table(s) corrupt — "
              f"salvage with 'repro fsck --inventory <table> --salvage'")
        return 1
    referenced = {table.name for table in manifest}
    orphans = sorted(
        path.name
        for path in directory.glob("tab-*.sst")
        if path.name not in referenced
    ) + sorted(path.name for path in directory.glob("*.tmp"))
    for name in orphans:
        print(f"orphan {name}: staged but never committed to the manifest")
    if orphans:
        print(f"{directory}: {len(orphans)} orphan staged file(s) — a "
              f"crash before the manifest commit left them behind; the "
              f"WAL still covers their records, so they are safe to "
              f"delete to reclaim disk")
        return 3
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.runner import run_from_args

    return run_from_args(args)


def _fleet_sidecar(archive: Path) -> Path:
    return archive.with_suffix(".fleet.csv")


def _read_fleet(path: Path) -> list[Vessel]:
    fleet = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            fleet.append(
                Vessel(
                    mmsi=int(row["mmsi"]),
                    imo=int(row["imo"]),
                    name=row["name"],
                    callsign=row["callsign"],
                    flag=row["flag"],
                    segment=MarketSegment(row["segment"]),
                    ship_type=int(row["ship_type"]),
                    grt=int(row["grt"]),
                    length_m=int(row["length_m"]),
                    beam_m=int(row["beam_m"]),
                    design_speed_kn=float(row["design_speed_kn"]),
                )
            )
    return fleet


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
