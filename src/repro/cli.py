"""Command-line interface: the whole loop without writing Python.

::

    python -m repro generate --vessels 24 --days 14 --out archive.csv
    python -m repro build    --archive archive.csv --resolution 6 --out inv.sst
    python -m repro query    --inventory inv.sst --lat 1.2 --lon 103.8
    python -m repro render   --inventory inv.sst --feature speed --out map.ppm
    python -m repro info     --inventory inv.sst

``generate`` writes a NOAA-style CSV archive plus sidecar fleet/port CSVs;
``build`` runs the pipeline and persists the inventory as an SSTable;
``query`` and ``render`` read the SSTable directly.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.ais import read_csv, write_csv
from repro.ais.vesseltypes import MarketSegment
from repro.apps import raster_from_inventory, write_ppm
from repro.geo.polygon import BoundingBox
from repro.inventory import Inventory, open_inventory, write_inventory
from repro.world.fleet import Vessel
from repro.world.ports import PORTS


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Patterns of Life: maritime mobility inventory tools",
    )
    commands = parser.add_subparsers(required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic AIS archive"
    )
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--vessels", type=int, default=24)
    generate.add_argument("--days", type=float, default=14.0)
    generate.add_argument("--interval", type=float, default=600.0,
                          help="report interval in seconds")
    generate.add_argument("--out", type=Path, required=True,
                          help="positions CSV path (fleet/ports sidecars "
                               "derive from it)")
    generate.set_defaults(handler=_cmd_generate)

    build = commands.add_parser(
        "build", help="run the pipeline over an archive, persist the inventory"
    )
    build.add_argument("--archive", type=Path, required=True,
                       help="positions CSV from 'generate'")
    build.add_argument("--fleet", type=Path, default=None,
                       help="fleet sidecar CSV (default: <archive>.fleet.csv)")
    build.add_argument("--resolution", type=int, default=6)
    build.add_argument("--out", type=Path, required=True,
                       help="inventory SSTable path")
    build.set_defaults(handler=_cmd_build)

    query = commands.add_parser("query", help="point-query an inventory")
    query.add_argument("--inventory", type=Path, required=True)
    query.add_argument("--lat", type=float, required=True)
    query.add_argument("--lon", type=float, required=True)
    query.add_argument("--resolution", type=int, default=6)
    query.add_argument("--vessel-type", default=None)
    query.set_defaults(handler=_cmd_query)

    render = commands.add_parser("render", help="render a feature map (PPM)")
    render.add_argument("--inventory", type=Path, required=True)
    render.add_argument("--resolution", type=int, default=6)
    render.add_argument("--feature", choices=("speed", "course", "count", "ata"),
                        default="speed")
    render.add_argument("--bbox", default="-65,72,-180,180",
                        help="lat_min,lat_max,lon_min,lon_max")
    render.add_argument("--width", type=int, default=360)
    render.add_argument("--height", type=int, default=170)
    render.add_argument("--out", type=Path, required=True)
    render.set_defaults(handler=_cmd_render)

    info = commands.add_parser("info", help="summarize an inventory table")
    info.add_argument("--inventory", type=Path, required=True)
    info.set_defaults(handler=_cmd_info)

    return parser


def _cmd_generate(args) -> int:
    data = generate_dataset(
        WorldConfig(
            seed=args.seed,
            n_vessels=args.vessels,
            days=args.days,
            report_interval_s=args.interval,
        )
    )
    count = write_csv(args.out, data.positions)
    fleet_path = _fleet_sidecar(args.out)
    with open(fleet_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["mmsi", "imo", "name", "callsign", "flag", "segment",
             "ship_type", "grt", "length_m", "beam_m", "design_speed_kn"]
        )
        for vessel in data.fleet:
            writer.writerow(
                [vessel.mmsi, vessel.imo, vessel.name, vessel.callsign,
                 vessel.flag, vessel.segment.value, vessel.ship_type,
                 vessel.grt, vessel.length_m, vessel.beam_m,
                 vessel.design_speed_kn]
            )
    print(f"wrote {count:,} reports to {args.out}")
    print(f"wrote {len(data.fleet)} vessels to {fleet_path}")
    return 0


def _cmd_build(args) -> int:
    fleet_path = args.fleet or _fleet_sidecar(args.archive)
    fleet = _read_fleet(fleet_path)
    positions = list(read_csv(args.archive))
    print(f"loaded {len(positions):,} reports and {len(fleet)} vessels")
    result = build_inventory(
        positions, fleet, PORTS, PipelineConfig(resolution=args.resolution)
    )
    for stage, count in result.funnel.items():
        print(f"  {stage:<22} {count:>10,}")
    entries = write_inventory(result.inventory, args.out)
    print(f"wrote {entries:,} groups to {args.out}")
    return 0


def _cmd_query(args) -> int:
    inventory = _load_inventory(args.inventory, args.resolution)
    summary = inventory.summary_at(
        args.lat, args.lon, vessel_type=args.vessel_type
    )
    if summary is None:
        print("no data for this cell")
        return 1
    print(f"records:      {summary.records}")
    print(f"ships:        {summary.ships.cardinality()}")
    print(f"trips:        {summary.trips.cardinality()}")
    speed = summary.speed_percentiles()
    print(f"speed kn:     mean {summary.mean_speed_kn():.1f} "
          f"p10/p50/p90 {speed[0]:.1f}/{speed[1]:.1f}/{speed[2]:.1f}")
    course = summary.mean_course_deg()
    print(f"course:       {'—' if course is None else f'{course:.0f}°'}")
    ata = summary.mean_ata_s()
    print(f"mean ATA:     {'—' if ata is None else f'{ata/3600.0:.1f} h'}")
    print(f"destinations: "
          + ", ".join(f"{t.value}×{t.count}"
                      for t in summary.destinations.top(5)))
    return 0


def _cmd_render(args) -> int:
    inventory = _load_inventory(args.inventory, args.resolution)
    lat_min, lat_max, lon_min, lon_max = (
        float(part) for part in args.bbox.split(",")
    )
    accessors = {
        "speed": lambda s: s.mean_speed_kn(),
        "course": lambda s: s.mean_course_deg(),
        "count": lambda s: float(s.records),
        "ata": lambda s: (s.mean_ata_s() or 0.0) / 3600.0,
    }
    raster = raster_from_inventory(
        inventory, accessors[args.feature],
        BoundingBox(lat_min, lat_max, lon_min, lon_max),
        width=args.width, height=args.height,
    )
    write_ppm(raster, args.out, colormap=args.feature)
    print(f"wrote {args.out} ({raster.coverage():.2%} coverage)")
    return 0


def _cmd_info(args) -> int:
    with open_inventory(args.inventory) as reader:
        print(f"entries: {reader.entry_count:,} in {reader.block_count} blocks")
        from repro.inventory.keys import GroupingSet

        counts = {grouping_set: 0 for grouping_set in GroupingSet}
        records = 0
        for key, summary in reader.scan():
            counts[key.grouping_set] += 1
            if key.grouping_set is GroupingSet.CELL:
                records += summary.records
        for grouping_set, count in counts.items():
            print(f"  {grouping_set.value:<14} {count:>10,} groups")
        print(f"records aggregated: {records:,}")
    return 0


def _fleet_sidecar(archive: Path) -> Path:
    return archive.with_suffix(".fleet.csv")


def _read_fleet(path: Path) -> list[Vessel]:
    fleet = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            fleet.append(
                Vessel(
                    mmsi=int(row["mmsi"]),
                    imo=int(row["imo"]),
                    name=row["name"],
                    callsign=row["callsign"],
                    flag=row["flag"],
                    segment=MarketSegment(row["segment"]),
                    ship_type=int(row["ship_type"]),
                    grt=int(row["grt"]),
                    length_m=int(row["length_m"]),
                    beam_m=int(row["beam_m"]),
                    design_speed_kn=float(row["design_speed_kn"]),
                )
            )
    return fleet


def _load_inventory(path: Path, resolution: int) -> Inventory:
    inventory = Inventory(resolution=resolution)
    with open_inventory(path) as reader:
        for key, summary in reader.scan():
            inventory.put(key, summary)
    return inventory


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
