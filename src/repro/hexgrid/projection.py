"""Lambert cylindrical equal-area projection.

The grid lives on a plane where one square metre corresponds to exactly one
square metre of the earth's surface:

    x = R · λ          (longitude in radians)
    y = R · sin(φ)     (latitude in radians)

The projected plane is the rectangle x ∈ [−πR, πR], y ∈ [−R, R] with total
area 2πR × 2R = 4πR², the surface area of the sphere.  Because hexagon
areas in the plane equal their geodesic areas, every grid cell at a given
resolution covers an identical area of ocean.
"""

from __future__ import annotations

import math

from repro.geo.constants import EARTH_RADIUS_M

#: Half-width of the projected plane (x spans ±PLANE_HALF_WIDTH_M).
PLANE_HALF_WIDTH_M = math.pi * EARTH_RADIUS_M

#: Half-height of the projected plane (y spans ±PLANE_HALF_HEIGHT_M).
PLANE_HALF_HEIGHT_M = EARTH_RADIUS_M

#: Total plane area in m² — equals the sphere's surface area.
PLANE_AREA_M2 = 4.0 * math.pi * EARTH_RADIUS_M**2


def project(lat: float, lon: float) -> tuple[float, float]:
    """Project geographic coordinates to plane metres.

    Latitude is clamped to [−90, 90]; longitude is normalised to
    (−180, 180] so the seam sits on the antimeridian.
    """
    lat = min(90.0, max(-90.0, lat))
    lon = ((lon + 180.0) % 360.0) - 180.0
    if lon == -180.0:
        lon = 180.0
    x = EARTH_RADIUS_M * math.radians(lon)
    y = EARTH_RADIUS_M * math.sin(math.radians(lat))
    return x, y


def unproject(x: float, y: float) -> tuple[float, float]:
    """Inverse projection from plane metres to (lat, lon).

    ``y`` is clamped to the plane; ``x`` wraps around the antimeridian so
    that cell centers just past the seam still yield valid longitudes.
    """
    sin_lat = min(1.0, max(-1.0, y / EARTH_RADIUS_M))
    lat = math.degrees(math.asin(sin_lat))
    lon = math.degrees(x / EARTH_RADIUS_M)
    lon = ((lon + 180.0) % 360.0) - 180.0
    if lon == -180.0:
        lon = 180.0
    return lat, lon
