"""Public grid API: indexing, traversal and the aperture-7 hierarchy.

This module is the H3-shaped surface the rest of the project programs
against; function names deliberately mirror the h3-py v4 API
(``latlng_to_cell``, ``grid_disk``, ``cell_to_parent``, …) so readers
familiar with the paper's stack can map code to methodology directly.
"""

from __future__ import annotations

from repro.hexgrid.cellid import CellId, get_resolution, pack_cell, unpack_cell
from repro.hexgrid.hexmath import (
    hex_disk,
    hex_distance,
    hex_line,
    hex_ring,
)
from repro.hexgrid.lattice import (
    cell_coords_to_plane,
    cell_corners_plane,
    plane_to_cell_coords,
)
from repro.hexgrid.projection import project, unproject


def latlng_to_cell(lat: float, lon: float, res: int) -> CellId:
    """Index a geographic position: the cell containing (lat, lon)."""
    x, y = project(lat, lon)
    q, r = plane_to_cell_coords(x, y, res)
    return pack_cell(res, q, r)


def cell_to_latlng(cell: CellId) -> tuple[float, float]:
    """Geographic coordinates of a cell's center."""
    res, q, r = unpack_cell(cell)
    x, y = cell_coords_to_plane(q, r, res)
    return unproject(x, y)


def cell_to_boundary(cell: CellId) -> list[tuple[float, float]]:
    """The six boundary vertices of a cell as (lat, lon), counter-clockwise."""
    res, q, r = unpack_cell(cell)
    return [unproject(x, y) for x, y in cell_corners_plane(q, r, res)]


def grid_distance(cell_a: CellId, cell_b: CellId) -> int:
    """Minimum number of neighbor hops between two same-resolution cells."""
    res_a, qa, ra = unpack_cell(cell_a)
    res_b, qb, rb = unpack_cell(cell_b)
    _require_same_res(res_a, res_b)
    return hex_distance(qa, ra, qb, rb)


def grid_disk(cell: CellId, k: int) -> list[CellId]:
    """All cells within ``k`` hops of a cell, center first, ring by ring."""
    res, q, r = unpack_cell(cell)
    return [pack_cell(res, nq, nr) for nq, nr in hex_disk(q, r, k)]


def grid_ring(cell: CellId, k: int) -> list[CellId]:
    """Cells at exactly ``k`` hops from a cell."""
    res, q, r = unpack_cell(cell)
    return [pack_cell(res, nq, nr) for nq, nr in hex_ring(q, r, k)]


def grid_path_cells(cell_a: CellId, cell_b: CellId) -> list[CellId]:
    """Cells along the straight lattice line between two cells, inclusive.

    Consecutive cells in the result are always neighbors, which makes the
    path suitable for densifying sparse trajectories before counting cell
    transitions.
    """
    res_a, qa, ra = unpack_cell(cell_a)
    res_b, qb, rb = unpack_cell(cell_b)
    _require_same_res(res_a, res_b)
    return [pack_cell(res_a, q, r) for q, r in hex_line(qa, ra, qb, rb)]


def are_neighbor_cells(cell_a: CellId, cell_b: CellId) -> bool:
    """Whether two distinct same-resolution cells share an edge."""
    res_a, qa, ra = unpack_cell(cell_a)
    res_b, qb, rb = unpack_cell(cell_b)
    if res_a != res_b:
        return False
    return hex_distance(qa, ra, qb, rb) == 1


def cell_to_parent(cell: CellId, parent_res: int | None = None) -> CellId:
    """The ancestor cell containing this cell's center.

    ``parent_res`` defaults to one level coarser.  Must be coarser than or
    equal to the cell's own resolution.
    """
    res, q, r = unpack_cell(cell)
    if parent_res is None:
        parent_res = res - 1
    if parent_res < 0 or parent_res > res:
        raise ValueError(
            f"parent resolution {parent_res} invalid for cell at resolution {res}"
        )
    if parent_res == res:
        return cell
    x, y = cell_coords_to_plane(q, r, res)
    pq, pr = plane_to_cell_coords(x, y, parent_res)
    return pack_cell(parent_res, pq, pr)


def cell_to_center_child(cell: CellId, child_res: int | None = None) -> CellId:
    """The descendant cell containing this cell's center point."""
    res, q, r = unpack_cell(cell)
    if child_res is None:
        child_res = res + 1
    if child_res < res:
        raise ValueError(
            f"child resolution {child_res} invalid for cell at resolution {res}"
        )
    if child_res == res:
        return cell
    x, y = cell_coords_to_plane(q, r, res)
    cq, cr = plane_to_cell_coords(x, y, child_res)
    return pack_cell(child_res, cq, cr)


def cell_to_children(cell: CellId, child_res: int | None = None) -> list[CellId]:
    """All descendant cells whose ancestor (via :func:`cell_to_parent`) is
    this cell.

    Children average exactly 7 per level (aperture 7); individual parents
    may own 6–8 children because child centers, not areas, define the
    relation — the same semantics H3 has.  Results are sorted for
    determinism.
    """
    res = get_resolution(cell)
    if child_res is None:
        child_res = res + 1
    if child_res < res:
        raise ValueError(
            f"child resolution {child_res} invalid for cell at resolution {res}"
        )
    cells = [cell]
    for level in range(res, child_res):
        next_cells: list[CellId] = []
        for parent in cells:
            next_cells.extend(_direct_children(parent, level + 1))
        cells = next_cells
    return sorted(cells)


def _direct_children(cell: CellId, child_res: int) -> list[CellId]:
    center_child = cell_to_center_child(cell, child_res)
    # Geometric children all lie within 2 hops of the center child for
    # aperture 7; filter candidates by their actual parent.
    return [
        candidate
        for candidate in grid_disk(center_child, 2)
        if cell_to_parent(candidate, get_resolution(cell)) == cell
    ]


def _require_same_res(res_a: int, res_b: int) -> None:
    if res_a != res_b:
        raise ValueError(
            f"cells must share a resolution, got {res_a} and {res_b}"
        )
