"""A hierarchical hexagonal discrete global grid (the paper's H3 substitute).

The paper indexes every AIS report with Uber's H3.  This package provides a
from-scratch grid with the same contract the paper demands of its spatial
index (§3.2.1):

1. **Global** — every (lat, lon) maps to exactly one cell at each
   resolution 0–15.
2. **Approximately equal-area** — cells are hexagons laid on a Lambert
   cylindrical *equal-area* projection, so every cell at a resolution has
   *exactly* the same geodesic area (better than H3, whose areas vary ±60 %).
3. **Hexagonal neighborhood** — every cell has exactly six neighbors at one
   fixed center distance (H3 has twelve pentagons; we have none).
4. **Hierarchical** — aperture-7 parent/child relation with the classical
   ≈19.107° inter-resolution lattice rotation, exactly like H3's.

Known deviations from true H3, documented in DESIGN.md: cell *shapes*
distort toward the poles (the projection preserves area, not conformality),
and there is a lattice seam at the antimeridian where neighbor topology is
cut.  Neither affects aggregation semantics: indexing is still a pure
function of position.

Cell ids are 64-bit integers packing (resolution, axial q, axial r); use
:func:`cell_to_string` for the canonical 15-hex-digit text form.
"""

from repro.hexgrid.cellid import (
    CellId,
    MAX_RESOLUTION,
    cell_to_string,
    get_resolution,
    is_valid_cell,
    pack_cell,
    string_to_cell,
    unpack_cell,
)
from repro.hexgrid.lattice import (
    cell_area_km2,
    cell_edge_length_km,
    cells_count,
)
from repro.hexgrid.grid import (
    are_neighbor_cells,
    cell_to_boundary,
    cell_to_center_child,
    cell_to_children,
    cell_to_latlng,
    cell_to_parent,
    grid_disk,
    grid_distance,
    grid_path_cells,
    grid_ring,
    latlng_to_cell,
)
from repro.hexgrid.regions import bbox_cells, polyfill

__all__ = [
    "CellId",
    "MAX_RESOLUTION",
    "pack_cell",
    "unpack_cell",
    "get_resolution",
    "is_valid_cell",
    "cell_to_string",
    "string_to_cell",
    "cell_area_km2",
    "cell_edge_length_km",
    "cells_count",
    "latlng_to_cell",
    "cell_to_latlng",
    "cell_to_boundary",
    "cell_to_parent",
    "cell_to_children",
    "cell_to_center_child",
    "grid_disk",
    "grid_ring",
    "grid_distance",
    "grid_path_cells",
    "are_neighbor_cells",
    "bbox_cells",
    "polyfill",
]
