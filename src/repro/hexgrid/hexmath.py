"""Integer axial-coordinate hexagon mathematics.

Pure lattice geometry with no knowledge of resolutions or the earth: cells
are pointy-top hexagons addressed by axial coordinates ``(q, r)``.  The
conversion to plane metres (with per-resolution scale and rotation) lives
in :mod:`repro.hexgrid.lattice`.

Conventions (Red Blob Games axial system, pointy-top):

- basis vectors: ``q`` steps east, ``r`` steps south-east;
- cube coordinates satisfy ``x + y + z = 0`` with ``x=q, z=r, y=−q−r``;
- the six neighbor directions are fixed in :data:`AXIAL_DIRECTIONS`.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

#: The six axial direction vectors, counter-clockwise starting east.
AXIAL_DIRECTIONS: tuple[tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)

#: sqrt(3), the center-to-center distance of adjacent hexes in units of
#: circumradius.
SQRT3 = math.sqrt(3.0)


def axial_to_plane(q: float, r: float, size: float) -> tuple[float, float]:
    """Axial (possibly fractional) coordinates to unrotated plane coords.

    ``size`` is the hexagon circumradius (center-to-vertex distance).
    """
    x = size * (SQRT3 * q + SQRT3 / 2.0 * r)
    y = size * (1.5 * r)
    return x, y


def plane_to_axial(x: float, y: float, size: float) -> tuple[float, float]:
    """Unrotated plane coordinates to fractional axial coordinates."""
    q = (SQRT3 / 3.0 * x - 1.0 / 3.0 * y) / size
    r = (2.0 / 3.0 * y) / size
    return q, r


def axial_round(q: float, r: float) -> tuple[int, int]:
    """Round fractional axial coordinates to the containing cell.

    Standard cube rounding: round each cube coordinate and fix the one with
    the largest rounding error so that x+y+z stays zero.
    """
    x, z = q, r
    y = -x - z
    rx, ry, rz = round(x), round(y), round(z)
    dx, dy, dz = abs(rx - x), abs(ry - y), abs(rz - z)
    if dx > dy and dx > dz:
        rx = -ry - rz
    elif dy > dz:
        ry = -rx - rz
    else:
        rz = -rx - ry
    return int(rx), int(rz)


def hex_distance(q1: int, r1: int, q2: int, r2: int) -> int:
    """Grid distance (minimum number of neighbor steps) between two cells."""
    dq = q1 - q2
    dr = r1 - r2
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def hex_neighbors(q: int, r: int) -> list[tuple[int, int]]:
    """The six adjacent cells, counter-clockwise starting east."""
    return [(q + dq, r + dr) for dq, dr in AXIAL_DIRECTIONS]


def hex_ring(q: int, r: int, k: int) -> list[tuple[int, int]]:
    """Cells at exactly grid distance ``k`` (the k-th ring).

    ``k == 0`` yields the cell itself.  Raises on negative ``k``.
    """
    if k < 0:
        raise ValueError(f"ring radius must be non-negative, got {k}")
    if k == 0:
        return [(q, r)]
    results: list[tuple[int, int]] = []
    # Start k steps in direction 4 (south-west) and walk the hexagonal ring.
    cq = q + AXIAL_DIRECTIONS[4][0] * k
    cr = r + AXIAL_DIRECTIONS[4][1] * k
    for side in range(6):
        for _ in range(k):
            results.append((cq, cr))
            cq += AXIAL_DIRECTIONS[side][0]
            cr += AXIAL_DIRECTIONS[side][1]
    return results


def hex_disk(q: int, r: int, k: int) -> list[tuple[int, int]]:
    """All cells within grid distance ``k``, center first, ring by ring."""
    if k < 0:
        raise ValueError(f"disk radius must be non-negative, got {k}")
    results: list[tuple[int, int]] = []
    for ring in range(k + 1):
        results.extend(hex_ring(q, r, ring))
    return results


def hex_line(q1: int, r1: int, q2: int, r2: int) -> list[tuple[int, int]]:
    """Cells on the straight lattice line between two cells, inclusive.

    Linear interpolation in cube space with rounding; the classic hex
    line-drawing algorithm.  Consecutive results are always neighbors.
    """
    n = hex_distance(q1, r1, q2, r2)
    if n == 0:
        return [(q1, r1)]
    # Nudge endpoints slightly to break ties deterministically when the
    # line passes exactly through a cell corner.
    eps = 1e-6
    aq, ar = q1 + eps, r1 + 2 * eps
    bq, br = q2 + eps, r2 + 2 * eps
    line: list[tuple[int, int]] = []
    for i in range(n + 1):
        t = i / n
        fq = aq + (bq - aq) * t
        fr = ar + (br - ar) * t
        line.append(axial_round(fq, fr))
    return line


def hex_corners(q: int, r: int, size: float) -> list[tuple[float, float]]:
    """The six vertices of a pointy-top hexagon in unrotated plane coords."""
    cx, cy = axial_to_plane(q, r, size)
    corners = []
    for i in range(6):
        angle = math.radians(60.0 * i - 30.0)
        corners.append((cx + size * math.cos(angle), cy + size * math.sin(angle)))
    return corners


def hex_spiral(q: int, r: int) -> Iterator[tuple[int, int]]:
    """Infinite generator spiralling outward from a cell, ring by ring."""
    k = 0
    while True:
        yield from hex_ring(q, r, k)
        k += 1


def point_in_hex(px: float, py: float, q: int, r: int, size: float) -> bool:
    """Whether an unrotated plane point falls in a cell, via cube rounding."""
    fq, fr = plane_to_axial(px, py, size)
    return axial_round(fq, fr) == (q, r)
