"""64-bit cell identifiers.

A cell id packs the resolution and the axial lattice coordinates into one
integer so that inventories can key, sort and serialize cells cheaply:

    bits 58–61   resolution (0–15)
    bits 29–57   q + OFFSET (29-bit biased)
    bits  0–28   r + OFFSET (29-bit biased)

Bias 2²⁸ centres the representable axial range on zero; at the finest
resolution (15, ~1 m lattice spacing) the plane needs |q|,|r| ≲ 3·10⁷,
comfortably inside the ±2.7·10⁸ the packing allows.  Bit 62 is always zero
so ids are positive in signed-64 containers; bit 63 is reserved.
"""

from __future__ import annotations

#: Highest supported resolution.
MAX_RESOLUTION = 15

_COORD_BITS = 29
_COORD_OFFSET = 1 << (_COORD_BITS - 1)
_COORD_MASK = (1 << _COORD_BITS) - 1
_RES_SHIFT = 2 * _COORD_BITS
_Q_SHIFT = _COORD_BITS

#: Type alias for readability in signatures throughout the package.
CellId = int


def pack_cell(res: int, q: int, r: int) -> CellId:
    """Pack (resolution, q, r) into a cell id.

    Raises :class:`ValueError` when the resolution or either coordinate is
    out of the representable range.
    """
    if not 0 <= res <= MAX_RESOLUTION:
        raise ValueError(f"resolution must be in [0, {MAX_RESOLUTION}], got {res}")
    bq = q + _COORD_OFFSET
    br = r + _COORD_OFFSET
    if not (0 <= bq <= _COORD_MASK and 0 <= br <= _COORD_MASK):
        raise ValueError(f"axial coordinates out of range: q={q} r={r}")
    return (res << _RES_SHIFT) | (bq << _Q_SHIFT) | br


def unpack_cell(cell: CellId) -> tuple[int, int, int]:
    """Unpack a cell id into (resolution, q, r)."""
    if cell < 0 or cell >> (_RES_SHIFT + 4):
        raise ValueError(f"invalid cell id {cell!r}")
    res = cell >> _RES_SHIFT
    if res > MAX_RESOLUTION:
        raise ValueError(f"invalid resolution {res} in cell id {cell!r}")
    q = ((cell >> _Q_SHIFT) & _COORD_MASK) - _COORD_OFFSET
    r = (cell & _COORD_MASK) - _COORD_OFFSET
    return res, q, r


def get_resolution(cell: CellId) -> int:
    """The resolution encoded in a cell id."""
    return unpack_cell(cell)[0]


def is_valid_cell(cell: object) -> bool:
    """Whether ``cell`` is a structurally valid cell id."""
    if not isinstance(cell, int) or isinstance(cell, bool):
        return False
    try:
        unpack_cell(cell)
    except ValueError:
        return False
    return True


def cell_to_string(cell: CellId) -> str:
    """Canonical 16-hex-digit text form of a cell id (zero padded)."""
    res, q, r = unpack_cell(cell)  # validation
    del res, q, r
    return f"{cell:016x}"


def string_to_cell(text: str) -> CellId:
    """Parse the canonical text form back into a cell id."""
    try:
        cell = int(text, 16)
    except ValueError as exc:
        raise ValueError(f"not a hexadecimal cell id: {text!r}") from exc
    unpack_cell(cell)  # validation
    return cell
