"""Per-resolution lattice parameters and plane↔axial conversion.

Resolutions form an aperture-7 hierarchy: each step down divides cell area
by 7, shrinks lattice spacing by √7 and rotates the lattice by the classic
angle α = atan(√3 / 5) ≈ 19.1066° — the angle of the axial vector (2, 1)
that generates the index-7 sub-lattice.  This is the same aperture/rotation
scheme H3 uses.

Cell areas are calibrated to H3's published averages so resolution numbers
mean the same thing in both systems: resolution 0 ≈ 4.36 M km², resolution
6 ≈ 37 km², resolution 7 ≈ 5.3 km².  Unlike H3 (icosahedral, ±60 % area
spread), every cell at a resolution here has *exactly* the calibrated area,
because the underlying projection is equal-area.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.hexgrid.cellid import MAX_RESOLUTION
from repro.hexgrid.hexmath import axial_to_plane, axial_round, plane_to_axial
from repro.hexgrid.projection import PLANE_AREA_M2

#: Average H3 resolution-0 cell area, used to calibrate our resolution 0.
_BASE_AREA_KM2 = 4_357_449.41

#: Aperture of the hierarchy: children per parent.
APERTURE = 7

#: Inter-resolution lattice rotation in radians: angle of axial vector (2,1).
ROTATION_ALPHA = math.atan2(math.sqrt(3.0) / 2.0, 2.5)

_SQRT7 = math.sqrt(7.0)
# Hexagon area = (3√3/2)·size² where size is the circumradius.
_HEX_AREA_COEFF = 3.0 * math.sqrt(3.0) / 2.0


def cell_area_km2(res: int) -> float:
    """Exact geodesic area of every cell at a resolution, in km²."""
    _check_res(res)
    return _BASE_AREA_KM2 / (APERTURE**res)


def cell_area_m2(res: int) -> float:
    """Exact geodesic area of every cell at a resolution, in m²."""
    return cell_area_km2(res) * 1e6


@lru_cache(maxsize=None)
def cell_size_m(res: int) -> float:
    """Hexagon circumradius (center-to-vertex) in plane metres."""
    _check_res(res)
    return math.sqrt(cell_area_m2(res) / _HEX_AREA_COEFF)


def cell_edge_length_km(res: int) -> float:
    """Edge length of a cell in km (equals the circumradius for a regular
    hexagon)."""
    return cell_size_m(res) / 1000.0


def cell_spacing_m(res: int) -> float:
    """Center-to-center distance of adjacent cells in plane metres."""
    return math.sqrt(3.0) * cell_size_m(res)


def cells_count(res: int) -> int:
    """Total number of cells tiling the globe at a resolution.

    Computed as sphere area over cell area; exact up to the handful of
    partial cells cut by the antimeridian seam.
    """
    _check_res(res)
    return round(PLANE_AREA_M2 / cell_area_m2(res))


@lru_cache(maxsize=None)
def _rotation(res: int) -> tuple[float, float]:
    """(cos, sin) of the cumulative lattice rotation at a resolution."""
    angle = res * ROTATION_ALPHA
    return math.cos(angle), math.sin(angle)


def plane_to_cell_coords(x: float, y: float, res: int) -> tuple[int, int]:
    """Containing cell's axial coordinates for a plane point."""
    cos_a, sin_a = _rotation(res)
    # Rotate the point by −angle into the lattice frame.
    lx = cos_a * x + sin_a * y
    ly = -sin_a * x + cos_a * y
    fq, fr = plane_to_axial(lx, ly, cell_size_m(res))
    return axial_round(fq, fr)


def cell_coords_to_plane(q: int, r: int, res: int) -> tuple[float, float]:
    """Plane coordinates of a cell's center."""
    lx, ly = axial_to_plane(q, r, cell_size_m(res))
    cos_a, sin_a = _rotation(res)
    # Rotate from the lattice frame back by +angle.
    return cos_a * lx - sin_a * ly, sin_a * lx + cos_a * ly


def cell_corners_plane(q: int, r: int, res: int) -> list[tuple[float, float]]:
    """The six vertex plane coordinates of a cell, counter-clockwise."""
    size = cell_size_m(res)
    lx, ly = axial_to_plane(q, r, size)
    cos_a, sin_a = _rotation(res)
    corners = []
    for i in range(6):
        angle = math.radians(60.0 * i - 30.0)
        cx = lx + size * math.cos(angle)
        cy = ly + size * math.sin(angle)
        corners.append((cos_a * cx - sin_a * cy, sin_a * cx + cos_a * cy))
    return corners


def _check_res(res: int) -> None:
    if not 0 <= res <= MAX_RESOLUTION:
        raise ValueError(f"resolution must be in [0, {MAX_RESOLUTION}], got {res}")
