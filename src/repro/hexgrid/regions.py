"""Region covers: enumerate the cells of a geographic area.

Used by the regional benchmarks (Figure 4's Baltic box) and by the
utilization metric of Table 4, which needs the denominator "how many cells
exist over a given area".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.geo.polygon import BoundingBox, point_in_polygon, polygon_bbox
from repro.hexgrid.cellid import CellId, pack_cell
from repro.hexgrid.lattice import cell_coords_to_plane, cell_spacing_m
from repro.hexgrid.projection import project, unproject


def bbox_cells(bbox: BoundingBox, res: int) -> list[CellId]:
    """All cells whose *center* falls inside a bounding box.

    Scans the axial-coordinate range covered by the box; cost is
    proportional to the number of candidate cells, so choose the resolution
    with the box size in mind.  Boxes spanning the antimeridian are split
    into two non-spanning boxes first.
    """
    if bbox.lon_min > bbox.lon_max:
        west = BoundingBox(bbox.lat_min, bbox.lat_max, bbox.lon_min, 180.0)
        east = BoundingBox(bbox.lat_min, bbox.lat_max, -180.0, bbox.lon_max)
        return sorted(set(bbox_cells(west, res)) | set(bbox_cells(east, res)))
    corners = [
        project(bbox.lat_min, bbox.lon_min),
        project(bbox.lat_min, bbox.lon_max),
        project(bbox.lat_max, bbox.lon_min),
        project(bbox.lat_max, bbox.lon_max),
    ]
    return sorted(_scan_plane_rect(corners, bbox, res))


def polyfill(vertices: Sequence[tuple[float, float]], res: int) -> list[CellId]:
    """All cells whose center lies inside a (lat, lon) polygon."""
    bbox = polygon_bbox(vertices)
    cells = []
    for cell in bbox_cells(bbox, res):
        lat, lon = _cell_center(cell, res)
        if point_in_polygon(lat, lon, vertices):
            cells.append(cell)
    return cells


def _cell_center(cell: CellId, res: int) -> tuple[float, float]:
    from repro.hexgrid.cellid import unpack_cell

    _, q, r = unpack_cell(cell)
    x, y = cell_coords_to_plane(q, r, res)
    return unproject(x, y)


def _scan_plane_rect(
    corners: list[tuple[float, float]], bbox: BoundingBox, res: int
) -> list[CellId]:
    from repro.hexgrid.lattice import plane_to_cell_coords

    spacing = cell_spacing_m(res)
    # Find the axial bounds of the rectangle by sampling its corners with a
    # one-cell safety margin (the lattice is rotated relative to the plane).
    qs: list[int] = []
    rs: list[int] = []
    for x, y in corners:
        q, r = plane_to_cell_coords(x, y, res)
        qs.append(q)
        rs.append(r)
    margin = 2
    cells: list[CellId] = []
    for q in range(min(qs) - margin, max(qs) + margin + 1):
        for r in range(min(rs) - margin, max(rs) + margin + 1):
            x, y = cell_coords_to_plane(q, r, res)
            lat, lon = unproject(x, y)
            if bbox.contains(lat, lon):
                cells.append(pack_cell(res, q, r))
    return cells
