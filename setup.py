"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 517
editable installs; ``pip install -e . --no-build-isolation --no-use-pep517``
uses this file instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
