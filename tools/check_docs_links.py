#!/usr/bin/env python3
"""Check every relative link (and ``#anchor``) in the repo's markdown.

Stdlib-only, so CI needs nothing installed.  For each ``*.md`` file
outside dot-directories the checker extracts inline links
(``[text](target)`` and images), skips absolute URLs and mailto:, and
verifies:

- a relative path target names an existing file or directory, resolved
  against the linking file's own directory;
- an anchor target (``#section`` or ``file.md#section``) names a real
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to hyphens, ``-N`` suffixes for
  duplicates).

Exit status: 0 when every link resolves, 1 with one line per dead link
otherwise — the ``docs-links`` CI job gates on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline links and images: [text](target) / ![alt](target "title").
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> list[Path]:
    return sorted(
        path
        for path in REPO.rglob("*.md")
        if not any(part.startswith(".") for part in path.relative_to(REPO).parts)
    )


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (approximation: enough
    for ASCII docs — lowercase, drop punctuation, hyphenate spaces)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep the text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor the file exposes, with ``-N`` dedup."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def iter_links(path: Path):
    """(line_number, target) for each inline link outside code fences."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    problems = []
    for number, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.is_relative_to(REPO):
                # Repo-relative GitHub URLs (the CI badge's ../../
                # actions/... pattern) resolve on github.com, not on
                # disk — out of scope here.
                continue
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{number}: dead link -> {target}"
                )
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors into non-markdown are out of scope
            if resolved not in anchor_cache:
                anchor_cache[resolved] = anchors_of(resolved)
            if fragment.lower() not in anchor_cache[resolved]:
                problems.append(
                    f"{path.relative_to(REPO)}:{number}: dead anchor -> {target}"
                )
    return problems


def main() -> int:
    anchor_cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    files = markdown_files()
    for path in files:
        problems.extend(check_file(path, anchor_cache))
    for line in problems:
        print(line)
    if problems:
        print(f"{len(problems)} dead link(s) across {len(files)} markdown files")
        return 1
    print(f"all links resolve across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
