"""Tests for the sea router."""

import random

import pytest

from repro.world import SeaRouter
from repro.world.ports import PORTS


@pytest.fixture(scope="module")
def router():
    return SeaRouter()


def test_all_port_pairs_sampled_are_routable(router):
    rng = random.Random(42)
    ids = [port.port_id for port in PORTS]
    for _ in range(200):
        a, b = rng.sample(ids, 2)
        nodes = router.route_nodes(a, b)
        assert nodes[0] == a
        assert nodes[-1] == b


def test_same_port_route_is_trivial(router):
    assert router.route_nodes("SGSIN", "SGSIN") == ["SGSIN"]


def test_unknown_port_raises_keyerror(router):
    with pytest.raises(KeyError):
        router.route_nodes("NOPE1", "NLRTM")


def test_asia_europe_uses_suez(router):
    assert router.uses_canal("CNSHA", "NLRTM", "suez")
    assert not router.uses_canal("CNSHA", "NLRTM", "panama")


def test_transpacific_to_us_east_uses_panama(router):
    assert router.uses_canal("USLAX", "USNYC", "panama")


def test_blocked_suez_reroutes_via_cape():
    blocked = SeaRouter(blocked_canals={"suez"})
    nodes = blocked.route_nodes("CNSHA", "NLRTM")
    assert "GOOD" in nodes
    assert "SUZN" not in nodes
    normal = SeaRouter()
    # The paper's motivating fact: the Cape diversion adds thousands of km.
    extra = blocked.route_length_m("CNSHA", "NLRTM") - normal.route_length_m(
        "CNSHA", "NLRTM"
    )
    assert extra > 4_000_000


def test_blocked_panama_still_routable():
    blocked = SeaRouter(blocked_canals={"panama"})
    nodes = blocked.route_nodes("USLAX", "USNYC")
    assert "PANP" not in nodes or "PANC" not in nodes


def test_route_length_at_least_great_circle(router):
    from repro.geo import haversine_m
    from repro.world.ports import port_by_id

    for origin, destination in [("SGSIN", "NLRTM"), ("USLAX", "JPTYO")]:
        a = port_by_id(origin)
        b = port_by_id(destination)
        direct = haversine_m(a.lat, a.lon, b.lat, b.lon)
        assert router.route_length_m(origin, destination) >= direct * 0.99


def test_short_coastal_hop_is_direct(router):
    # Los Angeles ↔ Long Beach share a basin: no ocean hub detour.
    nodes = router.route_nodes("USLAX", "USLGB")
    assert nodes == ["USLAX", "USLGB"]


def test_panama_isthmus_has_no_land_hop(router):
    # Balboa and Colon are ~80 km apart but on different oceans: the route
    # must use the canal nodes, not a direct hop through the land bridge.
    nodes = router.route_nodes("PAPTY", "PAONX")
    assert len(nodes) > 2


def test_routes_are_cached_and_copied(router):
    first = router.route_nodes("SGSIN", "NLRTM")
    first.append("TAMPERED")
    second = router.route_nodes("SGSIN", "NLRTM")
    assert "TAMPERED" not in second


def test_route_positions_match_nodes(router):
    nodes = router.route_nodes("SGSIN", "MYPKG")
    positions = router.route_positions("SGSIN", "MYPKG")
    assert len(nodes) == len(positions)
    for position in positions:
        assert -90 <= position[0] <= 90
