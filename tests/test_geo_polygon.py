"""Tests for repro.geo.polygon."""

import pytest

from repro.geo import BoundingBox, point_in_polygon, polygon_bbox


SQUARE = [(0.0, 0.0), (0.0, 10.0), (10.0, 10.0), (10.0, 0.0)]


def test_point_inside_square():
    assert point_in_polygon(5.0, 5.0, SQUARE)


def test_point_outside_square():
    assert not point_in_polygon(15.0, 5.0, SQUARE)
    assert not point_in_polygon(5.0, -1.0, SQUARE)


def test_concave_polygon():
    # A "U" shape: the notch is outside.
    u_shape = [
        (0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0),
        (0.0, 7.0), (8.0, 7.0), (8.0, 3.0), (0.0, 3.0),
    ]
    assert point_in_polygon(5.0, 1.5, u_shape)
    assert point_in_polygon(5.0, 8.5, u_shape)
    assert not point_in_polygon(1.0, 5.0, u_shape)  # inside the notch


def test_degenerate_polygons_reject_everything():
    assert not point_in_polygon(0.0, 0.0, [])
    assert not point_in_polygon(0.0, 0.0, [(0.0, 0.0), (1.0, 1.0)])


def test_polygon_bbox():
    bbox = polygon_bbox(SQUARE)
    assert bbox == BoundingBox(0.0, 10.0, 0.0, 10.0)


def test_polygon_bbox_empty_raises():
    with pytest.raises(ValueError):
        polygon_bbox([])


def test_bbox_contains_edges_inclusive():
    bbox = BoundingBox(0.0, 10.0, 20.0, 30.0)
    assert bbox.contains(0.0, 20.0)
    assert bbox.contains(10.0, 30.0)
    assert not bbox.contains(10.01, 25.0)


def test_bbox_invalid_latitudes_raise():
    with pytest.raises(ValueError):
        BoundingBox(10.0, 0.0, 0.0, 1.0)


def test_bbox_antimeridian_wrap():
    pacific = BoundingBox(-10.0, 10.0, 170.0, -170.0)
    assert pacific.contains(0.0, 175.0)
    assert pacific.contains(0.0, -175.0)
    assert not pacific.contains(0.0, 0.0)


def test_bbox_expand_clamps_latitude():
    polar = BoundingBox(85.0, 89.0, 0.0, 10.0)
    grown = polar.expand(5.0)
    assert grown.lat_max == 90.0
    assert grown.lat_min == 80.0
    assert grown.lon_min == -5.0
