"""Integration tests: the full pipeline over the shared small world."""

import pytest

from repro import PipelineConfig, build_inventory
from repro.engine import Engine, EngineConfig
from repro.inventory.keys import GroupingSet


class TestFunnel:
    def test_funnel_stages_present_in_order(self, small_result):
        stages = list(small_result.funnel)
        assert stages == [
            "raw", "valid_fields", "feasible", "commercial",
            "with_trip_semantics", "inventory_groups", "inventory_cells",
        ]

    def test_funnel_is_monotone_through_filters(self, small_result):
        funnel = small_result.funnel
        assert funnel["raw"] >= funnel["valid_fields"] >= funnel["feasible"]
        assert funnel["feasible"] >= funnel["commercial"]
        assert funnel["commercial"] >= funnel["with_trip_semantics"] > 0

    def test_cleaning_removed_injected_defects(self, small_world, small_result):
        removed = (
            small_result.funnel["raw"] - small_result.funnel["valid_fields"]
        )
        # Every injected bad-field record must be removed at validation.
        assert removed >= small_world.defects.bad_field

    def test_compression_positive_at_fixture_scale(self, small_result):
        # The paper's 99.7 % needs a year of data; at the 18k-record
        # fixture scale the cells/records ratio is necessarily higher.
        # The full-scale number is measured by bench_table4_compression.
        funnel = small_result.funnel
        compression = 1.0 - funnel["inventory_cells"] / funnel["raw"]
        assert compression > 0.5


class TestInventoryContents:
    def test_all_grouping_sets_populated(self, small_inventory):
        for grouping_set in GroupingSet:
            assert small_inventory.group_count(grouping_set) > 0

    def test_cell_set_counts_records_once(self, small_result):
        assert (
            small_result.inventory.total_records()
            == small_result.funnel["with_trip_semantics"]
        )

    def test_type_breakdown_sums_to_cell_total(self, small_inventory):
        from collections import defaultdict

        per_cell: dict = defaultdict(int)
        cell_totals: dict = {}
        for key, summary in small_inventory.items():
            if key.grouping_set is GroupingSet.CELL:
                cell_totals[key.cell] = summary.records
            elif key.grouping_set is GroupingSet.CELL_TYPE:
                per_cell[key.cell] += summary.records
        for cell, total in cell_totals.items():
            assert per_cell[cell] == total

    def test_speeds_are_plausible(self, small_inventory):
        for _key, summary in small_inventory.items():
            if summary.speed.count:
                assert 0.0 <= summary.speed.mean <= 30.0

    def test_trip_statistics_consistent(self, small_inventory):
        for _key, summary in small_inventory.items():
            assert summary.eto.count == summary.ata.count == summary.records
            if summary.ata.count:
                assert summary.ata.min_value >= 0.0

    def test_od_groups_reference_real_ports(self, small_inventory, small_world):
        port_ids = {port.port_id for port in small_world.ports}
        for key, _summary in small_inventory.items():
            if key.origin is not None:
                assert key.origin in port_ids
                assert key.destination in port_ids


class TestEngineVariants:
    def test_thread_engine_matches_serial(self, small_world, small_result):
        with Engine(EngineConfig(num_partitions=4, scheduler="threads",
                                 max_workers=2)) as engine:
            threaded = build_inventory(
                small_world.positions, small_world.fleet, small_world.ports,
                PipelineConfig(), engine=engine,
            )
        assert threaded.funnel == small_result.funnel
        assert len(threaded.inventory) == len(small_result.inventory)

    def test_partition_count_does_not_change_result(self, small_world,
                                                    small_result):
        with Engine(EngineConfig(num_partitions=13)) as engine:
            repartitioned = build_inventory(
                small_world.positions, small_world.fleet, small_world.ports,
                PipelineConfig(), engine=engine,
            )
        assert repartitioned.funnel == small_result.funnel
        reference = {
            key: summary.records for key, summary in small_result.inventory.items()
        }
        got = {
            key: summary.records
            for key, summary in repartitioned.inventory.items()
        }
        assert got == reference

    def test_metrics_engine_reports_stage_seconds(self, small_world):
        with Engine(EngineConfig(num_partitions=4, collect_metrics=True)) as engine:
            result = build_inventory(
                small_world.positions, small_world.fleet, small_world.ports,
                PipelineConfig(), engine=engine,
            )
        assert result.stage_seconds
        assert "aggregate_summaries" in result.stage_seconds


class TestOnDiskBuild:
    def test_single_window_table_matches_in_memory_build(
        self, tmp_path, small_world, small_result
    ):
        from repro.inventory import SSTableInventory

        out = tmp_path / "inv.sst"
        result = build_inventory(
            small_world.positions, small_world.fleet, small_world.ports,
            PipelineConfig(), output=out,
        )
        assert result.inventory is None
        assert result.output == out
        assert result.entries == len(small_result.inventory)
        assert result.funnel == small_result.funnel
        with SSTableInventory(out) as backend:
            for key, summary in small_result.inventory.items():
                assert backend.get(key).records == summary.records

    def test_windowed_build_compacts_and_cleans_up(
        self, tmp_path, small_world, small_result
    ):
        from repro.inventory import SSTableInventory

        out = tmp_path / "inv.sst"
        result = build_inventory(
            small_world.positions, small_world.fleet, small_world.ports,
            PipelineConfig(), output=out, windows=3,
        )
        assert out.exists()
        # Window staging tables are removed after compaction.
        assert not list(tmp_path.glob("inv.sst.w*"))
        # Raw record counts are window-invariant (cleaning is per record);
        # trip statistics may differ at window boundaries by design.
        assert result.funnel["raw"] == small_result.funnel["raw"]
        assert result.funnel["valid_fields"] == small_result.funnel["valid_fields"]
        with SSTableInventory(out) as backend:
            assert len(backend) == result.entries > 0
            assert backend.resolution == small_result.inventory.resolution

    def test_windows_without_output_rejected(self, small_world):
        with pytest.raises(ValueError):
            build_inventory(
                small_world.positions, small_world.fleet, small_world.ports,
                PipelineConfig(), windows=2,
            )

    def test_zero_windows_rejected(self, tmp_path, small_world):
        with pytest.raises(ValueError):
            build_inventory(
                small_world.positions, small_world.fleet, small_world.ports,
                PipelineConfig(), output=tmp_path / "x.sst", windows=0,
            )


class TestConfigVariants:
    def test_coarser_resolution_fewer_cells(self, small_world, small_result):
        coarse = build_inventory(
            small_world.positions, small_world.fleet, small_world.ports,
            PipelineConfig(resolution=4),
        )
        assert (
            coarse.funnel["inventory_cells"]
            < small_result.funnel["inventory_cells"]
        )

    def test_commercial_filter_off_increases_volume(self, small_world,
                                                    small_result):
        permissive = build_inventory(
            small_world.positions, small_world.fleet, small_world.ports,
            PipelineConfig(commercial_only=False, min_grt=0),
        )
        assert (
            permissive.funnel["commercial"] > small_result.funnel["commercial"]
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(resolution=99)
        with pytest.raises(ValueError):
            PipelineConfig(max_transition_speed_kn=0.0)
