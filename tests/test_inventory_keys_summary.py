"""Tests for group keys and the CellSummary monoid."""

import random

import pytest

from repro.inventory.keys import (
    ALL_GROUPING_SETS,
    GroupingSet,
    GroupKey,
    keys_for_record,
)
from repro.inventory.summary import CellSummary, SummaryConfig


class TestGroupKey:
    def test_grouping_set_classification(self):
        assert GroupKey(cell=1).grouping_set is GroupingSet.CELL
        assert GroupKey(cell=1, vessel_type="cargo").grouping_set \
            is GroupingSet.CELL_TYPE
        assert GroupKey(
            cell=1, vessel_type="cargo", origin="A", destination="B"
        ).grouping_set is GroupingSet.CELL_OD_TYPE

    def test_tuple_roundtrip(self):
        key = GroupKey(cell=42, vessel_type="tanker", origin="X", destination="Y")
        assert GroupKey.from_tuple(key.to_tuple()) == key

    def test_keys_are_hashable_and_distinct(self):
        keys = {
            GroupKey(cell=1),
            GroupKey(cell=1, vessel_type="cargo"),
            GroupKey(cell=2),
        }
        assert len(keys) == 3

    def test_sort_key_orders_by_cell_first(self):
        a = GroupKey(cell=1, vessel_type="zzz")
        b = GroupKey(cell=2)
        assert a.sort_key() < b.sort_key()

    def test_sort_key_none_before_strings(self):
        bare = GroupKey(cell=1)
        typed = GroupKey(cell=1, vessel_type="cargo")
        assert bare.sort_key() < typed.sort_key()


class TestKeysForRecord:
    def test_with_trip_yields_three(self):
        keys = keys_for_record(7, "cargo", "A", "B")
        assert len(keys) == 3
        assert {key.grouping_set for key in keys} == set(ALL_GROUPING_SETS)

    def test_without_trip_yields_two(self):
        keys = keys_for_record(7, "cargo", None, None)
        assert len(keys) == 2
        assert all(
            key.grouping_set is not GroupingSet.CELL_OD_TYPE for key in keys
        )

    def test_subset_of_grouping_sets(self):
        keys = keys_for_record(7, "cargo", "A", "B",
                               grouping_sets=(GroupingSet.CELL,))
        assert keys == [GroupKey(cell=7)]


def _update(summary, mmsi=1, sog=10.0, cog=90.0, heading=89, trip="t1",
            eto=100.0, ata=900.0, origin="A", destination="B", next_cell=None):
    summary.update(
        mmsi=mmsi, sog=sog, cog=cog, heading=heading, trip_id=trip,
        eto_s=eto, ata_s=ata, origin=origin, destination=destination,
        next_cell=next_cell,
    )


class TestCellSummary:
    def test_empty_summary_views(self):
        summary = CellSummary()
        assert summary.records == 0
        assert summary.mean_speed_kn() is None
        assert summary.mean_course_deg() is None
        assert summary.mean_ata_s() is None
        assert summary.speed_percentiles() is None
        assert summary.top_destination() is None
        assert summary.top_transitions() == []

    def test_single_update_populates_all_features(self):
        summary = CellSummary()
        _update(summary, next_cell=99)
        assert summary.records == 1
        assert summary.ships.cardinality() == 1
        assert summary.trips.cardinality() == 1
        assert summary.mean_speed_kn() == pytest.approx(10.0)
        assert summary.mean_course_deg() == pytest.approx(90.0)
        assert summary.mean_ata_s() == pytest.approx(900.0)
        assert summary.top_destination() == "B"
        assert summary.origins.top(1)[0].value == "A"
        assert summary.top_transitions() == [(99, 1)]
        assert summary.course_bins.counts[3] == 1  # 90° → bin 3 of 30° bins
        assert summary.heading_bins.total == 1

    def test_none_heading_skips_heading_stats(self):
        summary = CellSummary()
        _update(summary, heading=None)
        assert summary.heading.count == 0
        assert summary.heading_bins.total == 0
        assert summary.course.count == 1

    def test_record_without_trip_fields(self):
        summary = CellSummary()
        summary.update(mmsi=5, sog=8.0, cog=10.0, heading=10)
        assert summary.records == 1
        assert summary.trips.cardinality() == 0
        assert summary.eto.count == 0
        assert summary.top_destination() is None

    def test_merge_matches_single_pass(self):
        rng = random.Random(8)
        whole = CellSummary()
        left = CellSummary()
        right = CellSummary()
        for i in range(400):
            kwargs = dict(
                mmsi=rng.randrange(20),
                sog=rng.uniform(0, 20),
                cog=rng.uniform(0, 359.9),
                heading=rng.randrange(360),
                trip=f"trip-{rng.randrange(40)}",
                eto=rng.uniform(0, 1e5),
                ata=rng.uniform(0, 1e5),
                origin=rng.choice("ABC"),
                destination=rng.choice("XYZ"),
                next_cell=rng.randrange(5),
            )
            _update(whole, **kwargs)
            _update(left if i % 2 else right, **kwargs)
        merged = left.merge(right)
        assert merged.records == whole.records
        assert merged.speed.mean == pytest.approx(whole.speed.mean)
        assert merged.speed.std == pytest.approx(whole.speed.std)
        assert merged.course.mean_deg == pytest.approx(whole.course.mean_deg)
        assert merged.ships.cardinality() == whole.ships.cardinality()
        assert merged.trips.cardinality() == whole.trips.cardinality()
        assert merged.course_bins.counts == whole.course_bins.counts
        assert [t.value for t in merged.destinations.top(3)] == [
            t.value for t in whole.destinations.top(3)
        ]

    def test_dict_roundtrip_preserves_everything(self):
        rng = random.Random(9)
        summary = CellSummary(SummaryConfig(hll_precision=8, topn_capacity=8))
        for _ in range(150):
            _update(
                summary,
                mmsi=rng.randrange(30),
                sog=rng.uniform(0, 25),
                cog=rng.uniform(0, 359.9),
                next_cell=rng.randrange(7),
            )
        restored = CellSummary.from_dict(summary.to_dict())
        assert restored.records == summary.records
        assert restored.config == summary.config
        assert restored.speed.mean == pytest.approx(summary.speed.mean)
        assert restored.ships.cardinality() == summary.ships.cardinality()
        assert restored.course_bins.counts == summary.course_bins.counts
        assert restored.speed_percentiles() == pytest.approx(
            summary.speed_percentiles()
        )
        assert [t.value for t in restored.transitions.top(3)] == [
            t.value for t in summary.transitions.top(3)
        ]

    def test_percentiles_ordered(self):
        rng = random.Random(10)
        summary = CellSummary()
        for _ in range(500):
            _update(summary, sog=rng.lognormvariate(2, 0.5))
        p10, p50, p90 = summary.speed_percentiles()
        assert p10 <= p50 <= p90
