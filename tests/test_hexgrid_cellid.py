"""Tests for repro.hexgrid.cellid."""

import pytest
from hypothesis import given, strategies as st

from repro.hexgrid import (
    MAX_RESOLUTION,
    cell_to_string,
    get_resolution,
    is_valid_cell,
    pack_cell,
    string_to_cell,
    unpack_cell,
)

COORDS = st.integers(min_value=-(1 << 27), max_value=(1 << 27))
RESOLUTIONS = st.integers(min_value=0, max_value=MAX_RESOLUTION)


@given(res=RESOLUTIONS, q=COORDS, r=COORDS)
def test_pack_unpack_roundtrip(res, q, r):
    assert unpack_cell(pack_cell(res, q, r)) == (res, q, r)


@given(res=RESOLUTIONS, q=COORDS, r=COORDS)
def test_packed_ids_are_positive(res, q, r):
    assert pack_cell(res, q, r) > 0


def test_pack_rejects_bad_resolution():
    with pytest.raises(ValueError):
        pack_cell(16, 0, 0)
    with pytest.raises(ValueError):
        pack_cell(-1, 0, 0)


def test_pack_rejects_out_of_range_coordinates():
    with pytest.raises(ValueError):
        pack_cell(5, 1 << 29, 0)
    with pytest.raises(ValueError):
        pack_cell(5, 0, -(1 << 29))


def test_get_resolution():
    assert get_resolution(pack_cell(7, 100, -100)) == 7


def test_unpack_rejects_garbage():
    with pytest.raises(ValueError):
        unpack_cell(-5)
    with pytest.raises(ValueError):
        unpack_cell(1 << 63)


def test_is_valid_cell():
    assert is_valid_cell(pack_cell(6, 0, 0))
    assert not is_valid_cell(-1)
    assert not is_valid_cell("nope")
    assert not is_valid_cell(True)
    assert not is_valid_cell(1 << 63)


@given(res=RESOLUTIONS, q=COORDS, r=COORDS)
def test_string_roundtrip(res, q, r):
    cell = pack_cell(res, q, r)
    assert string_to_cell(cell_to_string(cell)) == cell


def test_string_form_is_fixed_width():
    assert len(cell_to_string(pack_cell(0, 0, 0))) == 16


def test_string_to_cell_rejects_nonhex():
    with pytest.raises(ValueError):
        string_to_cell("not-hex!")


def test_sort_order_groups_resolutions():
    coarse = pack_cell(3, 1000, 1000)
    fine = pack_cell(9, -1000, -1000)
    assert coarse < fine  # resolution occupies the high bits
