"""Tests for the AIS 6-bit packing layer."""

import pytest
from hypothesis import given, strategies as st

from repro.ais.sixbit import (
    SIXBIT_CHARSET,
    BitReader,
    BitWriter,
    armor,
    unarmor,
)


def test_charset_has_64_symbols():
    assert len(SIXBIT_CHARSET) == 64
    assert SIXBIT_CHARSET[0] == "@"
    assert SIXBIT_CHARSET[32] == " "


@given(value=st.integers(min_value=0, max_value=(1 << 30) - 1),
       width=st.integers(min_value=30, max_value=40))
def test_uint_roundtrip(value, width):
    writer = BitWriter()
    writer.write_uint(value, width)
    assert BitReader(writer.to_bits()).read_uint(width) == value


@given(value=st.integers(min_value=-(1 << 27), max_value=(1 << 27) - 1))
def test_int_roundtrip(value):
    writer = BitWriter()
    writer.write_int(value, 28)
    assert BitReader(writer.to_bits()).read_int(28) == value


def test_uint_overflow_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_uint(256, 8)
    with pytest.raises(ValueError):
        writer.write_uint(-1, 8)


def test_int_range_raises():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_int(128, 8)
    with pytest.raises(ValueError):
        writer.write_int(-129, 8)


def test_bool_roundtrip():
    writer = BitWriter()
    writer.write_bool(True)
    writer.write_bool(False)
    reader = BitReader(writer.to_bits())
    assert reader.read_bool() is True
    assert reader.read_bool() is False


def test_string_roundtrip_with_padding():
    writer = BitWriter()
    writer.write_string("EVER GIVEN", 120)
    assert len(writer) == 120
    assert BitReader(writer.to_bits()).read_string(120) == "EVER GIVEN"


def test_string_lowercase_upcased():
    writer = BitWriter()
    writer.write_string("rotterdam", 60)
    assert BitReader(writer.to_bits()).read_string(60) == "ROTTERDAM"


def test_string_truncated_to_width():
    writer = BitWriter()
    writer.write_string("ABCDEFGHIJ", 18)  # three characters
    assert BitReader(writer.to_bits()).read_string(18) == "ABC"


def test_string_rejects_bad_width_and_charset():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_string("A", 7)
    with pytest.raises(ValueError):
        writer.write_string("~", 6)


def test_reader_truncation_raises():
    writer = BitWriter()
    writer.write_uint(5, 4)
    reader = BitReader(writer.to_bits())
    with pytest.raises(ValueError):
        reader.read_uint(8)


@given(bits=st.lists(st.integers(min_value=0, max_value=1), max_size=300))
def test_armor_roundtrip(bits):
    payload, fill = armor(bits)
    assert 0 <= fill <= 5
    assert (len(bits) + fill) % 6 == 0
    assert unarmor(payload, fill) == bits


def test_armor_charset_excludes_confusables():
    # Armored characters are in the two valid ASCII ranges only.
    payload, _ = armor([1, 0, 1, 1, 0, 1] * 40)
    for char in payload:
        assert 48 <= ord(char) <= 87 or 96 <= ord(char) <= 119


def test_unarmor_rejects_bad_fill_and_chars():
    with pytest.raises(ValueError):
        unarmor("0", 6)
    with pytest.raises(ValueError):
        unarmor("~", 0)
