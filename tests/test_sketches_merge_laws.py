"""Property-based merge laws shared by every sketch.

The reduce phase requires each statistic to behave as a commutative
monoid *on the estimates it reports*: merging in any grouping must give
the same answer as a single pass (exactly for the exact sketches,
identically-deterministic for the hash-based ones).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import (
    CircularMoments,
    DirectionHistogram,
    HyperLogLog,
    MomentsSketch,
    SpaceSaving,
    TDigest,
)

FLOATS = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
ANGLES = st.floats(min_value=0.0, max_value=359.99)
IDS = st.integers(min_value=0, max_value=200)


def _three_way(factory, update, values, cut1, cut2):
    """Build ((a+b)+c) and (a+(b+c)) and a single pass, return all three."""
    cut1, cut2 = sorted((min(cut1, len(values)), min(cut2, len(values))))
    parts = [values[:cut1], values[cut1:cut2], values[cut2:]]
    sketches = []
    for part in parts:
        sketch = factory()
        for value in part:
            update(sketch, value)
        sketches.append(sketch)
    left = factory()
    for value in values:
        update(left, value)

    ab_c = factory()
    for part in parts:
        tmp = factory()
        for value in part:
            update(tmp, value)
        ab_c.merge(tmp)
    return left, ab_c


@given(values=st.lists(FLOATS, min_size=0, max_size=120),
       cut1=st.integers(0, 120), cut2=st.integers(0, 120))
def test_moments_merge_associative(values, cut1, cut2):
    whole, merged = _three_way(
        MomentsSketch, lambda s, v: s.update(v), values, cut1, cut2
    )
    assert merged.count == whole.count
    if whole.count:
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)
        assert merged.std == pytest.approx(whole.std, rel=1e-6, abs=1e-6)


@given(values=st.lists(ANGLES, min_size=0, max_size=120),
       cut1=st.integers(0, 120), cut2=st.integers(0, 120))
def test_circular_merge_exact(values, cut1, cut2):
    whole, merged = _three_way(
        CircularMoments, lambda s, v: s.update(v), values, cut1, cut2
    )
    assert merged.count == whole.count
    assert merged.sum_cos == pytest.approx(whole.sum_cos, abs=1e-9)
    assert merged.sum_sin == pytest.approx(whole.sum_sin, abs=1e-9)


@given(values=st.lists(IDS, min_size=0, max_size=150),
       cut1=st.integers(0, 150), cut2=st.integers(0, 150))
def test_hll_merge_identical_to_single_pass(values, cut1, cut2):
    whole, merged = _three_way(
        lambda: HyperLogLog(8), lambda s, v: s.update(v), values, cut1, cut2
    )
    # Register-max merging is exactly order-independent, so estimates match
    # bit for bit, not just approximately.
    assert merged.cardinality() == whole.cardinality()


@given(values=st.lists(ANGLES, min_size=0, max_size=120),
       cut1=st.integers(0, 120), cut2=st.integers(0, 120))
def test_histogram_merge_exact(values, cut1, cut2):
    whole, merged = _three_way(
        DirectionHistogram, lambda s, v: s.update(v), values, cut1, cut2
    )
    assert merged.counts == whole.counts


@settings(max_examples=30)
@given(values=st.lists(FLOATS, min_size=1, max_size=300),
       cut1=st.integers(0, 300), cut2=st.integers(0, 300))
def test_tdigest_merge_close_to_single_pass(values, cut1, cut2):
    whole, merged = _three_way(
        lambda: TDigest(50.0), lambda s, v: s.update(v), values, cut1, cut2
    )
    assert merged.count == pytest.approx(whole.count)
    spread = max(values) - min(values)
    for q in (0.1, 0.5, 0.9):
        assert abs(merged.quantile(q) - whole.quantile(q)) <= 0.15 * spread + 1e-6


@given(values=st.lists(st.sampled_from("abcdefgh"), min_size=0, max_size=150),
       cut1=st.integers(0, 150), cut2=st.integers(0, 150))
def test_spacesaving_merge_exact_under_capacity(values, cut1, cut2):
    whole, merged = _three_way(
        lambda: SpaceSaving(16), lambda s, v: s.update(v), values, cut1, cut2
    )
    # Domain (8) < capacity (16): Space-Saving is exact and so is its merge.
    assert merged.total == whole.total
    for item in "abcdefgh":
        assert merged.count(item) == whole.count(item)
