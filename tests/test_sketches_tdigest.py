"""Tests for the merging t-digest."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import TDigest


def _fill(values, compression=100.0):
    digest = TDigest(compression)
    for value in values:
        digest.update(value)
    return digest


def test_empty_quantile_raises():
    with pytest.raises(ValueError):
        TDigest().quantile(0.5)


def test_quantile_range_validation():
    digest = _fill([1.0, 2.0])
    with pytest.raises(ValueError):
        digest.quantile(1.5)


def test_rejects_nan_and_bad_weight():
    digest = TDigest()
    with pytest.raises(ValueError):
        digest.update(float("nan"))
    with pytest.raises(ValueError):
        digest.update(1.0, weight=0.0)


def test_compression_validation():
    with pytest.raises(ValueError):
        TDigest(compression=1.0)


def test_single_value_all_quantiles():
    digest = _fill([7.5])
    for q in (0.0, 0.1, 0.5, 0.9, 1.0):
        assert digest.quantile(q) == 7.5


def test_extreme_quantiles_are_exact_min_max():
    rng = random.Random(5)
    values = [rng.gauss(0, 10) for _ in range(5000)]
    digest = _fill(values)
    assert digest.quantile(0.0) == pytest.approx(min(values))
    assert digest.quantile(1.0) == pytest.approx(max(values))


@pytest.mark.parametrize("q", [0.1, 0.25, 0.5, 0.75, 0.9])
def test_quantiles_on_lognormal(q):
    rng = random.Random(17)
    values = [rng.lognormvariate(1.0, 0.7) for _ in range(20000)]
    digest = _fill(values)
    exact = float(np.quantile(values, q))
    assert digest.quantile(q) == pytest.approx(exact, rel=0.03)


def test_quantiles_on_uniform_grid():
    values = [float(i) for i in range(10001)]
    digest = _fill(values)
    for q in (0.1, 0.5, 0.9):
        assert digest.quantile(q) == pytest.approx(q * 10000, rel=0.02)


def test_merge_matches_whole():
    rng = random.Random(3)
    values = [rng.expovariate(0.2) for _ in range(20000)]
    left = _fill(values[:9000])
    right = _fill(values[9000:])
    left.merge(right)
    whole = _fill(values)
    for q in (0.1, 0.5, 0.9):
        assert left.quantile(q) == pytest.approx(whole.quantile(q), rel=0.05)
        assert left.quantile(q) == pytest.approx(float(np.quantile(values, q)), rel=0.05)


def test_centroid_count_is_bounded():
    rng = random.Random(11)
    digest = _fill([rng.random() for _ in range(50000)], compression=100.0)
    assert digest.centroid_count() < 220


def test_cdf_monotone_and_bounded():
    rng = random.Random(23)
    values = sorted(rng.gauss(0, 1) for _ in range(5000))
    digest = _fill(values)
    probes = [values[i] for i in range(0, 5000, 500)]
    cdfs = [digest.cdf(p) for p in probes]
    assert all(0.0 <= c <= 1.0 for c in cdfs)
    assert cdfs == sorted(cdfs)


def test_cdf_quantile_inverse_consistency():
    rng = random.Random(29)
    values = [rng.gauss(50, 10) for _ in range(10000)]
    digest = _fill(values)
    for q in (0.2, 0.5, 0.8):
        assert digest.cdf(digest.quantile(q)) == pytest.approx(q, abs=0.03)


@settings(max_examples=25)
@given(values=st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=500))
def test_dict_roundtrip_preserves_quantiles(values):
    digest = _fill(values)
    restored = TDigest.from_dict(digest.to_dict())
    for q in (0.1, 0.5, 0.9):
        assert restored.quantile(q) == pytest.approx(digest.quantile(q), rel=1e-9, abs=1e-9)


def test_weighted_updates():
    digest = TDigest()
    digest.update(1.0, weight=99.0)
    digest.update(100.0, weight=1.0)
    assert digest.quantile(0.5) == pytest.approx(1.0, abs=2.0)
