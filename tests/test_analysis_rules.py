"""Per-rule fixtures: each invariant rule sees its true positive at the
expected line and stays silent on the matching negative.

Fixtures are tiny on-disk trees (the rules scope on root-relative paths
like ``inventory/`` and ``server/``), analyzed with exactly one rule so
a failure names the rule under test.  Expected lines are located by a
marker substring in the fixture source rather than hard-coded ints, so
editing a fixture cannot silently shift an assertion.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.findings import Finding
from repro.analysis.runner import analyze
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.corruption import SwallowedCorruptionRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.durability import DurableWriteRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.registry_sync import RegistrySyncRule


def make_tree(tmp_path, files: dict[str, str]):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def line_of(source: str, marker: str) -> int:
    for index, line in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if marker in line:
            return index
    raise AssertionError(f"marker {marker!r} not in fixture")


def hits(findings: list[Finding], rule: str) -> list[tuple[str, int]]:
    return [(f.path, f.line) for f in findings if f.rule == rule]


# ---------------------------------------------------------------- REP001


RAW_WRITER = """\
    import os


    def publish(path, payload):
        with open(path, "w") as handle:  # raw-open
            handle.write(payload)
        os.replace(path, path + ".bak")  # raw-replace
"""

ALIASED_WRITER = """\
    import os as osmod
    from os import rename as mv


    def shuffle(a, b):
        osmod.replace(a, b)  # aliased-replace
        mv(a, b)  # from-imported-rename
"""


def test_rep001_flags_raw_write_and_rename(tmp_path):
    root = make_tree(tmp_path, {"inventory/writer.py": RAW_WRITER})
    findings = analyze(root, [DurableWriteRule])
    assert hits(findings, "REP001") == [
        ("inventory/writer.py", line_of(RAW_WRITER, "raw-open")),
        ("inventory/writer.py", line_of(RAW_WRITER, "raw-replace")),
    ]


def test_rep001_aliasing_cannot_hide_the_call(tmp_path):
    root = make_tree(tmp_path, {"pipeline/stage.py": ALIASED_WRITER})
    findings = analyze(root, [DurableWriteRule])
    assert hits(findings, "REP001") == [
        ("pipeline/stage.py", line_of(ALIASED_WRITER, "aliased-replace")),
        ("pipeline/stage.py", line_of(ALIASED_WRITER, "from-imported-rename")),
    ]


def test_rep001_unprovable_mode_is_flagged(tmp_path):
    source = """\
        def reopen(path, mode):
            return open(path, mode)  # opaque-mode
    """
    root = make_tree(tmp_path, {"inventory/io.py": source})
    findings = analyze(root, [DurableWriteRule])
    assert hits(findings, "REP001") == [
        ("inventory/io.py", line_of(source, "opaque-mode"))
    ]


def test_rep001_negatives(tmp_path):
    root = make_tree(
        tmp_path,
        {
            # reads are fine
            "inventory/reader.py": """\
                def load(path):
                    with open(path, "rb") as handle:
                        return handle.read()
            """,
            # the seam itself is exempt — raw calls are supposed to live here
            "inventory/fsio.py": """\
                import os


                def atomic_write(path, payload):
                    with open(path, "wb") as handle:
                        handle.write(payload)
                    os.replace(path, path)
            """,
            # out of scope: the world generator is not storage code
            "world/dump.py": """\
                def dump(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
            """,
        },
    )
    assert analyze(root, [DurableWriteRule]) == []


RAW_WAL_APPEND = """\
    def append_entry(path, frame):
        with open(path, "ab") as handle:  # raw-append
            handle.write(frame)
"""

SEAMED_WAL_APPEND = """\
    from repro.inventory import fsio


    def append_entry(path, frame):
        handle = fsio.open_file(path, "ab")
        try:
            handle.write(frame)
            fsio.fsync_file(handle)
        finally:
            handle.close()
"""


def test_rep001_wal_appends_go_through_the_seam(tmp_path):
    """The WAL's append path (PR 8) is exactly the torn-write window the
    seam closes: a raw ``open(path, "ab")`` in storage code is flagged,
    the ``fsio.open_file`` form the real ``wal.py`` uses is clean —
    and invisible appends would also dodge the fault matrix, which
    interposes on the seam."""
    root = make_tree(tmp_path, {"inventory/rawwal.py": RAW_WAL_APPEND})
    findings = analyze(root, [DurableWriteRule])
    assert hits(findings, "REP001") == [
        ("inventory/rawwal.py", line_of(RAW_WAL_APPEND, "raw-append"))
    ]
    seamed = make_tree(
        tmp_path / "ok", {"inventory/seamwal.py": SEAMED_WAL_APPEND}
    )
    assert analyze(seamed, [DurableWriteRule]) == []


# ---------------------------------------------------------------- REP002


RACY_CACHE = """\
    import threading


    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def evict(self, key):
            self._items.pop(key, None)  # unlocked-pop
"""


def test_rep002_flags_lock_free_mutation(tmp_path):
    root = make_tree(tmp_path, {"cache.py": RACY_CACHE})
    findings = analyze(root, [LockDisciplineRule])
    assert hits(findings, "REP002") == [
        ("cache.py", line_of(RACY_CACHE, "unlocked-pop"))
    ]
    (finding,) = findings
    assert "_items" in finding.message and "evict" in finding.message


def test_rep002_negatives(tmp_path):
    root = make_tree(
        tmp_path,
        {
            # every mutation locked; __init__ is exempt by construction
            "clean.py": """\
                import threading


                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def drop(self, key):
                        with self._lock:
                            self._items.pop(key, None)
            """,
            # never locked anywhere: no evidence the attribute is shared
            "plain.py": """\
                class Bag:
                    def __init__(self):
                        self.values = []

                    def push(self, v):
                        self.values.append(v)
            """,
            # nested function bodies don't inherit the lock context
            "nested.py": """\
                import threading


                class Q:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._pending = []

                    def flush(self):
                        with self._lock:
                            self._pending.clear()

                    def deferred(self):
                        def later():
                            return None
                        return later
            """,
        },
    )
    assert analyze(root, [LockDisciplineRule]) == []


MULTI_ITEM_GUARD = """\
    import threading


    class Pair:
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._a_lock, self._b_lock:
                self._items[key] = value

        def evict(self, key):
            self._items.pop(key, None)  # unlocked-pop
"""

NESTED_GUARD = """\
    import threading


    class Pair:
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._a_lock:
                with self._b_lock:
                    self._items[key] = value

        def also_put(self, key, value):
            with self._b_lock:
                self._items[key] = value
"""

SPLIT_GUARD = """\
    import threading


    class Split:
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._a_lock:
                self._items[key] = value

        def evict(self, key):
            with self._b_lock:
                self._items.pop(key, None)
"""


def test_rep002_multi_item_with_counts_as_locked_and_names_the_locks(tmp_path):
    root = make_tree(tmp_path, {"pair.py": MULTI_ITEM_GUARD})
    findings = analyze(root, [LockDisciplineRule])
    assert hits(findings, "REP002") == [
        ("pair.py", line_of(MULTI_ITEM_GUARD, "unlocked-pop"))
    ]
    (finding,) = findings
    # The fix names the actual guards, not just "a lock".
    assert "self._a_lock" in finding.message
    assert "self._b_lock" in finding.message


def test_rep002_nested_with_blocks_stack_and_overlap_is_not_split(tmp_path):
    # also_put holds _b_lock, put holds {_a_lock, _b_lock}: the sets
    # overlap, so there is a common lock and no finding of any kind.
    root = make_tree(tmp_path, {"pair.py": NESTED_GUARD})
    assert analyze(root, [LockDisciplineRule]) == []


def test_rep002_disjoint_lock_sets_are_a_split_guard_finding(tmp_path):
    root = make_tree(tmp_path, {"split.py": SPLIT_GUARD})
    findings = [f for f in analyze(root, [LockDisciplineRule]) if f.rule == "REP002"]
    assert len(findings) == 1
    assert "disjoint" in findings[0].message
    assert "_a_lock" in findings[0].message and "_b_lock" in findings[0].message


# ---------------------------------------------------------------- REP003


def test_rep003_used_but_not_declared(tmp_path):
    source = """\
        from repro.obs.trace import span


        def handle():
            with span("repro.not.registered"):  # rogue-span
                pass
    """
    registry = """\
        def register_span(name, meaning):
            return name


        SPAN_OK = register_span("repro.ok", "declared and used")
    """
    user = """\
        from repro.obs.trace import span


        def ok():
            with span("repro.ok"):
                pass
    """
    root = make_tree(
        tmp_path,
        {
            "server/handlers.py": source,
            "obs/registry.py": registry,
            "obs/user.py": user,
        },
    )
    findings = analyze(root, [RegistrySyncRule])
    assert hits(findings, "REP003") == [
        ("server/handlers.py", line_of(source, "rogue-span"))
    ]
    (finding,) = findings
    assert "repro.not.registered" in finding.message


def test_rep003_declared_but_never_used(tmp_path):
    registry = """\
        def register_counter(name, meaning):
            return name


        register_counter("repro.dead.counter", "nobody bumps this")  # dead-decl
    """
    root = make_tree(tmp_path, {"obs/registry.py": registry})
    findings = analyze(root, [RegistrySyncRule])
    assert hits(findings, "REP003") == [
        ("obs/registry.py", line_of(registry, "dead-decl"))
    ]


def test_rep003_negatives_literal_symbol_and_dynamic_family(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "obs/registry.py": """\
                def register_span(name, meaning):
                    return name


                def register_counter(name, meaning):
                    return name


                SPAN_BUILD = register_span("repro.build", "used via its constant")
                register_counter("repro.cells.flushed", "used as a literal")
                KIND = "x"
                register_counter(f"repro.requests.{KIND}", "a dynamic family")
            """,
            "pipeline/run.py": """\
                from repro.obs.trace import span
                from repro.obs.registry import SPAN_BUILD


                def build(metrics, kind):
                    with span(SPAN_BUILD):
                        metrics.increment("repro.cells.flushed")
                        metrics.increment(f"repro.requests.{kind}")
                        seen = set()
                        seen.add("not-a-metric")
            """,
        },
    )
    assert analyze(root, [RegistrySyncRule]) == []


# ---------------------------------------------------------------- REP004


NONDETERMINISTIC = """\
    import random
    import time


    def jitter():
        return random.random() + time.time()  # global-random-and-clock
"""


def test_rep004_flags_global_random_and_wall_clock(tmp_path):
    root = make_tree(tmp_path, {"world/gen.py": NONDETERMINISTIC})
    findings = analyze(root, [DeterminismRule])
    line = line_of(NONDETERMINISTIC, "global-random-and-clock")
    assert hits(findings, "REP004") == [
        ("world/gen.py", line),
        ("world/gen.py", line),
    ]
    messages = " ".join(f.message for f in findings)
    assert "random.random" in messages and "time.time" in messages


def test_rep004_alias_import_is_still_caught(tmp_path):
    source = """\
        import random as rnd


        def pick(items):
            return rnd.choice(items)  # aliased-choice
    """
    root = make_tree(tmp_path, {"pipeline/sample.py": source})
    findings = analyze(root, [DeterminismRule])
    assert hits(findings, "REP004") == [
        ("pipeline/sample.py", line_of(source, "aliased-choice"))
    ]


def test_rep004_negatives(tmp_path):
    root = make_tree(
        tmp_path,
        {
            # the sanctioned pattern: a seeded instance threaded through
            "world/seeded.py": """\
                import random


                def make_rng(seed):
                    return random.Random(seed)


                def sample(rng, items):
                    return rng.choice(items)
            """,
            # a parameter shadowing the module name is not the global
            "world/shadow.py": """\
                def sample(random):
                    return random.random()
            """,
            # out of scope: benchmarks may time things
            "obs/bench.py": """\
                import time


                def stamp():
                    return time.time()
            """,
        },
    )
    assert analyze(root, [DeterminismRule]) == []


# ---------------------------------------------------------------- REP005


SWALLOWED = """\
    class SSTableError(Exception):
        pass


    def read_all(blocks):
        out = []
        for block in blocks:
            try:
                out.append(block.load())
            except SSTableError:  # swallowed-handler
                pass
        return out
"""


def test_rep005_flags_discarded_corruption(tmp_path):
    root = make_tree(tmp_path, {"inventory/reader.py": SWALLOWED})
    findings = analyze(root, [SwallowedCorruptionRule])
    assert hits(findings, "REP005") == [
        ("inventory/reader.py", line_of(SWALLOWED, "swallowed-handler"))
    ]


@pytest.mark.parametrize(
    "body",
    [
        # re-raised
        "        raise",
        # wrapped in a typed error
        "        raise RuntimeError('table is damaged')",
        # answered deliberately
        "        return None",
    ],
)
def test_rep005_reraise_and_return_are_compliant(tmp_path, body):
    source = (
        "class CorruptionError(Exception):\n"
        "    pass\n"
        "\n"
        "\n"
        "def load(block):\n"
        "    try:\n"
        "        return block.read()\n"
        "    except CorruptionError:\n"
        f"{body}\n"
    )
    root = make_tree(tmp_path, {"inventory/load.py": source})
    assert analyze(root, [SwallowedCorruptionRule]) == []


def test_rep005_recording_the_bound_exception_is_compliant(tmp_path):
    source = """\
        class SSTableError(Exception):
            pass


        def salvage(blocks, report):
            for block in blocks:
                try:
                    block.load()
                except SSTableError as exc:
                    report.append(str(exc))
    """
    root = make_tree(tmp_path, {"inventory/salvage.py": source})
    assert analyze(root, [SwallowedCorruptionRule]) == []


def test_rep005_other_exceptions_are_not_this_rules_business(tmp_path):
    source = """\
        def best_effort(action):
            try:
                action()
            except ValueError:
                pass
    """
    root = make_tree(tmp_path, {"inventory/misc.py": source})
    assert analyze(root, [SwallowedCorruptionRule]) == []


# ---------------------------------------------------------------- REP006


BLOCKING_HANDLER = """\
    import time


    async def handle(request):
        time.sleep(0.1)  # blocking-sleep
        with open("spool.bin") as handle:  # blocking-open
            return handle.read()


    async def lookup(addr, key):
        client = InventoryClient(addr)  # sync-client
        return client.get(key)
"""


def test_rep006_flags_blocking_calls_in_async_defs(tmp_path):
    root = make_tree(tmp_path, {"server/handlers.py": BLOCKING_HANDLER})
    findings = analyze(root, [AsyncBlockingRule])
    assert hits(findings, "REP006") == [
        ("server/handlers.py", line_of(BLOCKING_HANDLER, "blocking-sleep")),
        ("server/handlers.py", line_of(BLOCKING_HANDLER, "blocking-open")),
        ("server/handlers.py", line_of(BLOCKING_HANDLER, "sync-client")),
    ]


def test_rep006_negatives(tmp_path):
    root = make_tree(
        tmp_path,
        {
            # the sanctioned patterns: await sleep, work on the executor,
            # blocking code confined to nested (executor-bound) defs
            "server/clean.py": """\
                import asyncio
                import time


                async def handle(loop, path):
                    await asyncio.sleep(0.1)

                    def blocking_read():
                        with open(path, "rb") as handle:
                            return handle.read()

                    return await loop.run_in_executor(None, blocking_read)


                def sync_helper():
                    time.sleep(0.1)
            """,
            # out of scope: async code outside server/ is not the loop
            "pipeline/feeder.py": """\
                import time


                async def feed():
                    time.sleep(1)
            """,
        },
    )
    assert analyze(root, [AsyncBlockingRule]) == []
