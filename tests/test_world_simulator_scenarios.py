"""Tests for the track simulator, corruption model and scenarios."""

import random

import pytest

from repro.ais.messages import NavigationStatus
from repro.geo import haversine_m
from repro.world import (
    NoiseModel,
    PortShutdown,
    SeaRouter,
    SuezBlockage,
    TrackSimulator,
)
from repro.world.ports import port_by_id
from repro.world.voyages import VoyagePlan


@pytest.fixture(scope="module")
def router():
    return SeaRouter()


@pytest.fixture(scope="module")
def simulator(router):
    return TrackSimulator(router, report_interval_s=600.0)


def _plan(router, origin="SGSIN", destination="MYPKG", speed=14.0, depart=0.0):
    return VoyagePlan(
        mmsi=235000001,
        origin=origin,
        destination=destination,
        depart_ts=depart,
        speed_kn=speed,
        route_nodes=tuple(router.route_nodes(origin, destination)),
    )


class TestVoyageTrack:
    def test_track_starts_in_origin_and_ends_in_destination(self, router, simulator):
        plan = _plan(router)
        track = simulator.voyage_track(plan, end_ts=30 * 86400.0, rng=random.Random(1))
        assert track
        origin = port_by_id(plan.origin)
        destination = port_by_id(plan.destination)
        assert haversine_m(track[0].lat, track[0].lon, origin.lat, origin.lon) \
            <= origin.radius_m
        assert haversine_m(track[-1].lat, track[-1].lon,
                           destination.lat, destination.lon) <= destination.radius_m

    def test_timestamps_monotone_at_interval(self, router, simulator):
        plan = _plan(router)
        track = simulator.voyage_track(plan, end_ts=30 * 86400.0, rng=random.Random(2))
        diffs = {round(b.epoch_ts - a.epoch_ts) for a, b in zip(track, track[1:])}
        assert diffs == {600}

    def test_transitions_are_feasible(self, router, simulator):
        from repro.geo import speed_between_knots

        plan = _plan(router)
        track = simulator.voyage_track(plan, end_ts=30 * 86400.0, rng=random.Random(3))
        for a, b in zip(track, track[1:]):
            implied = speed_between_knots(
                a.lat, a.lon, a.epoch_ts, b.lat, b.lon, b.epoch_ts
            )
            assert implied < 50.0

    def test_speed_slows_near_ports(self, router, simulator):
        plan = _plan(router, origin="CNSHA", destination="SGSIN")
        track = simulator.voyage_track(plan, end_ts=60 * 86400.0, rng=random.Random(4))
        start_speed = track[0].sog
        mid_speed = track[len(track) // 2].sog
        assert start_speed < mid_speed

    def test_truncation_at_window_end(self, router, simulator):
        plan = _plan(router, origin="CNSHA", destination="NLRTM")
        track = simulator.voyage_track(plan, end_ts=86400.0, rng=random.Random(5))
        assert all(report.epoch_ts < 86400.0 for report in track)
        destination = port_by_id("NLRTM")
        # Far from done: the truncated track must not have arrived.
        assert haversine_m(track[-1].lat, track[-1].lon,
                           destination.lat, destination.lon) > 1_000_000

    def test_reports_carry_valid_fields(self, router, simulator):
        from repro.ais.validation import is_valid_position_report

        plan = _plan(router)
        track = simulator.voyage_track(plan, end_ts=30 * 86400.0, rng=random.Random(6))
        assert all(is_valid_position_report(report) for report in track)


class TestDwellAndLocal:
    def test_dwell_reports_moored_near_port(self, router, simulator):
        port = port_by_id("NLRTM")
        track = simulator.dwell_track(port, 235000001, 0.0, 86400.0, random.Random(7))
        assert track
        for report in track:
            assert report.status == int(NavigationStatus.MOORED)
            assert report.sog < 1.0
            assert haversine_m(report.lat, report.lon, port.lat, port.lon) < 5_000

    def test_local_track_stays_near_home(self, router, simulator):
        port = port_by_id("SGSIN")
        track = simulator.local_track(
            335000001, port, 0.0, 5 * 86400.0, random.Random(8)
        )
        assert track
        for report in track:
            assert haversine_m(report.lat, report.lon, port.lat, port.lon) < 120_000
            assert report.status == int(NavigationStatus.FISHING)


class TestCorruption:
    def test_injection_counts_match_stats(self, router):
        noisy = TrackSimulator(
            router,
            noise=NoiseModel(p_bad_field=0.05, p_duplicate=0.05,
                             p_out_of_order=0.05, p_teleport=0.02),
            report_interval_s=600.0,
        )
        plan = _plan(router, origin="CNSHA", destination="SGSIN")
        clean = noisy.voyage_track(plan, end_ts=60 * 86400.0, rng=random.Random(9))
        corrupted, stats = noisy.corrupt(clean, random.Random(10))
        assert stats.total() > 0
        assert len(corrupted) == len(clean) + stats.duplicate
        # Out-of-order swaps leave non-monotone timestamps behind.
        inversions = sum(
            1 for a, b in zip(corrupted, corrupted[1:]) if b.epoch_ts < a.epoch_ts
        )
        assert inversions >= stats.out_of_order * 0.5

    def test_bad_fields_fail_validation(self, router):
        from repro.ais.validation import is_valid_position_report

        noisy = TrackSimulator(
            router,
            noise=NoiseModel(p_bad_field=0.2, p_duplicate=0.0,
                             p_out_of_order=0.0, p_teleport=0.0),
        )
        plan = _plan(router)
        clean = noisy.voyage_track(plan, end_ts=30 * 86400.0, rng=random.Random(11))
        corrupted, stats = noisy.corrupt(clean, random.Random(12))
        invalid = sum(1 for r in corrupted if not is_valid_position_report(r))
        assert invalid == stats.bad_field > 0

    def test_zero_noise_is_identity(self, router):
        quiet = TrackSimulator(
            router,
            noise=NoiseModel(p_bad_field=0.0, p_duplicate=0.0,
                             p_out_of_order=0.0, p_teleport=0.0),
        )
        plan = _plan(router)
        clean = quiet.voyage_track(plan, end_ts=30 * 86400.0, rng=random.Random(13))
        corrupted, stats = quiet.corrupt(list(clean), random.Random(14))
        assert stats.total() == 0
        assert corrupted == clean

    def test_interval_validation(self, router):
        with pytest.raises(ValueError):
            TrackSimulator(router, report_interval_s=0.0)


class TestScenarios:
    def test_suez_blockage_rewrites_affected_voyages(self, router):
        plan_in_window = _plan(router, origin="CNSHA", destination="NLRTM", depart=10.0)
        plan_outside = _plan(router, origin="CNSHA", destination="NLRTM",
                             depart=10 * 86400.0)
        plan_unrelated = _plan(router, origin="USLAX", destination="JPTYO", depart=10.0)
        scenario = SuezBlockage(start_ts=0.0, end_ts=86400.0)
        rewritten = scenario.apply(
            [plan_in_window, plan_outside, plan_unrelated], router
        )
        assert "GOOD" in rewritten[0].route_nodes
        assert rewritten[0].origin == plan_in_window.origin
        assert rewritten[1].route_nodes == plan_outside.route_nodes
        assert rewritten[2].route_nodes == plan_unrelated.route_nodes

    def test_port_shutdown_diverts_arrivals(self, router):
        plan = _plan(router, origin="CNSHA", destination="CNSZX", depart=10.0)
        scenario = PortShutdown(port_id="CNSZX", start_ts=0.0, end_ts=86400.0)
        rewritten = scenario.apply([plan], router)[0]
        assert rewritten.destination != "CNSZX"
        assert rewritten.origin == "CNSHA"
        # Diverted to a *nearby* alternative.
        old = port_by_id("CNSZX")
        new = port_by_id(rewritten.destination)
        assert haversine_m(old.lat, old.lon, new.lat, new.lon) < 1_000_000

    def test_port_shutdown_ignores_window_outside(self, router):
        plan = _plan(router, origin="CNSHA", destination="CNSZX", depart=5 * 86400.0)
        scenario = PortShutdown(port_id="CNSZX", start_ts=0.0, end_ts=86400.0)
        assert scenario.apply([plan], router)[0].destination == "CNSZX"
