"""Tests for the shuffle exchange, partitioners and stable hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import HashPartitioner, RangePartitioner, stable_hash
from repro.engine.shuffle import ShuffleStats, exchange


class TestStableHash:
    def test_supported_types(self):
        for value in [0, -5, "abc", b"abc", 1.5, None, True, (1, "a", (2,))]:
            assert isinstance(stable_hash(value), int)

    def test_distinct_types_hash_differently(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(b"x") != stable_hash("x")
        assert stable_hash(True) != stable_hash(1)

    def test_deterministic(self):
        assert stable_hash(("vessel", 235000001)) == stable_hash(("vessel", 235000001))

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])

    @given(value=st.integers())
    def test_int_hash_is_64_bit(self, value):
        assert 0 <= stable_hash(value) < (1 << 64)


class TestHashPartitioner:
    def test_range(self):
        partitioner = HashPartitioner(8)
        for key in ["a", "b", 42, (1, 2)]:
            assert 0 <= partitioner.partition(key) < 8

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_spread_is_reasonable(self):
        partitioner = HashPartitioner(10)
        counts = [0] * 10
        for i in range(10000):
            counts[partitioner.partition(i)] += 1
        assert min(counts) > 700


class TestRangePartitioner:
    def test_bounds_routing(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.num_partitions == 3
        assert partitioner.partition(5) == 0
        assert partitioner.partition(10) == 1
        assert partitioner.partition(15) == 1
        assert partitioner.partition(25) == 2

    def test_key_function(self):
        partitioner = RangePartitioner([10], key=len)
        assert partitioner.partition("short") == 0
        assert partitioner.partition("much longer string") == 1

    def test_from_sample_produces_balanced_bounds(self):
        sample = list(range(1000))
        partitioner = RangePartitioner.from_sample(sample, 4)
        counts = [0] * partitioner.num_partitions
        for value in sample:
            counts[partitioner.partition(value)] += 1
        assert len([c for c in counts if c > 0]) == 4
        assert max(counts) < 2 * min(c for c in counts if c > 0)

    def test_from_sample_empty(self):
        partitioner = RangePartitioner.from_sample([], 4)
        assert partitioner.partition(123) == 0

    def test_from_sample_validation(self):
        with pytest.raises(ValueError):
            RangePartitioner.from_sample([1], 0)


class TestExchange:
    def test_routes_records(self):
        out = exchange([[1, 2, 3], [4, 5]], route=lambda r: r % 2, num_out=2)
        assert out == [[2, 4], [1, 3, 5]]

    def test_preserves_map_order_within_bucket(self):
        out = exchange([[3, 1], [2]], route=lambda r: 0, num_out=1)
        assert out == [[3, 1, 2]]

    def test_rejects_bad_router(self):
        with pytest.raises(ValueError):
            exchange([[1]], route=lambda r: 5, num_out=2)
        with pytest.raises(ValueError):
            exchange([[1]], route=lambda r: 0, num_out=0)

    def test_spill_roundtrip(self, tmp_path):
        stats = ShuffleStats()
        data = [[i for i in range(1000)]]
        out = exchange(
            data,
            route=lambda r: r % 3,
            num_out=3,
            spill_dir=tmp_path,
            spill_threshold=50,
            stats=stats,
        )
        assert sorted(sum(out, [])) == list(range(1000))
        assert stats.rows == 1000
        assert stats.spilled_rows > 0
        assert stats.spill_files > 0
        # Spill files are cleaned up after draining.
        assert not list(tmp_path.glob("spill-*.pkl"))

    def test_no_spill_without_directory(self):
        stats = ShuffleStats()
        exchange([[1] * 500], route=lambda r: 0, num_out=1,
                 spill_threshold=10, stats=stats)
        assert stats.spilled_rows == 0
