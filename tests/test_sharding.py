"""The sharding layer: ring determinism, placement manifest, table split.

No sockets here — this suite pins the *build-side* contracts the router
relies on: two processes that share only a placement manifest must agree
on every cell's owner (ring determinism), a split must conserve and
colocate entries (every grouping-set key of a cell on one shard), and
the manifest must publish atomically (a crashed publish leaves the old
manifest intact).  The serving-side equivalence and fault behaviour live
in ``test_sharding_equivalence.py`` and ``test_router_faults.py``.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import PipelineConfig, build_inventory
from repro.inventory import fsio
from repro.inventory.sstable import SSTableReader, _key_bytes, write_inventory
from repro.server.sharding import (
    DEFAULT_VNODES,
    HashRing,
    Placement,
    ShardSpec,
    default_shard_names,
    load_placement,
    placement_path,
    publish_split,
    rebalance,
    save_placement,
    shard_table_path,
    split_inventory,
)


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(default_shard_names(4))
        b = HashRing(default_shard_names(4))
        cells = range(10_000, 11_000)
        assert [a.primary(c) for c in cells] == [b.primary(c) for c in cells]

    def test_assignment_is_balanced(self):
        ring = HashRing(default_shard_names(4))
        counts = Counter(ring.primary(c) for c in range(100_000, 104_000))
        assert set(counts) == {0, 1, 2, 3}
        # Virtual nodes keep the spread modest: no shard beyond 2x the
        # ideal quarter share over 4k cells.
        assert max(counts.values()) < 2 * (4_000 // 4)

    def test_join_moves_a_minority_of_cells(self):
        before = HashRing(default_shard_names(4))
        after = HashRing(default_shard_names(5))
        cells = range(100_000, 102_000)
        moved = sum(1 for c in cells if before.primary(c) != after.primary(c))
        # Consistent hashing: a 4 -> 5 join should move about 1/5 of the
        # key-space, and certainly nowhere near a full reshuffle.
        assert 0 < moved < len(range(100_000, 102_000)) // 2

    def test_owners_start_at_primary_and_are_distinct(self):
        ring = HashRing(default_shard_names(4))
        for cell in range(5_000, 5_100):
            owners = ring.owners(cell, 3)
            assert owners[0] == ring.primary(cell)
            assert len(owners) == len(set(owners)) == 3

    def test_owners_caps_at_shard_count(self):
        ring = HashRing(default_shard_names(2))
        assert len(ring.owners(123, 5)) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            HashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a", "a"])
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["a"], vnodes=0)
        with pytest.raises(ValueError, match="count"):
            HashRing(["a", "b"]).owners(1, 0)


class TestPlacement:
    def _placement(self) -> Placement:
        return Placement(
            version=2,
            resolution=6,
            vnodes=DEFAULT_VNODES,
            source="inv.sst",
            shards=(
                ShardSpec(name="shard-0", table="inv.sst.v2.shard-0", entries=10),
                ShardSpec(name="shard-1", table="inv.sst.v2.shard-1", entries=7),
            ),
        )

    def test_json_round_trip(self):
        placement = self._placement()
        assert Placement.from_json(placement.to_json()) == placement

    def test_save_load_round_trip(self, tmp_path):
        placement = self._placement()
        path = tmp_path / "inv.sst.placement.json"
        save_placement(path, placement)
        assert load_placement(path) == placement

    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="not a placement manifest"):
            Placement.from_json({"format": "something-else"})

    def test_validation(self):
        with pytest.raises(ValueError, match="version"):
            Placement(version=0, resolution=6, vnodes=1, shards=(
                ShardSpec(name="a", table="t", entries=0),
            ))
        with pytest.raises(ValueError, match="at least one shard"):
            Placement(version=1, resolution=6, vnodes=1, shards=())

    def test_derived_accessors(self):
        placement = self._placement()
        assert placement.shard_names() == ("shard-0", "shard-1")
        assert placement.total_entries() == 17
        ring = placement.ring()
        assert ring.shard_names == ("shard-0", "shard-1")

    def test_publish_is_atomic_under_rename_crash(self, tmp_path):
        """A crash at the rename leaves the previous manifest intact —
        the fsio contract the router's reloads depend on."""
        path = tmp_path / "inv.sst.placement.json"
        placement = self._placement()
        save_placement(path, placement)

        def crash_rename(src, dst):
            raise OSError("simulated crash before rename")

        fsio.hooks.replace = crash_rename
        try:
            with pytest.raises(OSError, match="simulated crash"):
                save_placement(
                    path,
                    Placement(
                        version=3,
                        resolution=6,
                        vnodes=DEFAULT_VNODES,
                        shards=(ShardSpec(name="x", table="t", entries=1),),
                    ),
                )
        finally:
            fsio.hooks.reset()
        assert load_placement(path) == placement  # old manifest survives

    def test_shard_table_naming(self, tmp_path):
        out = tmp_path / "inv.sst"
        assert shard_table_path(out, "shard-0", 1).name == "inv.sst.shard-0"
        # Rebalanced generations are version-tagged so they never
        # overwrite tables still being served.
        assert shard_table_path(out, "shard-0", 2).name == "inv.sst.v2.shard-0"
        assert placement_path(out).name == "inv.sst.placement.json"


class TestSplitInventory:
    @pytest.fixture(scope="class")
    def source(self, tmp_path_factory, small_inventory):
        path = tmp_path_factory.mktemp("split") / "inv.sst"
        write_inventory(small_inventory, path)
        return path

    def test_split_conserves_and_colocates(self, source, small_inventory):
        placement = split_inventory(source, resolution=6, shards=3)
        ring = placement.ring()
        total = 0
        seen_cells: dict[int, int] = {}
        for index, spec in enumerate(placement.shards):
            with SSTableReader(source.with_name(spec.table)) as reader:
                keys = [key for key, _ in reader.scan()]
            assert len(keys) == spec.entries
            encoded = [_key_bytes(key) for key in keys]
            assert encoded == sorted(encoded)  # per-shard order inherited
            for key in keys:
                # The assignment the manifest's ring predicts…
                assert ring.primary(key.cell) == index
                # …and colocation: a cell never spans shards.
                assert seen_cells.setdefault(key.cell, index) == index
            total += len(keys)
        assert total == len(small_inventory)
        assert placement.total_entries() == len(small_inventory)

    def test_empty_shards_are_valid(self, tmp_path, small_inventory):
        """More shards than occupied ring ranges ⇒ some shards own no
        keys; their tables must still be written and servable."""
        key, summary = next(iter(small_inventory.items()))
        from repro.inventory.store import Inventory

        one = Inventory(resolution=6)
        one.put(key, summary)
        path = tmp_path / "one.sst"
        write_inventory(one, path)
        placement = split_inventory(path, resolution=6, shards=4)
        entry_counts = sorted(spec.entries for spec in placement.shards)
        assert entry_counts.count(0) == 3  # one owner, three empty
        for spec in placement.shards:
            with SSTableReader(path.with_name(spec.table)) as reader:
                assert reader.entry_count == spec.entries

    def test_publish_split_writes_manifest(self, source):
        placement = publish_split(source, resolution=6, shards=2)
        assert load_placement(placement_path(source)) == placement
        assert placement.version == 1
        assert placement.source == source.name

    def test_rebalance_bumps_version_and_conserves(self, source):
        current = split_inventory(source, resolution=6, shards=2)
        grown = rebalance(current, source, shards=3)
        assert grown.version == current.version + 1
        assert grown.total_entries() == current.total_entries()
        # New generation lives under version-tagged names.
        assert all(".v2." in spec.table for spec in grown.shards)
        with pytest.raises(ValueError, match="changed shard set"):
            rebalance(current, source, shards=2)


class TestShardedBuild:
    def test_build_inventory_shards(self, tmp_path, small_world):
        out = tmp_path / "inv.sst"
        result = build_inventory(
            small_world.positions,
            small_world.fleet,
            small_world.ports,
            PipelineConfig(resolution=6),
            output=out,
            shards=3,
        )
        placement = result.placement
        assert placement is not None
        assert placement.resolution == 6
        assert placement.total_entries() == result.entries
        assert load_placement(placement_path(out)) == placement
        tables = result.shard_tables()
        assert len(tables) == 3
        assert all(table.exists() for table in tables)

    def test_single_shard_build_stays_plain(self, tmp_path, small_world):
        out = tmp_path / "inv.sst"
        result = build_inventory(
            small_world.positions,
            small_world.fleet,
            small_world.ports,
            PipelineConfig(resolution=6),
            output=out,
        )
        assert result.placement is None
        assert result.shard_tables() == []
        assert not placement_path(out).exists()

    def test_sharded_build_requires_output(self, small_world):
        with pytest.raises(ValueError, match="output"):
            build_inventory(
                small_world.positions,
                small_world.fleet,
                small_world.ports,
                PipelineConfig(resolution=6),
                shards=2,
            )
        with pytest.raises(ValueError, match="at least one shard"):
            build_inventory(
                small_world.positions,
                small_world.fleet,
                small_world.ports,
                PipelineConfig(resolution=6),
                shards=0,
            )


class TestDefaultNames:
    def test_names(self):
        assert default_shard_names(2) == ["shard-0", "shard-1"]
        with pytest.raises(ValueError):
            default_shard_names(0)
