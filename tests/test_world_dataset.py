"""Tests for end-to-end dataset generation."""

import pytest

from repro.ais.vesseltypes import COMMERCIAL_SEGMENTS
from repro.geo.polygon import BoundingBox
from repro.world import WorldConfig, generate_dataset
from repro.world.dataset import EPOCH_2022


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        WorldConfig(seed=77, n_vessels=12, days=8.0, report_interval_s=900.0)
    )


def test_positions_nonempty_and_time_sorted(dataset):
    assert len(dataset.positions) > 1000
    timestamps = [report.epoch_ts for report in dataset.positions]
    assert timestamps == sorted(timestamps)


def test_window_respected(dataset):
    for report in dataset.positions:
        assert EPOCH_2022 <= report.epoch_ts < dataset.config.end_ts + 86400.0


def test_fleet_covers_all_reporting_mmsis(dataset):
    fleet_mmsis = {vessel.mmsi for vessel in dataset.fleet}
    report_mmsis = {report.mmsi for report in dataset.positions}
    assert report_mmsis <= fleet_mmsis


def test_voyages_only_for_commercial_vessels(dataset):
    static = dataset.static_by_mmsi()
    for plan in dataset.voyages:
        assert static[plan.mmsi].segment in COMMERCIAL_SEGMENTS


def test_determinism_same_seed(dataset):
    again = generate_dataset(
        WorldConfig(seed=77, n_vessels=12, days=8.0, report_interval_s=900.0)
    )
    assert len(again.positions) == len(dataset.positions)
    sample = slice(0, 500)
    assert [
        (r.mmsi, r.epoch_ts, r.lat, r.lon) for r in again.positions[sample]
    ] == [(r.mmsi, r.epoch_ts, r.lat, r.lon) for r in dataset.positions[sample]]
    assert again.defects.total() == dataset.defects.total()


def test_different_seed_differs(dataset):
    other = generate_dataset(
        WorldConfig(seed=78, n_vessels=12, days=8.0, report_interval_s=900.0)
    )
    assert [r.lat for r in other.positions[:200]] != [
        r.lat for r in dataset.positions[:200]
    ]


def test_defects_injected_by_default(dataset):
    assert dataset.defects.total() > 0


def test_clean_mode_injects_nothing():
    clean = generate_dataset(
        WorldConfig(seed=77, n_vessels=6, days=4.0, report_interval_s=900.0,
                    clean=True)
    )
    assert clean.defects.total() == 0
    from repro.ais.validation import is_valid_position_report

    assert all(is_valid_position_report(r) for r in clean.positions)


def test_region_restriction():
    baltic = BoundingBox(53.0, 61.0, 9.0, 31.0)
    regional = generate_dataset(
        WorldConfig(seed=5, n_vessels=8, days=6.0, report_interval_s=900.0,
                    region=baltic)
    )
    for plan in regional.voyages:
        # Voyages are between Baltic ports only.
        assert plan.origin != plan.destination
    grown = baltic.expand(8.0)
    inside = sum(
        1 for r in regional.positions if grown.contains(r.lat, r.lon)
    )
    assert inside / len(regional.positions) > 0.95


def test_region_needs_two_ports():
    empty_ocean = BoundingBox(-50.0, -40.0, -40.0, -20.0)
    with pytest.raises(ValueError):
        generate_dataset(WorldConfig(region=empty_ocean))


def test_voyage_arrival_after_departure(dataset):
    for plan in dataset.voyages[:10]:
        assert dataset.voyage_arrival_ts(plan) > plan.depart_ts
