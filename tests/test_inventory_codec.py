"""Tests for the binary codec, including hypothesis round-trips."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.inventory.codec import CodecError, decode, encode


SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

VALUES = st.recursive(
    SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=8), children, max_size=6),
        st.dictionaries(st.integers(-1000, 1000), children, max_size=6),
    ),
    max_leaves=30,
)


@given(value=VALUES)
def test_roundtrip(value):
    assert decode(encode(value)) == value


def test_scalar_examples():
    for value in [None, True, False, 0, -1, 2**70, -(2**70), 0.5, "ü", b"\x00"]:
        assert decode(encode(value)) == value


def test_float_precision_is_exact():
    for value in [math.pi, 1e-308, -1e308, 0.1]:
        assert decode(encode(value)) == value


def test_nested_structures():
    value = {"a": [1, {"b": b"xyz"}], 5: None, "": [[], {}]}
    assert decode(encode(value)) == value


def test_int_keys_preserved():
    value = {1: "one", "1": "one-string"}
    assert decode(encode(value)) == value


def test_tuple_decodes_as_list():
    assert decode(encode((1, 2))) == [1, 2]


def test_compactness_vs_json():
    import json

    value = {"registers": [0] * 100, "mean": 1.2345678, "names": ["x"] * 20}
    assert len(encode(value)) < len(json.dumps(value).encode())


def test_unencodable_type_raises():
    with pytest.raises(CodecError):
        encode({1, 2, 3})


def test_trailing_garbage_raises():
    payload = encode(42) + b"\x00"
    with pytest.raises(CodecError):
        decode(payload)


def test_truncation_raises():
    payload = encode("hello world")
    for cut in range(1, len(payload)):
        with pytest.raises(CodecError):
            decode(payload[:cut])


def test_unknown_tag_raises():
    with pytest.raises(CodecError):
        decode(b"Z")


def test_empty_payload_raises():
    with pytest.raises(CodecError):
        decode(b"")
