"""Tests for the Greenwald–Khanna quantile summary."""

import bisect
import random

import pytest

from repro.sketches import GKQuantiles


def _rank_error(values_sorted, answer, q):
    rank = bisect.bisect_left(values_sorted, answer)
    return abs(rank - q * len(values_sorted)) / len(values_sorted)


def test_epsilon_validation():
    with pytest.raises(ValueError):
        GKQuantiles(0.0)
    with pytest.raises(ValueError):
        GKQuantiles(0.6)


def test_empty_raises():
    with pytest.raises(ValueError):
        GKQuantiles().quantile(0.5)


def test_quantile_range_validation():
    summary = GKQuantiles()
    summary.update(1.0)
    with pytest.raises(ValueError):
        summary.quantile(-0.1)


def test_single_value():
    summary = GKQuantiles()
    summary.update(3.0)
    assert summary.quantile(0.5) == 3.0


@pytest.mark.parametrize("q", [0.1, 0.5, 0.9])
def test_rank_error_within_epsilon(q):
    rng = random.Random(7)
    values = [rng.lognormvariate(0, 1) for _ in range(20000)]
    summary = GKQuantiles(epsilon=0.01)
    for value in values:
        summary.update(value)
    answer = summary.quantile(q)
    assert _rank_error(sorted(values), answer, q) <= 0.03


def test_min_max_exact():
    rng = random.Random(9)
    values = [rng.gauss(0, 5) for _ in range(5000)]
    summary = GKQuantiles(epsilon=0.02)
    for value in values:
        summary.update(value)
    assert summary.quantile(0.0) == min(values)
    assert summary.quantile(1.0) == max(values)


def test_summary_is_sublinear():
    summary = GKQuantiles(epsilon=0.01)
    for i in range(50000):
        summary.update(float(i % 977))
    assert summary.tuple_count() < 2000


def test_merge_rank_error_stays_reasonable():
    rng = random.Random(13)
    values = [rng.uniform(0, 1000) for _ in range(20000)]
    left = GKQuantiles(epsilon=0.01)
    right = GKQuantiles(epsilon=0.01)
    for value in values[:10000]:
        left.update(value)
    for value in values[10000:]:
        right.update(value)
    left.merge(right)
    assert left.count == 20000
    values_sorted = sorted(values)
    for q in (0.1, 0.5, 0.9):
        assert _rank_error(values_sorted, left.quantile(q), q) <= 0.05


def test_dict_roundtrip():
    rng = random.Random(21)
    summary = GKQuantiles(epsilon=0.02)
    for _ in range(3000):
        summary.update(rng.expovariate(1.0))
    restored = GKQuantiles.from_dict(summary.to_dict())
    assert restored.count == summary.count
    for q in (0.25, 0.5, 0.75):
        assert restored.quantile(q) == summary.quantile(q)
