"""Property-based semantics of the engine against in-memory references.

Every operator must agree with the obvious single-machine Python
implementation for arbitrary inputs and partition counts — the contract
that lets pipeline code treat the engine as "just Python, distributed".
"""

import operator
from collections import Counter, defaultdict

from hypothesis import given, settings, strategies as st

from repro.engine import Engine, EngineConfig

KEYS = st.integers(min_value=-5, max_value=5)
VALUES = st.integers(min_value=-1000, max_value=1000)
PAIRS = st.lists(st.tuples(KEYS, VALUES), max_size=120)
PARTITIONS = st.integers(min_value=1, max_value=7)


def _engine(partitions):
    return Engine(EngineConfig(num_partitions=partitions))


@settings(max_examples=40)
@given(pairs=PAIRS, partitions=PARTITIONS)
def test_reduce_by_key_matches_dict_fold(pairs, partitions):
    reference: dict = {}
    for key, value in pairs:
        reference[key] = reference.get(key, 0) + value
    with _engine(partitions) as engine:
        result = dict(
            engine.parallelize(pairs).reduce_by_key(operator.add).collect()
        )
    assert result == reference


@settings(max_examples=40)
@given(pairs=PAIRS, partitions=PARTITIONS)
def test_group_by_key_matches_multimap(pairs, partitions):
    reference = defaultdict(list)
    for key, value in pairs:
        reference[key].append(value)
    with _engine(partitions) as engine:
        result = {
            key: sorted(values)
            for key, values in engine.parallelize(pairs).group_by_key().collect()
        }
    assert result == {key: sorted(values) for key, values in reference.items()}


@settings(max_examples=40)
@given(values=st.lists(VALUES, max_size=150), partitions=PARTITIONS)
def test_distinct_matches_set(values, partitions):
    with _engine(partitions) as engine:
        result = engine.parallelize(values).distinct().collect()
    assert sorted(result) == sorted(set(values))


@settings(max_examples=40)
@given(values=st.lists(VALUES, max_size=150), partitions=PARTITIONS)
def test_map_filter_pipeline_matches_comprehension(values, partitions):
    with _engine(partitions) as engine:
        result = (
            engine.parallelize(values)
            .map(lambda x: x * 3 + 1)
            .filter(lambda x: x % 2 == 0)
            .collect()
        )
    assert result == [x * 3 + 1 for x in values if (x * 3 + 1) % 2 == 0]


@settings(max_examples=30)
@given(left=PAIRS, right=PAIRS, partitions=PARTITIONS)
def test_join_matches_nested_loop(left, right, partitions):
    reference = Counter(
        (lk, (lv, rv)) for lk, lv in left for rk, rv in right if lk == rk
    )
    with _engine(partitions) as engine:
        result = Counter(
            engine.parallelize(left).join(engine.parallelize(right)).collect()
        )
    assert result == reference


@settings(max_examples=30)
@given(left=PAIRS, right=PAIRS, partitions=PARTITIONS)
def test_cogroup_partitions_both_sides(left, right, partitions):
    left_ref = defaultdict(list)
    right_ref = defaultdict(list)
    for key, value in left:
        left_ref[key].append(value)
    for key, value in right:
        right_ref[key].append(value)
    with _engine(partitions) as engine:
        result = dict(
            engine.parallelize(left).cogroup(engine.parallelize(right)).collect()
        )
    assert set(result) == set(left_ref) | set(right_ref)
    for key, (left_values, right_values) in result.items():
        assert sorted(left_values) == sorted(left_ref.get(key, []))
        assert sorted(right_values) == sorted(right_ref.get(key, []))


@settings(max_examples=40)
@given(values=st.lists(VALUES, max_size=150),
       partitions=PARTITIONS, out_partitions=PARTITIONS)
def test_repartition_preserves_multiset(values, partitions, out_partitions):
    with _engine(partitions) as engine:
        result = engine.parallelize(values).repartition(out_partitions).collect()
    assert Counter(result) == Counter(values)


@settings(max_examples=40)
@given(values=st.lists(VALUES, min_size=1, max_size=100), partitions=PARTITIONS)
def test_aggregate_matches_sum_of_squares(values, partitions):
    with _engine(partitions) as engine:
        result = engine.parallelize(values).aggregate(
            0, lambda acc, x: acc + x * x, operator.add
        )
    assert result == sum(x * x for x in values)


@settings(max_examples=30)
@given(pairs=PAIRS, partitions=PARTITIONS)
def test_partition_count_never_changes_answers(pairs, partitions):
    with _engine(1) as serial_engine:
        expected = dict(
            serial_engine.parallelize(pairs).reduce_by_key(operator.add).collect()
        )
    with _engine(partitions) as engine:
        result = dict(
            engine.parallelize(pairs).reduce_by_key(operator.add).collect()
        )
    assert result == expected
