"""Tests for NMEA framing and multi-fragment assembly."""

import pytest

from repro.ais.nmea import (
    NmeaAssembler,
    checksum,
    format_sentence,
    parse_sentence,
    split_payload,
)


def test_checksum_known_value():
    # XOR of the canonical example body.
    body = "AIVDM,1,1,,A,14eG;o@034o8sd<L9i:a;WF>062D,0"
    assert checksum(body) == int("7D", 16)


def test_format_parse_roundtrip():
    line = format_sentence("1P000Oh1IT1svTP2r:43grwb0Eq4", 0, channel="B")
    sentence = parse_sentence(line)
    assert sentence.payload == "1P000Oh1IT1svTP2r:43grwb0Eq4"
    assert sentence.channel == "B"
    assert sentence.fragment_count == 1


def test_parse_rejects_bad_checksum():
    line = format_sentence("ABC", 0)
    tampered = line[:-1] + ("0" if line[-1] != "0" else "1")
    with pytest.raises(ValueError):
        parse_sentence(tampered)


def test_parse_rejects_missing_bang_and_star():
    with pytest.raises(ValueError):
        parse_sentence("AIVDM,1,1,,A,ABC,0*00")
    with pytest.raises(ValueError):
        parse_sentence("!AIVDM,1,1,,A,ABC,0")


def test_parse_rejects_wrong_field_count():
    body = "AIVDM,1,1,,A,ABC"
    with pytest.raises(ValueError):
        parse_sentence(f"!{body}*{checksum(body):02X}")


def test_parse_rejects_unknown_talker():
    body = "GPGGA,1,1,,A,ABC,0"
    with pytest.raises(ValueError):
        parse_sentence(f"!{body}*{checksum(body):02X}")


def test_split_payload_single():
    sentences = split_payload("SHORT", 2, message_id="5")
    assert len(sentences) == 1
    parsed = parse_sentence(sentences[0])
    assert parsed.fill_bits == 2
    assert parsed.message_id == ""  # single-fragment: no sequential id


def test_split_payload_multi_fragment():
    payload = "X" * 130
    sentences = split_payload(payload, 4, message_id="3")
    assert len(sentences) == 3
    parsed = [parse_sentence(line) for line in sentences]
    assert [p.fragment_number for p in parsed] == [1, 2, 3]
    assert all(p.fragment_count == 3 for p in parsed)
    assert all(p.message_id == "3" for p in parsed)
    # Fill bits only on the final fragment.
    assert [p.fill_bits for p in parsed] == [0, 0, 4]
    assert "".join(p.payload for p in parsed) == payload


def test_assembler_single_fragment_passthrough():
    assembler = NmeaAssembler()
    sentence = parse_sentence(format_sentence("ABCD", 1))
    assert assembler.push(sentence) == ("ABCD", 1)


def test_assembler_reassembles_out_of_order():
    payload = "Y" * 130
    sentences = [parse_sentence(s) for s in split_payload(payload, 2, "7")]
    assembler = NmeaAssembler()
    assert assembler.push(sentences[2]) is None
    assert assembler.push(sentences[0]) is None
    result = assembler.push(sentences[1])
    assert result == (payload, 2)
    assert assembler.pending_groups == 0


def test_assembler_interleaved_channels():
    a = [parse_sentence(s) for s in split_payload("A" * 100, 0, "1", channel="A")]
    b = [parse_sentence(s) for s in split_payload("B" * 100, 0, "1", channel="B")]
    assembler = NmeaAssembler()
    assert assembler.push(a[0]) is None
    assert assembler.push(b[0]) is None
    assert assembler.push(a[1]) == ("A" * 100, 0)
    assert assembler.push(b[1]) == ("B" * 100, 0)


def test_assembler_evicts_on_id_reuse():
    first = [parse_sentence(s) for s in split_payload("C" * 100, 0, "9")]
    second = [parse_sentence(s) for s in split_payload("D" * 100, 0, "9")]
    assembler = NmeaAssembler()
    assert assembler.push(first[0]) is None
    # The same (id, channel, fragment 1) arrives again: old group dropped.
    assert assembler.push(second[0]) is None
    assert assembler.push(second[1]) == ("D" * 100, 0)
