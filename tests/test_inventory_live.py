"""The live inventory's read/write semantics.

The contracts under test:

- **Snapshot equivalence**: answers are the same before and after a
  flush (byte-identical — same sources, same merge order) and reopening
  a directory replays the WAL into the exact memtable that was lost.
- **Reference equivalence**: however records are split across flushes
  and compactions, the served answers agree *semantically* with a
  single in-memory fold of the same records (exact for counts, key
  sets and distinct-vessel estimates; tolerant for float moments, since
  partitioned ``merge`` is not bit-identical to sequential ``update``).
- **Lifecycle**: auto-flush and auto-compaction thresholds, manifest
  commits, WAL retirement, orphan sweeps and wire-record validation.
"""

import threading

import pytest

from repro.hexgrid import latlng_to_cell
from repro.inventory import GroupKey
from repro.inventory.codec import encode
from repro.inventory.live import LiveInventory, manifest_tables
from repro.inventory.memtable import IngestRecord, Memtable
from repro.inventory.wal import list_segments

RESOLUTION = 6
PORTS = ["SGSIN", "NLRTM", "USNYC"]
TYPES = ["cargo", "tanker"]


def _records(n, start=0):
    """Deterministic enriched records across a handful of cells/routes."""
    out = []
    for i in range(start, start + n):
        on_trip = i % 3 != 2
        origin = PORTS[i % len(PORTS)] if on_trip else None
        destination = PORTS[(i + 1) % len(PORTS)] if on_trip else None
        out.append(
            IngestRecord(
                mmsi=200_000_000 + (i % 7),
                ts=1_700_000_000.0 + i * 60.0,
                lat=1.0 + (i % 11) * 0.35,
                lon=103.0 + (i % 5) * 0.4,
                sog=8.0 + (i % 9),
                cog=float((i * 37) % 360),
                vessel_type=TYPES[i % len(TYPES)],
                heading=((i * 37) % 360) if i % 4 else None,
                trip_id=f"trip-{i % 5}" if on_trip else None,
                origin=origin,
                destination=destination,
                eto_s=3600.0 * (i % 6) if on_trip else None,
                ata_s=3500.0 * (i % 6) if on_trip and i % 2 else None,
                extras=(float(i % 13), None) if i % 2 else (),
            )
        )
    return out


def _reference(records):
    memtable = Memtable(RESOLUTION)
    for record in records:
        memtable.apply(record)
    return memtable


def _answers(inventory):
    """Every group's encoded summary — the byte-level read snapshot."""
    return {
        key: encode(summary.to_dict()) for key, summary in inventory.items()
    }


def _assert_semantically_equal(inventory, reference):
    """Served answers match an in-memory fold of the same records.

    Partitioned merge is not bit-identical to sequential update (t-digest
    centroid arrangement, float-sum ordering), so the comparison is per
    metric: exact where the sketch's merge is exact, tolerant for float
    moments.
    """
    got = dict(inventory.items())
    assert set(got) == set(reference.groups)
    for key, expected in reference.groups.items():
        summary = got[key]
        assert summary.records == expected.records, key
        assert summary.ships.cardinality() == expected.ships.cardinality(), key
        assert summary.mean_speed_kn() == pytest.approx(
            expected.mean_speed_kn(), rel=1e-9
        ), key


class TestFreshAndReopen:
    def test_fresh_directory_requires_resolution(self, tmp_path):
        with pytest.raises(ValueError):
            LiveInventory(tmp_path / "live")

    def test_resolution_remembered_and_checked(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            inv.ingest(_records(5))
        with LiveInventory(tmp_path / "live") as inv:
            assert inv.resolution == RESOLUTION
        with pytest.raises(ValueError):
            LiveInventory(tmp_path / "live", resolution=RESOLUTION + 1)

    def test_reopen_replays_the_wal_byte_exact(self, tmp_path):
        records = _records(40)
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            ack = inv.ingest(records)
            assert ack.accepted == len(records) and ack.durable
            before = _answers(inv)
        with LiveInventory(tmp_path / "live") as inv:
            stats = inv.ingest_stats()
            assert stats["replayed"] == len(records)
            assert stats["memtable_records"] == len(records)
            assert _answers(inv) == before

    def test_reopen_after_flush_replays_only_the_tail(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            inv.ingest(_records(30))
            inv.flush()
            inv.ingest(_records(10, start=30))
            before = _answers(inv)
        with LiveInventory(tmp_path / "live") as inv:
            stats = inv.ingest_stats()
            assert stats["replayed"] == 10  # flushed records live in the table
            assert stats["tables"] == 1
            assert _answers(inv) == before


class TestFlush:
    def test_flush_preserves_answers_byte_exact(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            inv.ingest(_records(50))
            before = _answers(inv)
            path = inv.flush()
            assert path is not None and path.exists()
            assert _answers(inv) == before
            assert inv.ingest_stats()["memtable_records"] == 0

    def test_empty_flush_is_a_noop(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            assert inv.flush() is None

    def test_flush_commits_manifest_and_retires_segments(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            inv.ingest(_records(20))
            pre_segments = [seq for seq, _ in list_segments(inv.directory)]
            inv.flush()
            tables = manifest_tables(inv.directory)
            assert [p.name for p in tables] == ["tab-00000001.sst"]
            post_segments = [seq for seq, _ in list_segments(inv.directory)]
            # Every pre-flush segment was retired; appends continue in a
            # fresh one.
            assert not set(pre_segments) & set(post_segments)

    def test_auto_flush_at_threshold(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, flush_records=25
        ) as inv:
            ack = inv.ingest(_records(30))
            # ``flushed`` means sealed-and-scheduled: the table write
            # itself runs on the maintenance thread.
            assert ack.flushed
            assert inv.ingest_stats()["memtable_records"] == 0
            inv.wait_maintenance()
            stats = inv.ingest_stats()
            assert stats["tables"] == 1
            assert stats["flushes"] == 1
            assert stats["frozen_memtables"] == 0

    def test_multiple_flushes_accumulate_tables(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, tier_fanout=0
        ) as inv:
            for start in (0, 20, 40):
                inv.ingest(_records(20, start=start))
                inv.flush()
            assert inv.ingest_stats()["tables"] == 3
            _assert_semantically_equal(inv, _reference(_records(60)))


class TestCompaction:
    def test_compaction_merges_to_one_table(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, tier_fanout=0
        ) as inv:
            for start in (0, 15, 30):
                inv.ingest(_records(15, start=start))
                inv.flush()
            before = _answers(inv)
            inv.compact()
            stats = inv.ingest_stats()
            assert stats["tables"] == 1
            assert stats["compactions"] == 1
            assert _answers(inv) == before
            # The stale generations are gone from disk.
            tables = sorted(p.name for p in inv.directory.glob("tab-*.sst"))
            assert tables == ["tab-00000004.sst"]

    def test_auto_compaction_at_threshold(self, tmp_path):
        # Two same-tier tables with fanout 2: the flush job's policy
        # check submits a tier merge, and flush() waits for the cascade.
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, tier_fanout=2
        ) as inv:
            for start in (0, 10):
                inv.ingest(_records(10, start=start))
                inv.flush()
            assert inv.ingest_stats()["tables"] == 1
            assert inv.ingest_stats()["compactions"] == 1

    def test_compacted_directory_reopens_equivalent(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, tier_fanout=0
        ) as inv:
            for start in (0, 15):
                inv.ingest(_records(15, start=start))
                inv.flush()
            inv.ingest(_records(10, start=30))  # unflushed tail
            inv.compact()
            before = _answers(inv)
        with LiveInventory(tmp_path / "live") as inv:
            assert _answers(inv) == before
            _assert_semantically_equal(inv, _reference(_records(40)))


class TestReferenceEquivalence:
    def test_partitioned_history_matches_single_fold(self, tmp_path):
        records = _records(120)
        with LiveInventory(
            tmp_path / "live",
            resolution=RESOLUTION,
            flush_records=40,
            tier_fanout=3,
        ) as inv:
            for i in range(0, len(records), 17):  # uneven batches
                inv.ingest(records[i : i + 17])
            inv.wait_maintenance()
            _assert_semantically_equal(inv, _reference(records))

    def test_point_and_route_queries_cross_sources(self, tmp_path):
        records = _records(60)
        reference = _reference(records)
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, tier_fanout=0
        ) as inv:
            inv.ingest(records[:30])
            inv.flush()
            inv.ingest(records[30:])  # half in a table, half in memory
            for key, expected in reference.groups.items():
                got = inv.get(key)
                assert got is not None and got.records == expected.records
            missing = GroupKey(cell=latlng_to_cell(-60.0, -150.0, RESOLUTION))
            assert inv.get(missing) is None
            assert inv.cells() == reference.cells()
            route = inv.route_cells("SGSIN", "NLRTM", "cargo")
            ref_route = reference.route_groups("SGSIN", "NLRTM", "cargo")
            assert {c: s.records for c, s in route.items()} == {
                c: s.records for c, s in ref_route.items()
            }


class TestConcurrentReads:
    def test_reader_thread_during_flushes_sees_consistent_counts(self, tmp_path):
        """A reader racing flushes/compactions never sees a torn view:
        per-key record counts only ever step through the ingested
        prefixes, never double-count and never go backwards."""
        records = _records(200)
        key = GroupKey(
            cell=latlng_to_cell(records[0].lat, records[0].lon, RESOLUTION)
        )
        valid = set()
        count = 0
        for record in records:
            cell = latlng_to_cell(record.lat, record.lon, RESOLUTION)
            if cell == key.cell:
                count += 1
            valid.add(count)
        errors = []
        stop = threading.Event()

        with LiveInventory(
            tmp_path / "live",
            resolution=RESOLUTION,
            flush_records=30,
            tier_fanout=3,
        ) as inv:

            def read_loop():
                last = 0
                while not stop.is_set():
                    summary = inv.get(key)
                    seen = 0 if summary is None else summary.records
                    if seen not in valid and seen != 0:
                        errors.append(f"impossible count {seen}")
                        return
                    if seen < last:
                        errors.append(f"count went backwards {last}->{seen}")
                        return
                    last = seen

            reader = threading.Thread(target=read_loop)
            reader.start()
            try:
                for i in range(0, len(records), 10):
                    inv.ingest(records[i : i + 10])
            finally:
                stop.set()
                reader.join()
        assert errors == []


class TestWireRecords:
    def test_ingest_records_parses_and_acks(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            ack = inv.ingest_records([r.to_wire() for r in _records(5)])
            assert ack == {"accepted": 5, "durable": True, "flushed": False}

    def test_bad_record_names_its_index(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            good = _records(1)[0].to_wire()
            bad = dict(good, lat=123.0)
            with pytest.raises(ValueError, match=r"records\[1\].*'lat'"):
                inv.ingest_records([good, bad])
            # Validation happens before any append: nothing was ingested.
            assert inv.ingest_stats()["records_ingested"] == 0

    def test_wire_roundtrip_preserves_every_field(self):
        for record in _records(8):
            assert IngestRecord.from_wire(record.to_wire()) == record

    def test_payload_roundtrip_preserves_every_field(self):
        for record in _records(8):
            assert IngestRecord.from_payload(record.to_payload()) == record


class TestLifecycle:
    def test_closed_inventory_rejects_writes(self, tmp_path):
        inv = LiveInventory(tmp_path / "live", resolution=RESOLUTION)
        inv.close()
        with pytest.raises(ValueError):
            inv.ingest(_records(1))
        inv.close()  # idempotent

    def test_orphan_table_swept_on_open(self, tmp_path):
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            inv.ingest(_records(10))
            directory = inv.directory
        # A crashed flush can leave a published-but-uncommitted table
        # and a staging file; recovery must delete both (their records
        # are still in the WAL).
        orphan = directory / "tab-00000009.sst"
        orphan.write_bytes(b"partial table bytes")
        staging = directory / "tab-00000010.sst.tmp"
        staging.write_bytes(b"staging bytes")
        with LiveInventory(tmp_path / "live") as inv:
            assert not orphan.exists()
            assert not staging.exists()
            assert inv.ingest_stats()["memtable_records"] == 10

    def test_manifest_tables_helper(self, tmp_path):
        assert manifest_tables(tmp_path) == []
        with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as inv:
            inv.ingest(_records(5))
            inv.flush()
        assert [p.name for p in manifest_tables(tmp_path / "live")] == [
            "tab-00000001.sst"
        ]

    def test_sync_forces_durability(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, sync_every=1000
        ) as inv:
            ack = inv.ingest(_records(3))
            assert not ack.durable
            inv.sync()
        with LiveInventory(tmp_path / "live") as inv:
            assert inv.ingest_stats()["memtable_records"] == 3
