"""The write-ahead log's format and recovery contract.

Append/replay roundtrips, the fsync-policy ack watermark, segment
rotation and retirement, and the two damage classes: a torn tail on the
final segment recovers-to-last-good (and is truncated so later replays
stay clean), while interior damage — bit rot, a bad entry with entries
behind it, damage in a non-final segment — raises a typed
:class:`CorruptionError`, never a silently short replay.
"""

import struct

import pytest

from repro.engine.metrics import CounterSet
from repro.inventory import CorruptionError
from repro.inventory.wal import (
    COUNTER_REPLAYED,
    COUNTER_TRUNCATED_TAIL,
    WalWriter,
    list_segments,
    replay,
    segment_path,
    verify_wal,
)

PAYLOADS = [f"entry-{i}".encode() * (i % 5 + 1) for i in range(20)]


def _fill(directory, payloads=PAYLOADS, **kwargs):
    writer = WalWriter(directory, **kwargs)
    for payload in payloads:
        writer.append(payload)
    writer.close()
    return writer


class TestRoundtrip:
    def test_append_then_replay_is_identity(self, tmp_path):
        _fill(tmp_path)
        result = replay(tmp_path)
        assert list(result.entries) == PAYLOADS
        assert result.truncated_tails == 0

    def test_replay_of_empty_directory(self, tmp_path):
        result = replay(tmp_path)
        assert result.entries == ()
        assert result.last_seq == 0

    def test_replay_counts_entries(self, tmp_path):
        _fill(tmp_path)
        counters = CounterSet()
        replay(tmp_path, counters=counters)
        assert counters.value(COUNTER_REPLAYED) == len(PAYLOADS)

    def test_binary_payloads_roundtrip(self, tmp_path):
        payloads = [b"", b"\x00" * 100, bytes(range(256))]
        _fill(tmp_path, payloads=payloads)
        assert list(replay(tmp_path).entries) == payloads


class TestFsyncPolicy:
    def test_sync_every_one_acks_immediately(self, tmp_path):
        writer = WalWriter(tmp_path, sync_every=1)
        writer.append(b"a")
        assert writer.durable_entries == writer.appended_entries == 1
        writer.close()

    def test_batched_policy_lags_until_threshold(self, tmp_path):
        writer = WalWriter(tmp_path, sync_every=3)
        writer.append(b"a")
        writer.append(b"b")
        assert writer.durable_entries == 0
        writer.append(b"c")
        assert writer.durable_entries == 3
        writer.close()

    def test_explicit_sync_forces_the_watermark(self, tmp_path):
        writer = WalWriter(tmp_path, sync_every=1000)
        writer.append(b"a")
        assert writer.durable_entries == 0
        assert writer.sync() == 1
        assert writer.durable_entries == 1
        writer.close()

    def test_close_syncs_the_tail(self, tmp_path):
        writer = WalWriter(tmp_path, sync_every=1000)
        writer.append(b"a")
        writer.close()
        assert writer.durable_entries == 1
        assert list(replay(tmp_path).entries) == [b"a"]

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.close()
        with pytest.raises(ValueError):
            writer.append(b"a")


class TestSegments:
    def test_size_rotation(self, tmp_path):
        writer = WalWriter(tmp_path, segment_bytes=64)
        for i in range(10):
            writer.append(b"x" * 32)
        writer.close()
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        assert [seq for seq, _ in segments] == list(
            range(1, len(segments) + 1)
        )
        assert len(replay(tmp_path).entries) == 10

    def test_rotate_returns_the_sealed_boundary(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(b"a")
        sealed = writer.rotate()
        assert sealed == 1
        assert writer.current_seq == 2
        writer.append(b"b")
        writer.close()
        assert list(replay(tmp_path).entries) == [b"a", b"b"]

    def test_retire_through_deletes_sealed_only(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(b"a")
        boundary = writer.rotate()
        writer.append(b"b")
        writer.retire_through(boundary)
        remaining = [seq for seq, _ in list_segments(tmp_path)]
        assert remaining == [2]
        # The active segment is never retired, even if asked.
        writer.retire_through(writer.current_seq)
        assert [seq for seq, _ in list_segments(tmp_path)] == [2]
        writer.close()
        assert list(replay(tmp_path).entries) == [b"b"]

    def test_replay_honours_min_seq(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(b"a")
        writer.rotate()
        writer.append(b"b")
        writer.close()
        result = replay(tmp_path, min_seq=1)
        assert list(result.entries) == [b"b"]
        assert result.last_seq == 2

    def test_writer_resumes_after_last_seq(self, tmp_path):
        _fill(tmp_path)
        result = replay(tmp_path)
        writer = WalWriter(tmp_path, start_seq=result.last_seq + 1)
        writer.append(b"new")
        writer.close()
        assert list(replay(tmp_path).entries) == PAYLOADS + [b"new"]

    def test_unparseable_segment_name_is_corruption(self, tmp_path):
        _fill(tmp_path)
        (tmp_path / "wal-notanumber.log").write_bytes(b"junk")
        with pytest.raises(CorruptionError):
            list_segments(tmp_path)


class TestTornTail:
    def _tear(self, tmp_path, garbage):
        _fill(tmp_path)
        path = segment_path(tmp_path, 1)
        with open(path, "ab") as handle:
            handle.write(garbage)
        return path

    @pytest.mark.parametrize(
        "garbage",
        [
            b"\x00\x00",  # short frame header
            struct.pack(">I", 1 << 16) + b"partial",  # frame past EOF
            struct.pack(">II", 4, 0xDEADBEEF) + b"body",  # CRC fail at EOF
        ],
        ids=["short-header", "frame-past-eof", "crc-fail-at-eof"],
    )
    def test_torn_tail_recovers_to_last_good(self, tmp_path, garbage):
        path = self._tear(tmp_path, garbage)
        size_before = path.stat().st_size
        counters = CounterSet()
        result = replay(tmp_path, counters=counters)
        assert list(result.entries) == PAYLOADS
        assert result.truncated_tails == 1
        assert counters.value(COUNTER_TRUNCATED_TAIL) == 1
        # Repair truncated the garbage durably: a second replay is clean.
        assert path.stat().st_size < size_before
        clean = replay(tmp_path)
        assert list(clean.entries) == PAYLOADS
        assert clean.truncated_tails == 0

    def test_repair_false_leaves_the_tear_in_place(self, tmp_path):
        path = self._tear(tmp_path, b"\x00\x00")
        size = path.stat().st_size
        result = replay(tmp_path, repair=False)
        assert list(result.entries) == PAYLOADS
        assert path.stat().st_size == size

    def test_torn_tail_in_non_final_segment_raises(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(b"a")
        writer.rotate()
        writer.append(b"b")
        writer.close()
        with open(segment_path(tmp_path, 1), "ab") as handle:
            handle.write(b"\x00\x00")
        with pytest.raises(CorruptionError):
            replay(tmp_path)

    def test_truncated_header_of_empty_segment(self, tmp_path):
        # A crash during segment creation can leave a partial magic.
        segment_path(tmp_path, 1).write_bytes(b"POLW")
        result = replay(tmp_path)
        assert result.entries == ()
        assert result.truncated_tails == 1


class TestHardCorruption:
    def test_interior_bitflip_raises(self, tmp_path):
        _fill(tmp_path)
        path = segment_path(tmp_path, 1)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            replay(tmp_path)

    def test_bad_magic_raises(self, tmp_path):
        _fill(tmp_path)
        path = segment_path(tmp_path, 1)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            replay(tmp_path)

    def test_length_field_corruption_cannot_reframe(self, tmp_path):
        # Flip a bit in the first entry's length prefix: the CRC covers
        # the prefix, so the stream cannot be silently re-framed.
        _fill(tmp_path)
        path = segment_path(tmp_path, 1)
        data = bytearray(path.read_bytes())
        data[9 + 3] ^= 0x01  # low byte of the first entry's length
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            replay(tmp_path)


class TestVerifyWal:
    def test_clean_log_reports_ok(self, tmp_path):
        _fill(tmp_path)
        check = verify_wal(tmp_path)
        assert check.ok
        assert not check.hard_corruption and not check.torn_tail
        assert check.entries == len(PAYLOADS)
        assert any("clean" in line for line in check.lines())

    def test_torn_tail_reported_not_raised(self, tmp_path):
        _fill(tmp_path)
        with open(segment_path(tmp_path, 1), "ab") as handle:
            handle.write(b"\x00\x00")
        check = verify_wal(tmp_path)
        assert check.torn_tail and not check.hard_corruption
        assert check.entries == len(PAYLOADS)

    def test_interior_damage_reported_as_hard(self, tmp_path):
        _fill(tmp_path)
        path = segment_path(tmp_path, 1)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        check = verify_wal(tmp_path)
        assert check.hard_corruption
        assert not check.ok

    def test_torn_non_final_segment_reported_as_hard(self, tmp_path):
        writer = WalWriter(tmp_path)
        writer.append(b"a")
        writer.rotate()
        writer.append(b"b")
        writer.close()
        with open(segment_path(tmp_path, 1), "ab") as handle:
            handle.write(b"\x00\x00")
        check = verify_wal(tmp_path)
        assert check.hard_corruption
        statuses = {r.seq: r.status for r in check.segments}
        assert statuses == {1: "corrupt", 2: "ok"}

    def test_verify_never_modifies(self, tmp_path):
        _fill(tmp_path)
        path = segment_path(tmp_path, 1)
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")
        before = path.read_bytes()
        verify_wal(tmp_path)
        assert path.read_bytes() == before
