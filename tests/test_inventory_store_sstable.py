"""Tests for the Inventory store and the on-disk SSTable."""

import pytest

from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.inventory import (
    GroupKey,
    GroupingSet,
    Inventory,
    SSTableReader,
    SSTableWriter,
    open_inventory,
    write_inventory,
)
from repro.inventory.summary import CellSummary


def _summary(records=3, destination="NLRTM"):
    summary = CellSummary()
    for i in range(records):
        summary.update(
            mmsi=100_000_000 + i, sog=10.0 + i, cog=90.0, heading=90,
            trip_id=f"t{i}", eto_s=50.0, ata_s=100.0, origin="CNSHA",
            destination=destination, next_cell=None,
        )
    return summary


def _cell(lat, lon, res=6):
    return latlng_to_cell(lat, lon, res)


class TestInventoryStore:
    def test_put_and_get(self):
        inventory = Inventory(resolution=6)
        key = GroupKey(cell=_cell(1.0, 103.0))
        inventory.put(key, _summary())
        assert inventory.get(key).records == 3
        assert key in inventory
        assert len(inventory) == 1

    def test_put_merges_existing(self):
        inventory = Inventory(resolution=6)
        key = GroupKey(cell=_cell(1.0, 103.0))
        inventory.put(key, _summary(records=2))
        inventory.put(key, _summary(records=5))
        assert inventory.get(key).records == 7

    def test_summary_at_queries_by_position(self):
        inventory = Inventory(resolution=6)
        cell = _cell(51.9, 3.9)
        inventory.put(GroupKey(cell=cell), _summary())
        inventory.put(GroupKey(cell=cell, vessel_type="cargo"), _summary(records=1))
        lat, lon = cell_to_latlng(cell)
        assert inventory.summary_at(lat, lon).records == 3
        assert inventory.summary_at(lat, lon, vessel_type="cargo").records == 1
        assert inventory.summary_at(lat, lon, vessel_type="tanker") is None
        assert inventory.summary_at(0.0, 0.0) is None

    def test_summary_at_validates_arguments(self):
        inventory = Inventory(resolution=6)
        with pytest.raises(ValueError):
            inventory.summary_at(0.0, 0.0, origin="A")
        with pytest.raises(ValueError):
            inventory.summary_at(0.0, 0.0, origin="A", destination="B")

    def test_top_destinations_falls_back_to_cell(self):
        inventory = Inventory(resolution=6)
        cell = _cell(10.0, 10.0)
        inventory.put(GroupKey(cell=cell), _summary(destination="SGSIN"))
        lat, lon = cell_to_latlng(cell)
        # No cargo breakdown exists: falls back to the pure-cell group.
        assert inventory.top_destinations_at(lat, lon, vessel_type="cargo") == [
            ("SGSIN", 3)
        ]
        assert inventory.top_destinations_at(0.0, -90.0) == []

    def test_route_cells_index(self):
        inventory = Inventory(resolution=6)
        cells = [_cell(1.0, 103.0 + 0.2 * i) for i in range(4)]
        for cell in cells:
            inventory.put(
                GroupKey(cell=cell, vessel_type="cargo", origin="CNSHA",
                         destination="NLRTM"),
                _summary(),
            )
        route = inventory.route_cells("CNSHA", "NLRTM", "cargo")
        assert set(route) == set(cells)
        assert inventory.route_cells("CNSHA", "NLRTM", "tanker") == {}

    def test_route_index_invalidated_on_put(self):
        inventory = Inventory(resolution=6)
        key = GroupKey(cell=_cell(1.0, 103.0), vessel_type="cargo",
                       origin="A", destination="B")
        assert inventory.route_cells("A", "B", "cargo") == {}
        inventory.put(key, _summary())
        assert len(inventory.route_cells("A", "B", "cargo")) == 1

    def test_merge_combines_and_validates_resolution(self):
        a = Inventory(resolution=6)
        b = Inventory(resolution=6)
        shared = GroupKey(cell=_cell(1.0, 103.0))
        a.put(shared, _summary(records=2))
        b.put(shared, _summary(records=3))
        b.put(GroupKey(cell=_cell(5.0, 5.0)), _summary(records=1))
        a.merge(b)
        assert a.get(shared).records == 5
        assert len(a) == 2
        with pytest.raises(ValueError):
            a.merge(Inventory(resolution=7))

    def test_group_count_and_cells(self):
        inventory = Inventory(resolution=6)
        cell = _cell(1.0, 103.0)
        inventory.put(GroupKey(cell=cell), _summary())
        inventory.put(GroupKey(cell=cell, vessel_type="cargo"), _summary())
        assert inventory.group_count(GroupingSet.CELL) == 1
        assert inventory.group_count(GroupingSet.CELL_TYPE) == 1
        assert inventory.group_count(GroupingSet.CELL_OD_TYPE) == 0
        assert inventory.cells() == {cell}


class TestSSTable:
    def _populated(self, n=200):
        inventory = Inventory(resolution=6)
        for i in range(n):
            cell = _cell(10.0 + (i % 50) * 0.5, 100.0 + (i // 50) * 0.5)
            inventory.put(GroupKey(cell=cell), _summary(records=1 + i % 5))
            inventory.put(
                GroupKey(cell=cell, vessel_type="cargo"), _summary(records=1)
            )
        return inventory

    def test_write_read_roundtrip(self, tmp_path):
        inventory = self._populated()
        path = tmp_path / "inv.sst"
        written = write_inventory(inventory, path)
        assert written == len(inventory)
        with open_inventory(path) as reader:
            assert reader.entry_count == written
            for key, summary in inventory.items():
                stored = reader.get(key)
                assert stored is not None
                assert stored.records == summary.records

    def test_get_missing_key_returns_none(self, tmp_path):
        path = tmp_path / "inv.sst"
        write_inventory(self._populated(20), path)
        with open_inventory(path) as reader:
            assert reader.get(GroupKey(cell=_cell(-60.0, -170.0))) is None
            assert reader.get(GroupKey(cell=0)) is None  # before first key

    def test_point_lookup_touches_one_block(self, tmp_path):
        inventory = self._populated(300)
        path = tmp_path / "inv.sst"
        write_inventory(inventory, path)
        total_size = path.stat().st_size
        with open_inventory(path) as reader:
            key = next(iter(dict(inventory.items())))
            reader.get(key)
            assert 0 < reader.last_read_bytes < total_size / 4

    def test_scan_yields_sorted_everything(self, tmp_path):
        inventory = self._populated(100)
        path = tmp_path / "inv.sst"
        write_inventory(inventory, path)
        with open_inventory(path) as reader:
            entries = list(reader.scan())
        assert len(entries) == len(inventory)
        keys = [key.sort_key() for key, _ in entries]
        assert keys == sorted(keys)

    def test_writer_enforces_key_order(self, tmp_path):
        path = tmp_path / "bad.sst"
        with pytest.raises(ValueError):
            with SSTableWriter(path) as writer:
                writer.add(GroupKey(cell=10), _summary())
                writer.add(GroupKey(cell=5), _summary())

    def test_writer_rejects_tiny_blocks(self, tmp_path):
        with pytest.raises(ValueError):
            SSTableWriter(tmp_path / "x.sst", block_size=16)

    def test_reader_rejects_non_table(self, tmp_path):
        path = tmp_path / "junk.sst"
        path.write_bytes(b"this is not an inventory table at all........")
        with pytest.raises(ValueError):
            SSTableReader(path)

    def test_empty_inventory_roundtrip(self, tmp_path):
        path = tmp_path / "empty.sst"
        write_inventory(Inventory(resolution=6), path)
        with open_inventory(path) as reader:
            assert reader.entry_count == 0
            assert list(reader.scan()) == []
            assert reader.get(GroupKey(cell=123456)) is None

    def test_full_small_inventory_persists(self, tmp_path, small_inventory):
        path = tmp_path / "world.sst"
        write_inventory(small_inventory, path)
        with open_inventory(path) as reader:
            sample = list(small_inventory.items())[:50]
            for key, summary in sample:
                stored = reader.get(key)
                assert stored.records == summary.records
                assert stored.speed.mean == pytest.approx(summary.speed.mean)
