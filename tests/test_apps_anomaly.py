"""Tests for the model-of-normalcy anomaly detector."""

import pytest

from repro.apps import AnomalyDetector
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet


@pytest.fixture(scope="module")
def busy_cell(small_inventory):
    """The busiest pure-cell group: lots of history to model normalcy."""
    best_key, best_summary = max(
        (
            (key, summary)
            for key, summary in small_inventory.items()
            if key.grouping_set is GroupingSet.CELL
        ),
        key=lambda pair: pair[1].records,
    )
    assert best_summary.records >= 5
    return best_key, best_summary


def test_normal_observation_not_flagged(small_inventory, busy_cell):
    key, summary = busy_cell
    detector = AnomalyDetector(small_inventory)
    lat, lon = cell_to_latlng(key.cell)
    score = detector.score(
        lat, lon, sog=summary.speed.mean, cog=summary.course.mean_deg or 0.0
    )
    assert not score.is_anomalous
    assert score.reasons == ()


def test_extreme_speed_flagged(small_inventory, busy_cell):
    key, summary = busy_cell
    detector = AnomalyDetector(small_inventory)
    lat, lon = cell_to_latlng(key.cell)
    score = detector.score(
        lat, lon, sog=summary.speed.mean + 60.0,
        cog=summary.course.mean_deg or 0.0,
    )
    assert score.is_anomalous
    assert score.speed_z is not None and score.speed_z > 3.5
    assert any("speed" in reason for reason in score.reasons)


def test_against_lane_course_flagged(small_inventory):
    # Find a cell with a tight course distribution.
    detector = AnomalyDetector(small_inventory)
    for key, summary in small_inventory.items():
        if key.grouping_set is not GroupingSet.CELL:
            continue
        mean = summary.course.mean_deg
        if (
            summary.records >= 8
            and mean is not None
            and (summary.course.std_deg or 99.0) < 20.0
        ):
            lat, lon = cell_to_latlng(key.cell)
            score = detector.score(
                lat, lon, sog=summary.speed.mean, cog=(mean + 180.0) % 360.0
            )
            assert score.is_anomalous
            assert score.course_deviation is not None
            return
    pytest.skip("no tight-course cell in fixture inventory")


def test_off_lane_route_flag(small_inventory):
    detector = AnomalyDetector(small_inventory)
    od_key = next(
        key for key, _ in small_inventory.items()
        if key.grouping_set is GroupingSet.CELL_OD_TYPE
    )
    # Mid-south-Pacific is never on this route.
    score = detector.score(
        -50.0, -130.0, sog=12.0, cog=90.0,
        vessel_type=od_key.vessel_type,
        origin=od_key.origin, destination=od_key.destination,
    )
    assert score.off_lane
    assert score.is_anomalous


def test_on_lane_route_not_off_lane(small_inventory):
    detector = AnomalyDetector(small_inventory)
    od_key = next(
        key for key, summary in small_inventory.items()
        if key.grouping_set is GroupingSet.CELL_OD_TYPE and summary.records >= 2
    )
    lat, lon = cell_to_latlng(od_key.cell)
    score = detector.score(
        lat, lon, sog=10.0, cog=90.0,
        vessel_type=od_key.vessel_type,
        origin=od_key.origin, destination=od_key.destination,
    )
    assert not score.off_lane


def test_unknown_cell_gives_no_opinion(small_inventory):
    detector = AnomalyDetector(small_inventory)
    score = detector.score(-55.0, -140.0, sog=500.0, cog=0.0)
    assert not score.is_anomalous  # no history → no normalcy model → silence
    assert score.speed_z is None


def test_score_track_fraction(small_inventory, busy_cell):
    key, summary = busy_cell
    detector = AnomalyDetector(small_inventory)
    lat, lon = cell_to_latlng(key.cell)
    normal = [(lat, lon, summary.speed.mean, summary.course.mean_deg or 0.0)] * 5
    crazy = [(lat, lon, summary.speed.mean + 80.0, 0.0)] * 5
    assert detector.score_track(normal) == 0.0
    assert detector.score_track(crazy) == 1.0
    assert detector.score_track([]) == 0.0
