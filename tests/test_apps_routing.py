"""Tests for the transition graph and A* route forecasting.

A* optimality is cross-checked against networkx's Dijkstra on the same
graph, per the reproduction plan.
"""

import networkx as nx
import pytest

from repro.apps import RouteForecaster, TransitionGraph, astar
from repro.apps.routing import _cell_distance_m
from repro.hexgrid import latlng_to_cell
from repro.inventory.keys import GroupingSet


def _chain_graph(cells):
    graph = TransitionGraph()
    for a, b in zip(cells, cells[1:]):
        graph.add_edge(a, b, count=3)
    return graph


@pytest.fixture()
def lane_cells():
    # A straight eastbound lane of adjacent cells.
    start = latlng_to_cell(0.0, 50.0, 6)
    cells = [start]
    # Walk east through the disk neighbors deterministically.
    for _ in range(10):
        from repro.hexgrid import cell_to_latlng, grid_ring

        current = cells[-1]
        lat, lon = cell_to_latlng(current)
        ring = grid_ring(current, 1)
        next_cell = max(ring, key=lambda c: cell_to_latlng(c)[1])
        cells.append(next_cell)
    return cells


class TestTransitionGraph:
    def test_add_edge_accumulates(self):
        graph = TransitionGraph()
        graph.add_edge(1, 2, count=2)
        graph.add_edge(1, 2, count=3)
        assert graph.neighbors(1) == {2: 5}
        assert graph.edge_count() == 1

    def test_add_edge_validates_count(self):
        with pytest.raises(ValueError):
            TransitionGraph().add_edge(1, 2, count=0)

    def test_nodes_include_sinks(self):
        graph = _chain_graph([1, 2, 3])
        assert graph.nodes() == {1, 2, 3}

    def test_most_frequent_next(self):
        graph = TransitionGraph()
        graph.add_edge(1, 2, count=1)
        graph.add_edge(1, 3, count=9)
        assert graph.most_frequent_next(1) == 3
        assert graph.most_frequent_next(99) is None

    def test_from_inventory_builds_route_graph(self, small_inventory):
        od_key = next(
            key for key, summary in small_inventory.items()
            if key.grouping_set is GroupingSet.CELL_OD_TYPE
            and summary.transitions.total > 0
        )
        graph = TransitionGraph.from_inventory(
            small_inventory, od_key.origin, od_key.destination, od_key.vessel_type
        )
        assert graph.edge_count() > 0


class TestAstar:
    def test_follows_chain(self, lane_cells):
        graph = _chain_graph(lane_cells)
        path = astar(graph, lane_cells[0], lane_cells[-1])
        assert path == lane_cells

    def test_start_equals_goal(self, lane_cells):
        graph = _chain_graph(lane_cells)
        assert astar(graph, lane_cells[0], lane_cells[0]) == [lane_cells[0]]

    def test_unreachable_returns_none(self, lane_cells):
        graph = _chain_graph(lane_cells)
        # Directed chain: cannot go backwards.
        assert astar(graph, lane_cells[-1], lane_cells[0]) is None

    def test_picks_shorter_branch(self, lane_cells):
        graph = _chain_graph(lane_cells)
        # Add a shortcut skipping the middle (non-adjacent hop, longer per
        # edge but fewer edges — A* must take whichever is shorter overall).
        graph.add_edge(lane_cells[0], lane_cells[5], count=1)
        path = astar(graph, lane_cells[0], lane_cells[-1])
        expected = [lane_cells[0]] + lane_cells[5:]
        assert path == expected

    def test_optimality_matches_networkx(self, small_inventory):
        od_keys = [
            key for key, summary in small_inventory.items()
            if key.grouping_set is GroupingSet.CELL_OD_TYPE
            and summary.transitions.total > 0
        ]
        checked = 0
        for key in od_keys[:5]:
            graph = TransitionGraph.from_inventory(
                small_inventory, key.origin, key.destination, key.vessel_type
            )
            nodes = sorted(graph.nodes())
            if len(nodes) < 3:
                continue
            nxg = nx.DiGraph()
            for src in nodes:
                for dst in graph.neighbors(src):
                    nxg.add_edge(src, dst, weight=_cell_distance_m(src, dst))
            source, target = nodes[0], nodes[-1]
            ours = astar(graph, source, target)
            try:
                reference = nx.shortest_path_length(
                    nxg, source, target, weight="weight"
                )
            except nx.NetworkXNoPath:
                assert ours is None
                continue
            assert ours is not None
            ours_length = sum(
                _cell_distance_m(a, b) for a, b in zip(ours, ours[1:])
            )
            assert ours_length == pytest.approx(reference, rel=1e-9)
            checked += 1
        assert checked > 0


class TestRouteForecaster:
    def test_forecast_on_real_route(self, small_world, small_inventory):
        from repro.world.routing import SeaRouter

        static = small_world.static_by_mmsi()
        router = SeaRouter()
        forecaster = RouteForecaster(small_inventory)
        forecasted = 0
        for plan in small_world.voyages:
            vessel_type = static[plan.mmsi].segment.value
            if not small_inventory.route_cells(
                plan.origin, plan.destination, vessel_type
            ):
                continue
            origin_pos = router.node_position(plan.origin)
            dest_pos = router.node_position(plan.destination)
            path = forecaster.forecast(
                origin_pos[0], origin_pos[1], plan.origin, plan.destination,
                vessel_type, dest_pos[0], dest_pos[1],
            )
            if path is None:
                continue
            forecasted += 1
            assert len(path) > 2
            if forecasted >= 3:
                break
        assert forecasted > 0

    def test_forecast_without_history_returns_none(self, small_inventory):
        forecaster = RouteForecaster(small_inventory)
        assert forecaster.forecast(
            0.0, 0.0, "NOPE1", "NOPE2", "cargo", 1.0, 1.0
        ) is None

    def test_popularity_weighting_changes_costs(self, lane_cells,
                                                small_inventory):
        # Popularity weighting still returns a valid path on a real key.
        from repro.inventory.keys import GroupingSet

        od_key = next(
            (key for key, summary in small_inventory.items()
             if key.grouping_set is GroupingSet.CELL_OD_TYPE
             and summary.transitions.total > 3),
            None,
        )
        if od_key is None:
            pytest.skip("no transition-rich route in fixture")
        from repro.hexgrid import cell_to_latlng

        forecaster = RouteForecaster(small_inventory)
        cells = list(small_inventory.route_cells(
            od_key.origin, od_key.destination, od_key.vessel_type
        ))
        start = cell_to_latlng(cells[0])
        goal = cell_to_latlng(cells[-1])
        path = forecaster.forecast(
            start[0], start[1], od_key.origin, od_key.destination,
            od_key.vessel_type, goal[0], goal[1], popularity_weighted=True,
        )
        assert path is None or len(path) >= 1
