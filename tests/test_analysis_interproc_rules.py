"""Fixtures for the interprocedural rules (REP007–REP009), SARIF output
and ``--changed`` selection.

Same conventions as ``test_analysis_rules.py``: tiny on-disk trees,
marker-anchored line assertions, one rule per ``analyze`` call — plus
``lint()`` exit-code checks proving each rule fails the build on its
injected violation and passes on the compliant twin.
"""

from __future__ import annotations

import io
import json
import subprocess
import textwrap

from repro.analysis.changed import changed_files, filter_findings
from repro.analysis.findings import Finding
from repro.analysis.runner import analyze, lint
from repro.analysis.rules.leaks import ResourceLeakRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.wire_errors import WireErrorSyncRule


def make_tree(root, files: dict[str, str]):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def line_of(source: str, marker: str) -> int:
    for index, line in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if marker in line:
            return index
    raise AssertionError(f"marker {marker!r} not in fixture")


def hits(findings: list[Finding], rule: str) -> list[tuple[str, int]]:
    return [(f.path, f.line) for f in findings if f.rule == rule]


# ---------------------------------------------------------------- REP007


ORDER_VIOLATION = """\
    import threading


    class Store:
        # repro: lock-order _a_lock -> _b_lock
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()

        def bad(self):
            with self._b_lock:
                with self._a_lock:  # inverted-nesting
                    return 1
"""

ORDER_COMPLIANT = """\
    import threading


    class Store:
        # repro: lock-order _a_lock -> _b_lock
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()

        def good(self):
            with self._a_lock:
                with self._b_lock:
                    return 1

        def multi(self):
            with self._a_lock, self._b_lock:
                return 2
"""

ORDER_MULTI_ITEM_VIOLATION = """\
    import threading


    class Store:
        # repro: lock-order _a_lock -> _b_lock
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()

        def bad(self):
            with self._b_lock, self._a_lock:  # inverted-multi
                return 1
"""

ORDER_INTERPROCEDURAL = """\
    import threading


    class Store:
        # repro: lock-order _a_lock -> _b_lock
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()

        def outer(self):
            with self._b_lock:
                return self._helper()  # call-under-b

        def _helper(self):
            with self._a_lock:
                return 1
"""

LOCK_CYCLE = """\
    import threading


    class Pair:
        def __init__(self):
            self._left_lock = threading.Lock()
            self._right_lock = threading.Lock()

        def forward(self):
            with self._left_lock:
                with self._right_lock:  # cycle-edge-one
                    return 1

        def backward(self):
            with self._right_lock:
                with self._left_lock:
                    return 2
"""

ROTTED_DECLARATION = """\
    import threading


    class Store:
        # repro: lock-order _a_lock -> _gone_lock
        def __init__(self):
            self._a_lock = threading.Lock()

        def use(self):
            with self._a_lock:
                return 1
"""


def test_rep007_flags_inverted_nested_acquisition(tmp_path):
    root = make_tree(tmp_path, {"pkg/store.py": ORDER_VIOLATION})
    findings = analyze(root, [LockOrderRule])
    assert hits(findings, "REP007") == [
        ("pkg/store.py", line_of(ORDER_VIOLATION, "inverted-nesting")),
    ]
    (finding,) = findings
    assert isinstance(finding.message, str)
    assert "contradicts the declared lock-order _a_lock -> _b_lock" in finding.message


def test_rep007_silent_on_compliant_twin(tmp_path):
    root = make_tree(tmp_path, {"pkg/store.py": ORDER_COMPLIANT})
    assert hits(analyze(root, [LockOrderRule]), "REP007") == []


def test_rep007_multi_item_with_respects_item_order(tmp_path):
    root = make_tree(tmp_path, {"pkg/store.py": ORDER_MULTI_ITEM_VIOLATION})
    findings = analyze(root, [LockOrderRule])
    assert hits(findings, "REP007") == [
        ("pkg/store.py", line_of(ORDER_MULTI_ITEM_VIOLATION, "inverted-multi")),
    ]


def test_rep007_sees_through_calls(tmp_path):
    root = make_tree(tmp_path, {"pkg/store.py": ORDER_INTERPROCEDURAL})
    findings = analyze(root, [LockOrderRule])
    assert hits(findings, "REP007") == [
        ("pkg/store.py", line_of(ORDER_INTERPROCEDURAL, "call-under-b")),
    ]


def test_rep007_detects_cycles_without_a_declaration(tmp_path):
    root = make_tree(tmp_path, {"pkg/pair.py": LOCK_CYCLE})
    findings = [f for f in analyze(root, [LockOrderRule]) if f.rule == "REP007"]
    assert len(findings) == 1
    assert "cycle" in findings[0].message


def test_rep007_flags_rotted_declarations(tmp_path):
    root = make_tree(tmp_path, {"pkg/store.py": ROTTED_DECLARATION})
    findings = [f for f in analyze(root, [LockOrderRule]) if f.rule == "REP007"]
    assert len(findings) == 1
    assert "_gone_lock" in findings[0].message


def test_rep007_violation_fails_lint_and_twin_passes(tmp_path):
    bad_root = make_tree(tmp_path / "bad", {"pkg/store.py": ORDER_VIOLATION})
    good_root = make_tree(tmp_path / "good", {"pkg/store.py": ORDER_COMPLIANT})
    out = io.StringIO()
    assert (
        lint(
            root=bad_root,
            baseline_path=tmp_path / "b.json",
            rules_spec="REP007",
            out=out,
        )
        == 1
    )
    assert (
        lint(
            root=good_root,
            baseline_path=tmp_path / "b.json",
            rules_spec="REP007",
            out=out,
        )
        == 0
    )


def test_rep007_pragma_suppression(tmp_path):
    source = ORDER_VIOLATION.replace(
        "with self._a_lock:  # inverted-nesting",
        "with self._a_lock:  # repro: allow[REP007] proven single-threaded here",
    )
    root = make_tree(tmp_path, {"pkg/store.py": source})
    assert hits(analyze(root, [LockOrderRule]), "REP007") == []


def test_malformed_lock_order_declaration_is_rep000(tmp_path):
    source = """\
        import threading


        class Store:
            # repro: lock-order _only_one_lock
            def __init__(self):
                self._only_one_lock = threading.Lock()
    """
    root = make_tree(tmp_path, {"pkg/store.py": source})
    findings = analyze(root, [LockOrderRule])
    assert [f.rule for f in findings] == ["REP000"]


# ---------------------------------------------------------------- REP008


LEAK_BETWEEN_OPEN_AND_CLOSE = """\
    from pkg import fsio


    def load(path):
        handle = fsio.open_file(path)  # leaky-open
        data = handle.read()
        handle.close()
        return data
"""

LEAK_FSIO_STUB = """\
    def open_file(path):
        return open(path, "rb")
"""

CLOSED_IN_FINALLY = """\
    from pkg import fsio


    def load(path):
        handle = fsio.open_file(path)
        try:
            return handle.read()
        finally:
            handle.close()
"""

WITH_IS_SAFE = """\
    def load(path):
        with open(path, "rb") as handle:
            return handle.read()
"""

OWNERSHIP_ESCAPES = """\
    def connect(factory):
        conn = factory.acquire()
        return conn


    def register(registry, path):
        handle = open(path, "rb")
        registry.adopt(handle)
"""

GUARDED_CLOSE = """\
    def probe(pool):
        client = None
        try:
            client = pool.acquire()
            client.ping()
        except Exception:
            if client is not None:
                client.close()
            return False
        pool.release(client)
        return True
"""

LEAK_ON_EXCEPTION_PATH_ONLY = """\
    def sizes(paths):
        total = 0
        handle = open(paths[0], "rb")  # exception-path-leak
        total += len(handle.read())
        handle.close()
        return total
"""


def test_rep008_flags_close_not_reached_on_exception_path(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "inventory/loader.py": LEAK_BETWEEN_OPEN_AND_CLOSE,
            "inventory/fsio.py": LEAK_FSIO_STUB,
        },
    )
    findings = analyze(root, [ResourceLeakRule])
    assert hits(findings, "REP008") == [
        ("inventory/loader.py", line_of(LEAK_BETWEEN_OPEN_AND_CLOSE, "leaky-open")),
    ]


def test_rep008_silent_when_closed_in_finally(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "inventory/loader.py": CLOSED_IN_FINALLY,
            "inventory/fsio.py": LEAK_FSIO_STUB,
        },
    )
    assert hits(analyze(root, [ResourceLeakRule]), "REP008") == []


def test_rep008_with_acquisitions_are_safe(tmp_path):
    root = make_tree(tmp_path, {"inventory/loader.py": WITH_IS_SAFE})
    assert hits(analyze(root, [ResourceLeakRule]), "REP008") == []


def test_rep008_escaped_ownership_is_not_flagged(tmp_path):
    root = make_tree(tmp_path, {"server/conn.py": OWNERSHIP_ESCAPES})
    assert hits(analyze(root, [ResourceLeakRule]), "REP008") == []


def test_rep008_guarded_close_in_catch_all_handler_is_clean(tmp_path):
    root = make_tree(tmp_path, {"server/probe.py": GUARDED_CLOSE})
    assert hits(analyze(root, [ResourceLeakRule]), "REP008") == []


def test_rep008_flags_exception_path_even_with_happy_path_close(tmp_path):
    root = make_tree(
        tmp_path, {"inventory/sizes.py": LEAK_ON_EXCEPTION_PATH_ONLY}
    )
    findings = analyze(root, [ResourceLeakRule])
    assert hits(findings, "REP008") == [
        (
            "inventory/sizes.py",
            line_of(LEAK_ON_EXCEPTION_PATH_ONLY, "exception-path-leak"),
        ),
    ]


def test_rep008_out_of_scope_modules_are_ignored(tmp_path):
    root = make_tree(tmp_path, {"apps/tool.py": LEAK_ON_EXCEPTION_PATH_ONLY})
    assert hits(analyze(root, [ResourceLeakRule]), "REP008") == []


def test_rep008_violation_fails_lint_and_twin_passes(tmp_path):
    bad = make_tree(
        tmp_path / "bad", {"inventory/sizes.py": LEAK_ON_EXCEPTION_PATH_ONLY}
    )
    good = make_tree(tmp_path / "good", {"inventory/loader.py": WITH_IS_SAFE})
    out = io.StringIO()
    assert (
        lint(root=bad, baseline_path=tmp_path / "b.json", rules_spec="REP008", out=out)
        == 1
    )
    assert (
        lint(root=good, baseline_path=tmp_path / "b.json", rules_spec="REP008", out=out)
        == 0
    )


def test_rep008_pragma_suppression(tmp_path):
    source = LEAK_ON_EXCEPTION_PATH_ONLY.replace(
        'handle = open(paths[0], "rb")  # exception-path-leak',
        'handle = open(paths[0], "rb")  # repro: allow[REP008] process-lifetime handle',
    )
    root = make_tree(tmp_path, {"inventory/sizes.py": source})
    assert hits(analyze(root, [ResourceLeakRule]), "REP008") == []


# ---------------------------------------------------------------- REP009


WIRE_OK = """\
    ERR_BAD = "bad"
    ERR_SLOW = "slow"


    class ProtocolError(Exception):
        def __init__(self, code, message):
            super().__init__(message)
            self.code = code


    def reject():
        raise ProtocolError(ERR_BAD, "nope")


    def timeout():
        raise ProtocolError(ERR_SLOW, "late")
"""

WIRE_DEAD_CODE = """\
    ERR_BAD = "bad"
    ERR_GHOST = "ghost"  # dead-code


    class ProtocolError(Exception):
        def __init__(self, code, message):
            super().__init__(message)
            self.code = code


    def reject():
        raise ProtocolError(ERR_BAD, "nope")
"""

WIRE_RAW_LITERAL = """\
    ERR_BAD = "bad"


    class ProtocolError(Exception):
        def __init__(self, code, message):
            super().__init__(message)
            self.code = code


    def reject():
        raise ProtocolError("bad", "nope")  # raw-literal


    def use():
        return ERR_BAD
"""

WIRE_TYPO = """\
    ERR_BAD = "bad"


    class ProtocolError(Exception):
        def __init__(self, code, message):
            super().__init__(message)
            self.code = code


    def reject():
        raise ProtocolError("bda", "typo ships")  # typo-literal


    def use():
        return ERR_BAD
"""


def test_rep009_flags_dead_error_codes(tmp_path):
    root = make_tree(tmp_path, {"server/protocol.py": WIRE_DEAD_CODE})
    findings = analyze(root, [WireErrorSyncRule])
    assert hits(findings, "REP009") == [
        ("server/protocol.py", line_of(WIRE_DEAD_CODE, "dead-code")),
    ]


def test_rep009_flags_raw_literal_at_raise_site(tmp_path):
    root = make_tree(tmp_path, {"server/protocol.py": WIRE_RAW_LITERAL})
    findings = analyze(root, [WireErrorSyncRule])
    assert hits(findings, "REP009") == [
        ("server/protocol.py", line_of(WIRE_RAW_LITERAL, "raw-literal")),
    ]


def test_rep009_flags_undeclared_code_typo(tmp_path):
    root = make_tree(tmp_path, {"server/protocol.py": WIRE_TYPO})
    findings = [f for f in analyze(root, [WireErrorSyncRule]) if f.rule == "REP009"]
    assert len(findings) == 1
    assert "'bda'" in findings[0].message


def test_rep009_silent_on_compliant_twin(tmp_path):
    root = make_tree(tmp_path, {"server/protocol.py": WIRE_OK})
    assert hits(analyze(root, [WireErrorSyncRule]), "REP009") == []


def test_rep009_silent_when_no_registry_exists(tmp_path):
    root = make_tree(tmp_path, {"pkg/plain.py": "def f():\n    return 1\n"})
    assert hits(analyze(root, [WireErrorSyncRule]), "REP009") == []


def test_rep009_docs_sync_both_directions(tmp_path):
    # The docs anchor is two levels above the analysis root (repo layout:
    # src/<pkg> + docs/OPERATIONS.md).
    root = make_tree(tmp_path / "src" / "pkg", {"server/protocol.py": WIRE_OK})
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "OPERATIONS.md").write_text(
        "| `bad` (code) | reject |\n| `stale` (code) | ghost row |\n",
        encoding="utf-8",
    )
    findings = [f for f in analyze(root, [WireErrorSyncRule]) if f.rule == "REP009"]
    messages = "\n".join(f.message for f in findings)
    assert "'slow' has no triage row" in messages  # declared, undocumented
    assert "'stale'" in messages  # documented, undeclared
    assert len(findings) == 2


def test_rep009_violation_fails_lint_and_twin_passes(tmp_path):
    bad = make_tree(tmp_path / "bad", {"server/protocol.py": WIRE_DEAD_CODE})
    good = make_tree(tmp_path / "good", {"server/protocol.py": WIRE_OK})
    out = io.StringIO()
    assert (
        lint(root=bad, baseline_path=tmp_path / "b.json", rules_spec="REP009", out=out)
        == 1
    )
    assert (
        lint(root=good, baseline_path=tmp_path / "b.json", rules_spec="REP009", out=out)
        == 0
    )


# ---------------------------------------------------------------- SARIF


def test_sarif_output_shape_and_exit_code(tmp_path):
    root = make_tree(
        tmp_path, {"inventory/sizes.py": LEAK_ON_EXCEPTION_PATH_ONLY}
    )
    out = io.StringIO()
    code = lint(
        root=root,
        baseline_path=tmp_path / "b.json",
        fmt="sarif",
        rules_spec="REP008",
        out=out,
    )
    assert code == 1
    log = json.loads(out.getvalue())
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analysis"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "REP008" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "REP008"
    assert result["level"] == "error"
    assert result["baselineState"] == "new"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "inventory/sizes.py"
    assert location["region"]["startLine"] == line_of(
        LEAK_ON_EXCEPTION_PATH_ONLY, "exception-path-leak"
    )


def test_sarif_clean_tree_has_empty_results(tmp_path):
    root = make_tree(tmp_path, {"inventory/loader.py": WITH_IS_SAFE})
    out = io.StringIO()
    code = lint(
        root=root,
        baseline_path=tmp_path / "b.json",
        fmt="sarif",
        rules_spec="REP008",
        out=out,
    )
    assert code == 0
    log = json.loads(out.getvalue())
    assert log["runs"][0]["results"] == []


# ---------------------------------------------------------------- --changed


def test_filter_findings_none_keeps_everything():
    findings = [Finding(path="a.py", line=1, rule="REP001", message="m")]
    assert filter_findings(findings, None) == findings


def test_filter_findings_selects_by_path():
    keep = Finding(path="a.py", line=1, rule="REP001", message="m")
    drop = Finding(path="b.py", line=1, rule="REP001", message="m")
    assert filter_findings([keep, drop], {"a.py"}) == [keep]


def _git(cwd, *args):
    subprocess.run(
        ["git", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": __import__("os").environ["PATH"],
        },
    )


def test_changed_files_against_a_real_repo(tmp_path):
    root = make_tree(
        tmp_path / "src" / "pkg",
        {
            "stable.py": "def a():\n    return 1\n",
            "touched.py": "def b():\n    return 2\n",
        },
    )
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    (root / "touched.py").write_text("def b():\n    return 3\n", encoding="utf-8")
    (root / "fresh.py").write_text("def c():\n    return 4\n", encoding="utf-8")
    selected = changed_files(root)
    assert selected == {"touched.py", "fresh.py"}


def test_changed_files_degrades_to_none_outside_git(tmp_path):
    root = make_tree(tmp_path / "plain", {"mod.py": "x = 1\n"})
    assert changed_files(root) is None


def test_lint_changed_reports_only_touched_files(tmp_path):
    bad = LEAK_ON_EXCEPTION_PATH_ONLY
    root = make_tree(
        tmp_path / "src" / "pkg",
        {
            "inventory/committed.py": bad,
            "inventory/touched.py": "def ok():\n    return 1\n",
        },
    )
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    (root / "inventory" / "touched.py").write_text(
        "def ok():\n    return 2\n", encoding="utf-8"
    )
    out = io.StringIO()
    code = lint(
        root=root,
        baseline_path=tmp_path / "b.json",
        rules_spec="REP008",
        out=out,
        changed_only=True,
    )
    # committed.py's leak is real but untouched: the PR lane stays quiet
    # (the full-tree main lane still reports it).
    assert code == 0, out.getvalue()
    out = io.StringIO()
    assert (
        lint(
            root=root,
            baseline_path=tmp_path / "b.json",
            rules_spec="REP008",
            out=out,
        )
        == 1
    )
