"""Tests for repro.geo.greatcircle."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import haversine_m, interpolate, sample_track, track_length_m

LATS = st.floats(min_value=-80.0, max_value=80.0)
LONS = st.floats(min_value=-179.0, max_value=179.0)


def test_interpolate_endpoints():
    assert interpolate(10.0, 20.0, 30.0, 40.0, 0.0) == pytest.approx((10.0, 20.0))
    assert interpolate(10.0, 20.0, 30.0, 40.0, 1.0) == pytest.approx((30.0, 40.0))


def test_interpolate_midpoint_equidistant():
    mid = interpolate(0.0, 0.0, 0.0, 90.0, 0.5)
    d1 = haversine_m(0.0, 0.0, *mid)
    d2 = haversine_m(*mid, 0.0, 90.0)
    assert d1 == pytest.approx(d2, rel=1e-9)


def test_interpolate_fraction_clamped():
    assert interpolate(0.0, 0.0, 0.0, 10.0, -0.5) == pytest.approx((0.0, 0.0))
    assert interpolate(0.0, 0.0, 0.0, 10.0, 1.5) == pytest.approx((0.0, 10.0))


def test_interpolate_identical_points():
    assert interpolate(5.0, 5.0, 5.0, 5.0, 0.7) == (5.0, 5.0)


def test_interpolate_antipodal_does_not_produce_nan():
    lat, lon = interpolate(0.0, 0.0, 0.0, 180.0, 0.3)
    assert lat == lat and lon == lon  # not NaN


@given(lat1=LATS, lon1=LONS, lat2=LATS, lon2=LONS,
       fraction=st.floats(min_value=0.0, max_value=1.0))
def test_interpolated_point_divides_distance_proportionally(
    lat1, lon1, lat2, lon2, fraction
):
    total = haversine_m(lat1, lon1, lat2, lon2)
    mid = interpolate(lat1, lon1, lat2, lon2, fraction)
    partial = haversine_m(lat1, lon1, *mid)
    assert partial == pytest.approx(fraction * total, abs=2.0)


def test_sample_track_spacing():
    points = sample_track(0.0, 0.0, 0.0, 5.0, spacing_m=100_000.0)
    assert points[0] == (0.0, 0.0)
    assert points[-1] == pytest.approx((0.0, 5.0))
    for a, b in zip(points, points[1:-1]):
        assert haversine_m(*a, *b) == pytest.approx(100_000.0, rel=1e-6)


def test_sample_track_without_end():
    points = sample_track(0.0, 0.0, 0.0, 5.0, spacing_m=100_000.0, include_end=False)
    assert points[-1] != pytest.approx((0.0, 5.0))


def test_sample_track_degenerate_leg():
    assert sample_track(3.0, 3.0, 3.0, 3.0, spacing_m=500.0) == [(3.0, 3.0)]


def test_sample_track_rejects_nonpositive_spacing():
    with pytest.raises(ValueError):
        sample_track(0.0, 0.0, 1.0, 1.0, spacing_m=0.0)


def test_track_length_sums_legs():
    waypoints = [(0.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
    expected = haversine_m(0.0, 0.0, 0.0, 1.0) + haversine_m(0.0, 1.0, 1.0, 1.0)
    assert track_length_m(waypoints) == pytest.approx(expected)


def test_track_length_of_single_point_is_zero():
    assert track_length_m([(10.0, 10.0)]) == 0.0
