"""Tests for the streaming inventory builder, including batch equivalence."""

import pytest

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.pipeline.streaming import StreamingInventoryBuilder


@pytest.fixture(scope="module")
def clean_world():
    """A defect-free world: streaming and batch must agree exactly."""
    return generate_dataset(
        WorldConfig(seed=555, n_vessels=14, days=12.0,
                    report_interval_s=900.0, clean=True)
    )


@pytest.fixture(scope="module")
def stream_result(clean_world):
    builder = StreamingInventoryBuilder(
        clean_world.fleet, clean_world.ports, PipelineConfig()
    )
    builder.ingest_many(clean_world.positions)
    return builder


@pytest.fixture(scope="module")
def batch_result(clean_world):
    return build_inventory(
        clean_world.positions, clean_world.fleet, clean_world.ports,
        PipelineConfig(),
    )


class TestBatchEquivalence:
    def test_same_group_keys(self, stream_result, batch_result):
        stream_keys = {key for key, _ in stream_result.inventory.items()}
        batch_keys = {key for key, _ in batch_result.inventory.items()}
        assert stream_keys == batch_keys

    def test_same_record_counts_per_group(self, stream_result, batch_result):
        batch = {
            key: summary.records for key, summary in batch_result.inventory.items()
        }
        for key, summary in stream_result.inventory.items():
            assert summary.records == batch[key], key

    def test_same_statistics(self, stream_result, batch_result):
        batch = dict(batch_result.inventory.items())
        for key, summary in stream_result.inventory.items():
            reference = batch[key]
            assert summary.speed.mean == pytest.approx(reference.speed.mean)
            assert summary.ships.cardinality() == reference.ships.cardinality()
            assert summary.course_bins.counts == reference.course_bins.counts
            assert [t.value for t in summary.transitions.top(3)] == [
                t.value for t in reference.transitions.top(3)
            ]

    def test_trip_count_matches_funnel(self, stream_result, batch_result):
        assert (
            stream_result.inventory.total_records()
            == batch_result.funnel["with_trip_semantics"]
        )


class TestStreamBehaviour:
    def test_stats_account_for_every_report(self, stream_result, clean_world):
        stats = stream_result.stats
        assert stats.ingested == len(clean_world.positions)
        assert stats.invalid == 0  # clean world
        assert stats.trips_completed > 0

    def test_completed_trip_records_are_returned(self, clean_world):
        builder = StreamingInventoryBuilder(
            clean_world.fleet, clean_world.ports, PipelineConfig()
        )
        completions = []
        for report in clean_world.positions:
            completed = builder.ingest(report)
            if completed:
                completions.append(completed)
        assert len(completions) == builder.stats.trips_completed
        first = completions[0]
        assert first[0].origin != first[0].destination
        assert all(record.trip_id == first[0].trip_id for record in first)

    def test_dirty_stream_drops_are_counted(self):
        dirty = generate_dataset(
            WorldConfig(seed=556, n_vessels=8, days=6.0,
                        report_interval_s=900.0)
        )
        builder = StreamingInventoryBuilder(
            dirty.fleet, dirty.ports, PipelineConfig()
        )
        builder.ingest_many(dirty.positions)
        stats = builder.stats
        assert stats.invalid >= dirty.defects.bad_field
        assert stats.stale_or_duplicate > 0  # duplicates + late arrivals
        assert stats.ingested == len(dirty.positions)

    def test_non_commercial_reports_counted(self, clean_world):
        from repro.ais.messages import PositionReport

        builder = StreamingInventoryBuilder(
            clean_world.fleet, clean_world.ports, PipelineConfig()
        )
        ghost = PositionReport(
            mmsi=999_999_999, epoch_ts=0.0, lat=0.0, lon=0.0, sog=10.0,
            cog=10.0, heading=10, status=0,
        )
        assert builder.ingest(ghost) == []
        assert builder.stats.non_commercial == 1

    def test_incremental_queries_between_ingests(self, clean_world):
        """The inventory is queryable at any point mid-stream."""
        builder = StreamingInventoryBuilder(
            clean_world.fleet, clean_world.ports, PipelineConfig()
        )
        half = len(clean_world.positions) // 2
        builder.ingest_many(clean_world.positions[:half])
        mid_size = len(builder.inventory)
        builder.ingest_many(clean_world.positions[half:])
        assert len(builder.inventory) >= mid_size
