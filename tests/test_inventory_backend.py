"""Tests for the pluggable inventory backends.

The load-bearing properties:

- the raw-byte key encoding orders exactly like ``GroupKey.sort_key``
  (the sparse index's binary search silently corrupts lookups if these
  ever diverge) — pinned by a hypothesis property test;
- :class:`SSTableInventory` answers ``summary_at`` /
  ``top_destinations_at`` / ``route_cells`` identically to the in-memory
  :class:`Inventory` on the same build;
- a point lookup reads a bounded number of blocks (block-cache miss
  counters), and the LRU evicts at capacity;
- the route index persists as a sidecar and recovers by scan when the
  sidecar is missing;
- all four use-case apps run against the disk backend without ever
  constructing an in-memory store.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.metrics import CounterSet
from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.inventory import (
    BlockCache,
    GroupKey,
    Inventory,
    QueryableInventory,
    SSTableInventory,
    merge_tables,
    open_backend,
    write_inventory,
)
from repro.inventory.keys import GroupingSet
from repro.inventory.sstable import (
    _key_bytes,
    _key_from_bytes,
    read_route_index,
    route_index_path,
)
from repro.inventory.summary import CellSummary


def _summary(records=3, destination="NLRTM", origin="CNSHA", next_cell=None):
    summary = CellSummary()
    for i in range(records):
        summary.update(
            mmsi=100_000_000 + i, sog=10.0 + i, cog=90.0, heading=90,
            trip_id=f"t{i}", eto_s=50.0, ata_s=100.0, origin=origin,
            destination=destination, next_cell=next_cell,
        )
    return summary


def _cell(lat, lon, res=6):
    return latlng_to_cell(lat, lon, res)


def _routeful_inventory(n_cells=30):
    """An inventory exercising all three grouping sets and two routes of
    different-length vessel types (the ordering trap)."""
    inventory = Inventory(resolution=6)
    routes = [
        ("CNSHA", "NLRTM", "cargo"),
        ("CNSHA", "NLRTM", "passenger"),  # longer type than "cargo"
        ("SGSIN", "USLAX", "tanker"),
    ]
    for i in range(n_cells):
        cell = _cell(5.0 + (i % 10) * 0.7, 100.0 + (i // 10) * 0.9)
        inventory.put(GroupKey(cell=cell), _summary(records=1 + i % 4))
        for origin, destination, vessel_type in routes:
            inventory.put(
                GroupKey(cell=cell, vessel_type=vessel_type),
                _summary(records=2, destination=destination, origin=origin),
            )
            inventory.put(
                GroupKey(
                    cell=cell,
                    vessel_type=vessel_type,
                    origin=origin,
                    destination=destination,
                ),
                _summary(records=1, destination=destination, origin=origin),
            )
    return inventory


@pytest.fixture()
def backends(tmp_path):
    """(in-memory inventory, disk backend) over the identical build."""
    inventory = _routeful_inventory()
    path = tmp_path / "inv.sst"
    write_inventory(inventory, path)
    backend = SSTableInventory(path)
    yield inventory, backend
    backend.close()


# -- key-encoding order property ---------------------------------------------------

_DIM = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)),
        min_size=0,
        max_size=8,
    ),
)
_KEYS = st.builds(
    GroupKey,
    cell=st.integers(min_value=0, max_value=2**62 - 1),
    vessel_type=_DIM,
    origin=_DIM,
    destination=_DIM,
)


@settings(max_examples=300)
@given(a=_KEYS, b=_KEYS)
def test_key_bytes_order_matches_sort_key(a, b):
    """Byte order of the on-disk encoding == tuple order of sort_key.

    The SSTable's sparse index bisects raw bytes while everything
    in-memory sorts by ``sort_key()``; lookups silently corrupt if these
    orders ever diverge (e.g. the length-prefixed encoding this replaced
    ordered "tanker" < "passenger").
    """
    byte_order = _key_bytes(a) < _key_bytes(b)
    tuple_order = a.sort_key() < b.sort_key()
    assert byte_order == tuple_order
    assert (_key_bytes(a) == _key_bytes(b)) == (a.sort_key() == b.sort_key())


@settings(max_examples=200)
@given(key=_KEYS)
def test_key_bytes_roundtrip(key):
    decoded = _key_from_bytes(_key_bytes(key))
    # None and "" intentionally collapse (sort_key treats them equally).
    assert decoded.sort_key() == key.sort_key()


# -- protocol conformance ----------------------------------------------------------

def test_both_backends_satisfy_protocol(backends):
    inventory, backend = backends
    assert isinstance(inventory, QueryableInventory)
    assert isinstance(backend, QueryableInventory)


def test_resolution_is_inferred_from_keys(backends):
    _, backend = backends
    assert backend.resolution == 6


def test_empty_table_requires_explicit_resolution(tmp_path):
    path = tmp_path / "empty.sst"
    write_inventory(Inventory(resolution=6), path)
    with pytest.raises(ValueError):
        SSTableInventory(path)
    with SSTableInventory(path, resolution=6) as backend:
        assert len(backend) == 0
        assert backend.summary_at(0.0, 0.0) is None


# -- cross-backend equivalence -----------------------------------------------------

def test_point_lookups_agree(backends):
    inventory, backend = backends
    for key, summary in inventory.items():
        stored = backend.get(key)
        assert stored is not None
        assert stored.records == summary.records
    assert backend.get(GroupKey(cell=_cell(-60.0, -170.0))) is None


def test_summary_at_agrees(backends):
    inventory, backend = backends
    for cell in inventory.cells():
        lat, lon = cell_to_latlng(cell)
        for kwargs in (
            {},
            {"vessel_type": "cargo"},
            {"vessel_type": "nosuch"},
            {"vessel_type": "cargo", "origin": "CNSHA", "destination": "NLRTM"},
        ):
            a = inventory.summary_at(lat, lon, **kwargs)
            b = backend.summary_at(lat, lon, **kwargs)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.records == b.records
                assert a.speed.mean == pytest.approx(b.speed.mean)


def test_summary_at_validates_arguments_on_disk_backend(backends):
    _, backend = backends
    with pytest.raises(ValueError):
        backend.summary_at(0.0, 0.0, origin="A")
    with pytest.raises(ValueError):
        backend.summary_at(0.0, 0.0, origin="A", destination="B")


def test_top_destinations_agree(backends):
    inventory, backend = backends
    for cell in inventory.cells():
        lat, lon = cell_to_latlng(cell)
        for vessel_type in (None, "cargo", "passenger", "nosuch"):
            assert inventory.top_destinations_at(
                lat, lon, vessel_type=vessel_type
            ) == backend.top_destinations_at(lat, lon, vessel_type=vessel_type)


def test_route_cells_agree(backends):
    inventory, backend = backends
    for route in [
        ("CNSHA", "NLRTM", "cargo"),
        ("CNSHA", "NLRTM", "passenger"),
        ("SGSIN", "USLAX", "tanker"),
        ("SGSIN", "USLAX", "cargo"),  # absent route
    ]:
        mem = inventory.route_cells(*route)
        disk = backend.route_cells(*route)
        assert set(mem) == set(disk)
        for cell in mem:
            assert mem[cell].records == disk[cell].records


def test_cells_and_items_agree(backends):
    inventory, backend = backends
    assert inventory.cells() == backend.cells()
    assert len(inventory) == len(backend)
    assert {key for key, _ in inventory.items()} == {
        key for key, _ in backend.items()
    }


# -- block cache -------------------------------------------------------------------

def test_point_lookup_reads_at_most_one_block(backends):
    _, backend = backends
    counters = backend.cache.counters
    counters.clear()
    key = next(iter(backend.items()))[0]
    assert backend.get(key) is not None
    assert counters.value(BlockCache.MISSES) <= 1
    assert counters.value(BlockCache.HITS) == 0


def test_repeated_lookups_hit_the_cache(backends):
    _, backend = backends
    key = next(iter(backend.items()))[0]
    backend.cache.counters.clear()
    for _ in range(5):
        assert backend.get(key) is not None
    assert backend.cache.misses == 1
    assert backend.cache.hits == 4
    assert backend.reader.total_read_bytes > 0


def test_cache_evicts_at_capacity(tmp_path):
    inventory = _routeful_inventory(n_cells=60)
    path = tmp_path / "inv.sst"
    write_inventory(inventory, path)
    with SSTableInventory(path, cache_blocks=2) as backend:
        assert backend.reader.block_count > 3
        for key, _ in inventory.items():
            backend.get(key)
        assert len(backend.cache) <= 2
        assert backend.cache.evictions > 0


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        BlockCache(capacity=0)


def test_cache_counters_can_be_shared():
    counters = CounterSet()
    cache = BlockCache(capacity=2, counters=counters)
    cache.put(0, b"x")
    cache.get(0)
    cache.get(1)
    assert counters.value(BlockCache.HITS) == 1
    assert counters.value(BlockCache.MISSES) == 1


# -- route-index sidecar -----------------------------------------------------------

def test_writer_persists_route_sidecar(backends, tmp_path):
    inventory, backend = backends
    sidecar = route_index_path(backend.path)
    assert sidecar.exists()
    index = read_route_index(backend.path)
    assert index is not None
    mem_routes = {
        (key.origin, key.destination, key.vessel_type)
        for key, _ in inventory.items()
        if key.grouping_set is GroupingSet.CELL_OD_TYPE
    }
    assert set(index) == mem_routes


def test_route_cells_without_sidecar_rebuilds_and_repersists(tmp_path):
    inventory = _routeful_inventory()
    path = tmp_path / "inv.sst"
    write_inventory(inventory, path)
    route_index_path(path).unlink()
    with SSTableInventory(path) as backend:
        disk = backend.route_cells("CNSHA", "NLRTM", "cargo")
        assert set(disk) == set(inventory.route_cells("CNSHA", "NLRTM", "cargo"))
    assert route_index_path(path).exists()  # re-persisted for the next open


def test_corrupt_sidecar_falls_back_to_scan(tmp_path):
    inventory = _routeful_inventory()
    path = tmp_path / "inv.sst"
    write_inventory(inventory, path)
    route_index_path(path).write_bytes(b"garbage not a route index")
    with SSTableInventory(path) as backend:
        disk = backend.route_cells("SGSIN", "USLAX", "tanker")
        assert set(disk) == set(inventory.route_cells("SGSIN", "USLAX", "tanker"))


def test_compacted_table_serves_routes(tmp_path):
    """merge_tables output is immediately servable: sidecar included."""
    a = _routeful_inventory(n_cells=10)
    b = _routeful_inventory(n_cells=20)
    path_a, path_b = tmp_path / "a.sst", tmp_path / "b.sst"
    write_inventory(a, path_a)
    write_inventory(b, path_b)
    out = tmp_path / "merged.sst"
    merge_tables([path_a, path_b], out)
    assert route_index_path(out).exists()
    merged = Inventory(resolution=6).merge(a).merge(b)
    with open_backend(out) as backend:
        for route in [("CNSHA", "NLRTM", "cargo"), ("SGSIN", "USLAX", "tanker")]:
            assert set(backend.route_cells(*route)) == set(
                merged.route_cells(*route)
            )


# -- incremental route index on the in-memory store --------------------------------

def test_put_updates_existing_route_index_incrementally():
    inventory = Inventory(resolution=6)
    first = GroupKey(cell=_cell(1.0, 103.0), vessel_type="cargo",
                     origin="A", destination="B")
    inventory.put(first, _summary())
    assert len(inventory.route_cells("A", "B", "cargo")) == 1  # index built
    built_index = inventory._route_index
    second = GroupKey(cell=_cell(2.0, 104.0), vessel_type="cargo",
                      origin="A", destination="B")
    inventory.put(second, _summary())
    # The index object was updated in place, not invalidated.
    assert inventory._route_index is built_index
    assert set(inventory.route_cells("A", "B", "cargo")) == {
        first.cell, second.cell
    }


def test_merge_keeps_route_index_live():
    target = Inventory(resolution=6)
    key = GroupKey(cell=_cell(1.0, 103.0), vessel_type="cargo",
                   origin="A", destination="B")
    target.put(key, _summary())
    target.route_cells("A", "B", "cargo")  # force the index into existence
    other = Inventory(resolution=6)
    other.put(
        GroupKey(cell=_cell(3.0, 105.0), vessel_type="tanker",
                 origin="C", destination="D"),
        _summary(),
    )
    target.merge(other)
    assert target._route_index is not None
    assert len(target.route_cells("C", "D", "tanker")) == 1


# -- apps end-to-end on the disk backend -------------------------------------------

def test_apps_run_against_disk_backend(tmp_path, small_inventory):
    """The acceptance path: every use-case app served straight from a
    compacted table, no in-memory Inventory constructed."""
    from repro.apps import (
        AnomalyDetector,
        DestinationPredictor,
        EtaEstimator,
        RouteForecaster,
    )

    staging = tmp_path / "staging.sst"
    write_inventory(small_inventory, staging)
    table = tmp_path / "serving.sst"
    merge_tables([staging], table)

    # A real route key present in the build, plus a cell on it.
    route_key = next(
        key
        for key, _ in small_inventory.items()
        if key.grouping_set is GroupingSet.CELL_OD_TYPE
    )
    lat, lon = cell_to_latlng(route_key.cell)
    origin, destination = route_key.origin, route_key.destination
    vessel_type = route_key.vessel_type

    with open_backend(table) as backend:
        reference_eta = EtaEstimator(small_inventory).estimate(
            lat, lon, vessel_type=vessel_type,
            origin=origin, destination=destination,
        )
        eta = EtaEstimator(backend).estimate(
            lat, lon, vessel_type=vessel_type,
            origin=origin, destination=destination,
        )
        assert (eta is None) == (reference_eta is None)
        if eta is not None:
            assert eta.mean_s == pytest.approx(reference_eta.mean_s)
            assert eta.grouping == reference_eta.grouping

        predictor = DestinationPredictor(backend)
        state = predictor.predict_track([(lat, lon)], vessel_type=vessel_type)
        reference = DestinationPredictor(small_inventory).predict_track(
            [(lat, lon)], vessel_type=vessel_type
        )
        assert state.best() == reference.best()

        forecaster = RouteForecaster(backend)
        goal_cells = sorted(
            small_inventory.route_cells(origin, destination, vessel_type)
        )
        goal_lat, goal_lon = cell_to_latlng(goal_cells[-1])
        path = forecaster.forecast(
            lat, lon, origin, destination, vessel_type, goal_lat, goal_lon
        )
        reference_path = RouteForecaster(small_inventory).forecast(
            lat, lon, origin, destination, vessel_type, goal_lat, goal_lon
        )
        assert path == reference_path

        detector = AnomalyDetector(backend)
        score = detector.score(
            lat, lon, sog=10.0, cog=90.0, vessel_type=vessel_type,
            origin=origin, destination=destination,
        )
        reference_score = AnomalyDetector(small_inventory).score(
            lat, lon, sog=10.0, cog=90.0, vessel_type=vessel_type,
            origin=origin, destination=destination,
        )
        assert score.off_lane == reference_score.off_lane
        assert score.is_anomalous == reference_score.is_anomalous
