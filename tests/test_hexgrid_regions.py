"""Tests for repro.hexgrid.regions (bbox covers and polyfill)."""

import pytest

from repro.geo import BoundingBox
from repro.hexgrid import (
    bbox_cells,
    cell_area_km2,
    cell_to_latlng,
    get_resolution,
    latlng_to_cell,
    polyfill,
)


BALTIC = BoundingBox(54.0, 60.0, 10.0, 30.0)


def test_bbox_cells_centers_inside():
    cells = bbox_cells(BALTIC, 4)
    assert cells
    for cell in cells:
        lat, lon = cell_to_latlng(cell)
        assert BALTIC.contains(lat, lon)
        assert get_resolution(cell) == 4


def test_bbox_cells_cover_interior_points():
    cells = set(bbox_cells(BALTIC, 4))
    # Any point well inside the box must land in a covered cell.
    for lat, lon in [(55.0, 15.0), (57.0, 20.0), (59.0, 25.0)]:
        assert latlng_to_cell(lat, lon, 4) in cells


def test_bbox_cells_count_tracks_area():
    cells = bbox_cells(BALTIC, 4)
    # Box area ≈ width × height in km (rough), divided by cell area.
    approx_area_km2 = 6.0 * 111.0 * 20.0 * 111.0 * 0.55  # cos(57°) ≈ 0.55
    expected = approx_area_km2 / cell_area_km2(4)
    assert len(cells) == pytest.approx(expected, rel=0.35)


def test_bbox_cells_antimeridian_split():
    pacific = BoundingBox(-5.0, 5.0, 175.0, -175.0)
    cells = bbox_cells(pacific, 3)
    assert cells
    lons = [cell_to_latlng(cell)[1] for cell in cells]
    assert any(lon > 170.0 for lon in lons)
    assert any(lon < -170.0 for lon in lons)


def test_bbox_cells_results_sorted_unique():
    cells = bbox_cells(BALTIC, 4)
    assert cells == sorted(cells)
    assert len(cells) == len(set(cells))


def test_polyfill_triangle_subset_of_bbox():
    triangle = [(54.0, 10.0), (60.0, 10.0), (54.0, 30.0)]
    tri_cells = set(polyfill(triangle, 4))
    box_cells = set(bbox_cells(BALTIC, 4))
    assert tri_cells
    assert tri_cells <= box_cells
    # A triangle is about half its bounding box.
    assert 0.25 < len(tri_cells) / len(box_cells) < 0.75
