"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    path = directory / "archive.csv"
    code = main([
        "generate", "--seed", "5", "--vessels", "8", "--days", "5",
        "--interval", "900", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def inventory_table(archive):
    path = archive.parent / "inventory.sst"
    code = main([
        "build", "--archive", str(archive), "--out", str(path),
    ])
    assert code == 0
    return path


def test_generate_writes_archive_and_sidecar(archive):
    assert archive.exists()
    sidecar = archive.with_suffix(".fleet.csv")
    assert sidecar.exists()
    header = archive.read_text().splitlines()[0]
    assert header.startswith("MMSI,BaseDateTime")
    assert "segment" in sidecar.read_text().splitlines()[0]


def test_generate_is_deterministic(tmp_path, archive):
    again = tmp_path / "again.csv"
    main([
        "generate", "--seed", "5", "--vessels", "8", "--days", "5",
        "--interval", "900", "--out", str(again),
    ])
    assert again.read_text() == archive.read_text()


def test_build_creates_table(inventory_table):
    assert inventory_table.exists()
    assert inventory_table.stat().st_size > 1000


def test_info_reports_groups(inventory_table, capsys):
    code = main(["info", "--inventory", str(inventory_table)])
    assert code == 0
    output = capsys.readouterr().out
    assert "entries:" in output
    assert "cell_od_type" in output


def test_query_hits_a_known_cell(inventory_table, capsys):
    # Find a cell we know exists by scanning the table first.
    from repro.hexgrid import cell_to_latlng
    from repro.inventory import open_inventory
    from repro.inventory.keys import GroupingSet

    with open_inventory(inventory_table) as reader:
        key = next(
            key for key, _ in reader.scan()
            if key.grouping_set is GroupingSet.CELL
        )
    lat, lon = cell_to_latlng(key.cell)
    code = main([
        "query", "--inventory", str(inventory_table),
        "--lat", str(lat), "--lon", str(lon),
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "records:" in output
    assert "speed kn:" in output


def test_query_miss_returns_nonzero(inventory_table, capsys):
    code = main([
        "query", "--inventory", str(inventory_table),
        "--lat", "-55.0", "--lon", "-140.0",
    ])
    assert code == 1
    assert "no data" in capsys.readouterr().out


def test_render_writes_ppm(inventory_table, tmp_path):
    out = tmp_path / "map.ppm"
    code = main([
        "render", "--inventory", str(inventory_table),
        "--feature", "count", "--out", str(out),
        "--width", "90", "--height", "45",
    ])
    assert code == 0
    assert out.read_bytes().startswith(b"P6\n90 45\n255\n")


def test_windowed_build_creates_compacted_table(archive, tmp_path, capsys):
    out = tmp_path / "windowed.sst"
    code = main([
        "build", "--archive", str(archive), "--out", str(out),
        "--windows", "2",
    ])
    assert code == 0
    assert out.exists()
    assert not list(tmp_path.glob("windowed.sst.w*"))
    assert "(2 windows)" in capsys.readouterr().out


def test_compact_merges_tables(inventory_table, tmp_path, capsys):
    out = tmp_path / "compacted.sst"
    code = main([
        "compact", "--inputs", str(inventory_table), "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    assert "groups" in capsys.readouterr().out
    from repro.inventory import open_inventory

    with open_inventory(inventory_table) as a, open_inventory(out) as b:
        assert a.entry_count == b.entry_count


def test_compact_onto_input_is_a_clean_error(inventory_table, capsys):
    code = main([
        "compact", "--inputs", str(inventory_table),
        "--out", str(inventory_table),
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_query_with_route_breakdown(inventory_table, capsys):
    from repro.hexgrid import cell_to_latlng
    from repro.inventory import open_inventory
    from repro.inventory.keys import GroupingSet

    with open_inventory(inventory_table) as reader:
        key = next(
            key for key, _ in reader.scan()
            if key.grouping_set is GroupingSet.CELL_OD_TYPE
        )
    lat, lon = cell_to_latlng(key.cell)
    code = main([
        "query", "--inventory", str(inventory_table),
        "--lat", str(lat), "--lon", str(lon),
        "--vessel-type", key.vessel_type,
        "--origin", key.origin, "--destination", key.destination,
    ])
    assert code == 0
    assert "records:" in capsys.readouterr().out


def test_missing_archive_is_a_clean_error(tmp_path, capsys):
    code = main([
        "build", "--archive", str(tmp_path / "nope.csv"),
        "--out", str(tmp_path / "x.sst"),
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_fsck_clean_table(inventory_table, capsys):
    code = main(["fsck", "--inventory", str(inventory_table)])
    out = capsys.readouterr().out
    assert code == 0
    assert "ok" in out
    assert "format v3" in out


def test_fsck_corrupt_table_salvages(inventory_table, tmp_path, capsys):
    damaged = tmp_path / "damaged.sst"
    payload = bytearray(inventory_table.read_bytes())
    for offset in range(40, 80):
        payload[offset] ^= 0xFF
    damaged.write_bytes(bytes(payload))
    salvaged = tmp_path / "salvaged.sst"
    code = main([
        "fsck", "--inventory", str(damaged), "--salvage", str(salvaged),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "CORRUPT" in out
    assert "salvaged" in out
    # The salvaged table must itself pass fsck.
    assert main(["fsck", "--inventory", str(salvaged)]) == 0


def test_build_resume_flag(archive, tmp_path, capsys):
    out_table = tmp_path / "resumed.sst"
    code = main([
        "build", "--archive", str(archive), "--out", str(out_table),
        "--windows", "2", "--resume",
    ])
    assert code == 0
    assert out_table.exists()
    assert not (tmp_path / "resumed.sst.manifest").exists()


# -- tracing (repro build --trace / repro trace) ---------------------------------

#: The paper's Fig. 3 funnel: every stage of a build must appear in a
#: recorded trace, by exactly these span names.
FIG3_FUNNEL_SPANS = {
    "pipeline.clean",
    "pipeline.enrich",
    "pipeline.trips",
    "pipeline.project",
    "pipeline.aggregate",
}


@pytest.fixture(scope="module")
def build_trace(archive):
    """A fresh traced build: (trace path, table path)."""
    directory = archive.parent
    table = directory / "traced.sst"
    trace_path = directory / "build.trace"
    code = main([
        "build", "--archive", str(archive), "--out", str(table),
        "--windows", "2", "--trace", str(trace_path),
    ])
    assert code == 0
    return trace_path, table


def test_build_trace_records_the_fig3_funnel(build_trace):
    import json

    trace_path, _ = build_trace
    names = {
        json.loads(line)["name"]
        for line in trace_path.read_text().splitlines() if line.strip()
    }
    assert FIG3_FUNNEL_SPANS <= names, (
        f"missing funnel stages: {FIG3_FUNNEL_SPANS - names}"
    )
    # the build skeleton is traced too
    assert {"pipeline.build", "pipeline.window", "pipeline.compact"} <= names
    assert "engine.partition" in names


def test_trace_command_renders_the_per_stage_profile(build_trace, capsys):
    trace_path, _ = build_trace
    code = main(["trace", "--trace", str(trace_path)])
    out = capsys.readouterr().out
    assert code == 0
    lines = out.splitlines()
    assert lines[0].split()[:3] == ["span", "count", "errors"]
    rendered_spans = {line.split()[0] for line in lines[1:] if line.strip()}
    assert FIG3_FUNNEL_SPANS <= rendered_spans, (
        f"profile is missing funnel stages: {FIG3_FUNNEL_SPANS - rendered_spans}"
    )
    for line in lines[1:]:
        if line.split() and line.split()[0] in FIG3_FUNNEL_SPANS:
            assert "ms" in line and "%" in line  # timed, with a share


def test_trace_command_limit_truncates(build_trace, capsys):
    trace_path, _ = build_trace
    code = main(["trace", "--trace", str(trace_path), "--limit", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "more span names" in out


def test_trace_command_empty_file_fails_cleanly(tmp_path, capsys):
    empty = tmp_path / "empty.trace"
    empty.write_text("")
    code = main(["trace", "--trace", str(empty)])
    assert code == 1
    assert "no spans recorded" in capsys.readouterr().out


def test_build_leaves_tracing_disabled(build_trace):
    from repro.obs import trace as obs

    assert not obs.enabled()


def test_serve_sinks_and_config_plumbing(tmp_path):
    """The serve CLI flags map onto sinks and ServerConfig correctly."""
    import argparse

    from repro.cli import _serve_config, _serve_sinks
    from repro.obs import JsonlSink, RingBufferSink

    args = argparse.Namespace(
        host="127.0.0.1", port=0, max_concurrency=4,
        request_timeout=5.0, idle_timeout=10.0,
        trace=tmp_path / "s.trace", trace_ring=32,
        slow_request_ms=250.0,
    )
    sinks = _serve_sinks(args)
    assert [type(s) for s in sinks] == [JsonlSink, RingBufferSink]
    assert sinks[1].capacity == 32
    config = _serve_config(args)
    assert config.slow_request_s == pytest.approx(0.25)
    args.trace = None
    args.trace_ring = 0
    args.slow_request_ms = None
    assert _serve_sinks(args) == []
    assert _serve_config(args).slow_request_s is None


def test_serve_requires_exactly_one_backend(tmp_path, capsys):
    assert main(["serve"]) == 2
    assert "exactly one of --inventory or --live" in capsys.readouterr().err
    code = main([
        "serve", "--inventory", str(tmp_path / "t.sst"),
        "--live", str(tmp_path / "live"),
    ])
    assert code == 2
    assert "exactly one" in capsys.readouterr().err


def test_serve_backend_live_plumbing(tmp_path):
    """--live flags reach the LiveInventory constructor."""
    import argparse

    from repro.cli import _serve_backend
    from repro.inventory.live import LiveInventory

    args = argparse.Namespace(
        inventory=None, live=tmp_path / "live", resolution=5,
        sync_every=4, sync_interval=0.5, flush_records=123,
        tier_fanout=3, maintenance="inline", max_frozen=2,
        backpressure_wait=0.5, cache_blocks=64,
    )
    with _serve_backend(args) as backend:
        assert isinstance(backend, LiveInventory)
        assert backend.resolution == 5
        assert backend.flush_records == 123
        assert backend.policy.fanout == 3
        assert backend.maintenance.background is False
        assert backend.maintenance.max_frozen_memtables == 2
        assert backend.maintenance.backpressure_wait_s == pytest.approx(0.5)


def test_fsck_requires_a_target(capsys):
    assert main(["fsck"]) == 2
    assert "needs --inventory and/or --wal" in capsys.readouterr().err


@pytest.fixture()
def live_dir(tmp_path):
    """A live directory with a flushed table and a fresh WAL tail."""
    from repro.inventory.live import LiveInventory
    from repro.inventory.memtable import IngestRecord

    directory = tmp_path / "live"
    with LiveInventory(directory, resolution=6) as inventory:
        inventory.ingest([
            IngestRecord(
                mmsi=563_000_000 + i, ts=1_700_000_000.0 + i,
                lat=1.3, lon=103.8, sog=9.0, cog=45.0,
            )
            for i in range(6)
        ])
        inventory.flush()
        inventory.ingest([
            IngestRecord(
                mmsi=563_000_100 + i, ts=1_700_000_100.0 + i,
                lat=1.3, lon=103.8, sog=9.0, cog=45.0,
            )
            for i in range(2)
        ])
    return directory


def test_fsck_wal_clean(live_dir, capsys):
    assert main(["fsck", "--wal", str(live_dir)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "table tab-00000001.sst: ok" in out


def test_fsck_wal_torn_tail_exits_zero(live_dir, capsys):
    from repro.inventory.wal import list_segments

    _, tail = list_segments(live_dir)[-1]
    with open(tail, "ab") as handle:
        handle.write(b"\x00\x00")
    assert main(["fsck", "--wal", str(live_dir)]) == 0
    assert "recoverable torn tail" in capsys.readouterr().out


def test_fsck_wal_hard_corruption_exits_one(live_dir, capsys):
    from repro.inventory.wal import list_segments

    _, tail = list_segments(live_dir)[-1]
    data = bytearray(tail.read_bytes())
    # Flip a payload bit of the FIRST of the tail's two entries: a CRC
    # failure with a valid entry after it is interior damage, not a tear.
    data[9 + 8] ^= 0x40
    tail.write_bytes(bytes(data))
    assert main(["fsck", "--wal", str(live_dir)]) == 1
    assert "HARD WAL corruption" in capsys.readouterr().out


def test_fsck_wal_corrupt_manifest_table_exits_one(live_dir, capsys):
    table = live_dir / "tab-00000001.sst"
    data = bytearray(table.read_bytes())
    data[len(data) // 2] ^= 0x40
    table.write_bytes(bytes(data))
    assert main(["fsck", "--wal", str(live_dir)]) == 1
    out = capsys.readouterr().out
    assert "table tab-00000001.sst: CORRUPT" in out
    assert "salvage" in out


def test_fsck_wal_orphan_staged_table_exits_three(live_dir, capsys):
    """A table the manifest never committed is an orphan (exit 3), not
    corruption (exit 1): the crash between table write and manifest
    commit leaves it behind by design, and the WAL covers its records."""
    orphan = live_dir / "tab-00000099.sst"
    orphan.write_bytes((live_dir / "tab-00000001.sst").read_bytes())
    (live_dir / "tab-00000042.sst.tmp").write_bytes(b"partial staging write")
    assert main(["fsck", "--wal", str(live_dir)]) == 3
    out = capsys.readouterr().out
    assert "orphan tab-00000099.sst" in out
    assert "orphan tab-00000042.sst.tmp" in out
    assert "safe to delete" in out
    # The committed table is still reported healthy alongside.
    assert "table tab-00000001.sst: ok" in out


def test_fsck_corruption_dominates_orphans(live_dir, inventory_table, capsys):
    """--inventory corruption (1) must not be masked by a benign
    --wal orphan report (3)."""
    damaged = live_dir.parent / "damaged.sst"
    data = bytearray(inventory_table.read_bytes())
    data[len(data) // 2] ^= 0x40
    damaged.write_bytes(bytes(data))
    (live_dir / "tab-00000099.sst").write_bytes(b"orphan")
    code = main([
        "fsck", "--inventory", str(damaged), "--wal", str(live_dir),
    ])
    assert code == 1
    assert "orphan tab-00000099.sst" in capsys.readouterr().out


def test_feed_records_from_csv_archive(archive):
    """The ingest feed reader: NOAA CSV rows become wire records, the
    fleet sidecar supplies vessel_type, heading 511 travels as absent."""
    import argparse

    from repro.ais.messages import HEADING_NOT_AVAILABLE
    from repro.cli import _feed_records, _read_fleet
    from repro.inventory.memtable import IngestRecord

    sidecar = archive.with_suffix(".fleet.csv")
    segments = {
        vessel.mmsi: vessel.segment.value for vessel in _read_fleet(sidecar)
    }
    args = argparse.Namespace(feed=archive, nmea=False)
    records = list(_feed_records(args, segments))
    assert records
    for record in records:
        assert record.get("heading") != HEADING_NOT_AVAILABLE
        assert record["vessel_type"] == segments[record["mmsi"]]
        IngestRecord.from_wire(record)  # every record is ingestable
