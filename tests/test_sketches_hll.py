"""Tests for HyperLogLog (sparse and dense modes)."""

import random

import pytest

from repro.sketches import HyperLogLog


def test_precision_validation():
    with pytest.raises(ValueError):
        HyperLogLog(3)
    with pytest.raises(ValueError):
        HyperLogLog(17)


def test_empty_cardinality_is_zero():
    assert HyperLogLog().cardinality() == 0


def test_small_cardinalities_near_exact():
    sketch = HyperLogLog(10)
    for i in range(25):
        sketch.update(f"vessel-{i}")
    assert sketch.is_sparse
    assert abs(sketch.cardinality() - 25) <= 2


def test_duplicates_do_not_inflate():
    sketch = HyperLogLog(10)
    for _ in range(10000):
        sketch.update("same-ship")
    assert sketch.cardinality() == 1


@pytest.mark.parametrize("n", [100, 1000, 20000])
def test_relative_error_within_bounds(n):
    sketch = HyperLogLog(10)
    for i in range(n):
        sketch.update(i)
    estimate = sketch.cardinality()
    assert abs(estimate - n) / n < 0.12  # 3.3% stderr → 12% is > 3 sigma


def test_mixed_value_types():
    sketch = HyperLogLog(10)
    sketch.update(1)
    sketch.update("1")
    sketch.update(1.0)
    sketch.update((1, "a"))
    sketch.update(b"1")
    assert sketch.cardinality() == 5


def test_unhashable_type_raises():
    with pytest.raises(TypeError):
        HyperLogLog().update([1, 2, 3])


def test_densification_threshold():
    sketch = HyperLogLog(8)  # m=256, sparse limit 32
    i = 0
    while sketch.is_sparse:
        sketch.update(i)
        i += 1
        assert i < 10000
    estimate = sketch.cardinality()
    assert abs(estimate - i) / i < 0.3


def test_merge_disjoint_sets():
    a = HyperLogLog(10)
    b = HyperLogLog(10)
    for i in range(3000):
        a.update(f"a{i}")
        b.update(f"b{i}")
    a.merge(b)
    assert abs(a.cardinality() - 6000) / 6000 < 0.12


def test_merge_is_idempotent_for_same_data():
    a = HyperLogLog(10)
    b = HyperLogLog(10)
    for i in range(2000):
        a.update(i)
        b.update(i)
    before = a.cardinality()
    a.merge(b)
    assert a.cardinality() == before


def test_merge_sparse_into_dense_and_reverse():
    dense = HyperLogLog(8)
    for i in range(5000):
        dense.update(i)
    sparse = HyperLogLog(8)
    for i in range(4990, 5010):
        sparse.update(i)
    dense.merge(sparse)
    assert abs(dense.cardinality() - 5010) / 5010 < 0.3

    sparse2 = HyperLogLog(8)
    sparse2.update("x")
    sparse2.merge(dense)
    assert not sparse2.is_sparse
    assert abs(sparse2.cardinality() - 5011) / 5011 < 0.3


def test_merge_rejects_mixed_precision():
    with pytest.raises(ValueError):
        HyperLogLog(10).merge(HyperLogLog(11))


def test_dict_roundtrip_sparse_and_dense():
    sparse = HyperLogLog(10)
    for i in range(20):
        sparse.update(i)
    restored = HyperLogLog.from_dict(sparse.to_dict())
    assert restored.cardinality() == sparse.cardinality()

    dense = HyperLogLog(8)
    for i in range(10000):
        dense.update(i)
    restored = HyperLogLog.from_dict(dense.to_dict())
    assert restored.cardinality() == dense.cardinality()


def test_estimates_are_deterministic_across_instances():
    a = HyperLogLog(10)
    b = HyperLogLog(10)
    values = [random.Random(1).randrange(10**9) for _ in range(1000)]
    for value in values:
        a.update(value)
    for value in reversed(values):
        b.update(value)
    assert a.cardinality() == b.cardinality()
