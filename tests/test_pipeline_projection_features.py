"""Tests for spatial projection, transitions and feature fan-out."""

import pytest

from repro.hexgrid import are_neighbor_cells, cell_to_latlng, latlng_to_cell
from repro.inventory.keys import GroupingSet, GroupKey
from repro.inventory.summary import SummaryConfig
from repro.pipeline.features import fan_out, make_create, make_update, merge_summaries
from repro.pipeline.projection import project_trip
from repro.pipeline.records import TripRecord


def _trip_record(ts, lat, lon, mmsi=235000001):
    return TripRecord(
        mmsi=mmsi, ts=ts, lat=lat, lon=lon, sog=12.0, cog=90.0, heading=89,
        status=0, vessel_type="container", grt=50_000,
        trip_id=f"{mmsi}-0001", origin="CNSHA", destination="NLRTM",
        depart_ts=0.0, arrive_ts=36_000.0,
    )


def _eastbound_trip(n=10, step_deg=0.12):
    return [_trip_record(i * 600.0, 1.0, 100.0 + i * step_deg) for i in range(n)]


class TestProjection:
    def test_cells_match_positions(self):
        records = _eastbound_trip()
        projected = project_trip(records, resolution=6)
        assert len(projected) == len(records)
        for record, cell_record in zip(records, projected):
            assert cell_record.cell == latlng_to_cell(record.lat, record.lon, 6)

    def test_next_cell_is_next_different(self):
        records = _eastbound_trip(step_deg=0.001)  # many reports per cell
        projected = project_trip(records, resolution=6)
        for cell_record in projected:
            if cell_record.next_cell is not None:
                assert cell_record.next_cell != cell_record.cell

    def test_last_record_has_no_next(self):
        projected = project_trip(_eastbound_trip(), resolution=6)
        assert projected[-1].next_cell is None

    def test_trip_metadata_propagates(self):
        projected = project_trip(_eastbound_trip(), resolution=6)
        for cell_record in projected:
            assert cell_record.origin == "CNSHA"
            assert cell_record.destination == "NLRTM"
            assert cell_record.eto_s >= 0.0
            assert cell_record.ata_s >= 0.0

    def test_densify_makes_transitions_adjacent(self):
        # Coarse reporting: consecutive cells far apart at resolution 7.
        records = _eastbound_trip(n=5, step_deg=0.5)
        sparse = project_trip(records, resolution=7, densify=False)
        jumps = [
            (r.cell, r.next_cell) for r in sparse if r.next_cell is not None
        ]
        assert any(not are_neighbor_cells(a, b) for a, b in jumps)

        dense = project_trip(records, resolution=7, densify=True)
        for record in dense:
            if record.next_cell is not None:
                assert are_neighbor_cells(record.cell, record.next_cell)
        assert len(dense) > len(sparse)

    def test_empty_trip(self):
        assert project_trip([], resolution=6) == []


class TestFanOut:
    def test_record_with_trip_feeds_three_sets(self):
        projected = project_trip(_eastbound_trip(), resolution=6)
        keys = [GroupKey.from_tuple(k) for k, _ in fan_out(projected[0])]
        sets = {key.grouping_set for key in keys}
        assert sets == {
            GroupingSet.CELL, GroupingSet.CELL_TYPE, GroupingSet.CELL_OD_TYPE
        }
        assert all(key.cell == projected[0].cell for key in keys)

    def test_fan_out_key_values(self):
        projected = project_trip(_eastbound_trip(), resolution=6)
        keys = [GroupKey.from_tuple(k) for k, _ in fan_out(projected[0])]
        od_key = next(
            key for key in keys if key.grouping_set is GroupingSet.CELL_OD_TYPE
        )
        assert od_key.vessel_type == "container"
        assert od_key.origin == "CNSHA"
        assert od_key.destination == "NLRTM"


class TestSummaryAggregation:
    def test_create_update_merge_roundtrip(self):
        config = SummaryConfig()
        create = make_create(config)
        update = make_update(config)
        projected = project_trip(_eastbound_trip(), resolution=2)
        # All records in one res-2 cell: aggregate them two ways.
        single = create(projected[0])
        for record in projected[1:]:
            single = update(single, record)

        left = create(projected[0])
        for record in projected[1:5]:
            left = update(left, record)
        right = create(projected[5])
        for record in projected[6:]:
            right = update(right, record)
        merged = merge_summaries(left, right)

        assert merged.records == single.records == len(projected)
        assert merged.speed.mean == pytest.approx(single.speed.mean)
        assert merged.ships.cardinality() == single.ships.cardinality() == 1
        assert merged.trips.cardinality() == 1
        assert merged.destinations.top(1)[0].value == "NLRTM"

    def test_transitions_recorded(self):
        config = SummaryConfig()
        create = make_create(config)
        update = make_update(config)
        projected = project_trip(_eastbound_trip(), resolution=6)
        by_cell: dict = {}
        for record in projected:
            if record.cell in by_cell:
                by_cell[record.cell] = update(by_cell[record.cell], record)
            else:
                by_cell[record.cell] = create(record)
        transitions = [
            summary.top_transitions() for summary in by_cell.values()
        ]
        assert any(transitions)
        # Eastbound: every transition's target center is east of the source.
        for cell, summary in by_cell.items():
            for next_cell, _count in summary.top_transitions():
                lon_src = cell_to_latlng(cell)[1]
                lon_dst = cell_to_latlng(next_cell)[1]
                assert lon_dst > lon_src
