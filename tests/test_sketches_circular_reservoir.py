"""Tests for CircularMoments and ReservoirSample."""

import random

import pytest

from repro.sketches import CircularMoments, ReservoirSample


class TestCircularMoments:
    def test_empty(self):
        sketch = CircularMoments()
        assert sketch.mean_deg is None
        assert sketch.std_deg is None
        assert sketch.resultant_length == 0.0

    def test_wraps_north(self):
        sketch = CircularMoments()
        sketch.update(350.0)
        sketch.update(10.0)
        assert sketch.mean_deg == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_resultant(self):
        sketch = CircularMoments()
        for _ in range(100):
            sketch.update(90.0)
        assert sketch.resultant_length == pytest.approx(1.0)
        assert sketch.std_deg == pytest.approx(0.0, abs=1e-3)

    def test_spread_increases_std(self):
        narrow = CircularMoments()
        wide = CircularMoments()
        for angle in (-5.0, 5.0):
            narrow.update(angle)
        for angle in (-60.0, 60.0):
            wide.update(angle)
        assert wide.std_deg > narrow.std_deg

    def test_cancelling_directions_have_no_mean(self):
        sketch = CircularMoments()
        sketch.update(0.0)
        sketch.update(180.0)
        assert sketch.mean_deg is None

    def test_merge_matches_whole(self):
        rng = random.Random(4)
        angles = [rng.gauss(45.0, 20.0) % 360.0 for _ in range(500)]
        whole = CircularMoments()
        left = CircularMoments()
        right = CircularMoments()
        for angle in angles:
            whole.update(angle)
        for angle in angles[:200]:
            left.update(angle)
        for angle in angles[200:]:
            right.update(angle)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean_deg == pytest.approx(whole.mean_deg, abs=1e-9)
        assert left.std_deg == pytest.approx(whole.std_deg, abs=1e-9)

    def test_dict_roundtrip(self):
        sketch = CircularMoments()
        for angle in (10.0, 20.0, 30.0):
            sketch.update(angle)
        restored = CircularMoments.from_dict(sketch.to_dict())
        assert restored.mean_deg == pytest.approx(sketch.mean_deg)
        assert restored.count == sketch.count


class TestReservoirSample:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_below_capacity_keeps_everything(self):
        sample = ReservoirSample(100, seed=1)
        for i in range(50):
            sample.update(i)
        assert sorted(sample.items) == list(range(50))
        assert sample.seen == 50

    def test_fixed_size_above_capacity(self):
        sample = ReservoirSample(64, seed=2)
        for i in range(10000):
            sample.update(i)
        assert len(sample.items) == 64
        assert sample.seen == 10000

    def test_sampling_is_roughly_uniform(self):
        hits = [0] * 10
        for seed in range(300):
            sample = ReservoirSample(10, seed=seed)
            for i in range(100):
                sample.update(i)
            for item in sample.items:
                hits[item // 10] += 1
        total = sum(hits)
        for bucket in hits:
            assert 0.05 < bucket / total < 0.16  # expect ≈0.10 each

    def test_merge_preserves_size_and_counts(self):
        a = ReservoirSample(32, seed=3)
        b = ReservoirSample(32, seed=4)
        for i in range(1000):
            a.update(("a", i))
        for i in range(3000):
            b.update(("b", i))
        a.merge(b)
        assert a.seen == 4000
        assert len(a.items) == 32
        b_share = sum(1 for item in a.items if item[0] == "b") / 32
        assert 0.4 < b_share < 1.0  # b's stream is 3× larger

    def test_merge_into_empty(self):
        empty = ReservoirSample(8, seed=5)
        full = ReservoirSample(8, seed=6)
        for i in range(20):
            full.update(i)
        empty.merge(full)
        assert empty.seen == 20
        assert len(empty.items) == 8

    def test_dict_roundtrip(self):
        sample = ReservoirSample(16, seed=7)
        for i in range(100):
            sample.update(i)
        restored = ReservoirSample.from_dict(sample.to_dict())
        assert restored.seen == sample.seen
        assert restored.items == sample.items
