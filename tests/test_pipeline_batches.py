"""Tests for the columnar batch layer (repro.pipeline.batches + kernels).

Three layers of guarantees:

- **round-trip** — ``from_records``/``to_records`` are exact inverses for
  every batch class over hypothesis-generated records (the lossless
  contract the vectorized kernels rely on);
- **batch sketch operations** — ``update_many`` / ``update_components`` /
  ``add_bin_counts`` / ``update_hashed`` are bit-identical to the scalar
  update loops they replace, and the t-digest's deferred merge keeps its
  exact invariants (count/min/max) while staying query-consistent;
- **end-to-end equivalence** — the batched funnel produces byte-identical
  summaries and SSTables to the scalar funnel on the seeded world.  This
  is the tentpole property: ``vectorized=True`` is an optimisation, never
  a reinterpretation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import PipelineConfig, build_inventory
from repro.engine import Engine, EngineConfig
from repro.inventory import write_inventory
from repro.inventory.codec import encode
from repro.pipeline.batches import (
    NULL_INT,
    CellBatch,
    CleanBatch,
    RecordBatch,
    TripBatch,
)
from repro.pipeline.records import CellRecord, CleanRecord, TripRecord
from repro.sketches import (
    CircularMoments,
    DirectionHistogram,
    HyperLogLog,
    MomentsSketch,
    TDigest,
)
from repro.sketches.hyperloglog import hash64


# -- record strategies -----------------------------------------------------------

FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)
HEADING = st.one_of(st.none(), st.integers(min_value=0, max_value=510))
NAME = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=8
)

CLEAN_RECORDS = st.builds(
    CleanRecord,
    mmsi=st.integers(min_value=0, max_value=999_999_999),
    ts=FINITE,
    lat=FINITE,
    lon=FINITE,
    sog=FINITE,
    cog=FINITE,
    heading=HEADING,
    status=st.integers(min_value=0, max_value=15),
    vessel_type=NAME,
    grt=st.integers(min_value=0, max_value=500_000),
)

TRIP_RECORDS = st.builds(
    TripRecord,
    mmsi=st.integers(min_value=0, max_value=999_999_999),
    ts=FINITE,
    lat=FINITE,
    lon=FINITE,
    sog=FINITE,
    cog=FINITE,
    heading=HEADING,
    status=st.integers(min_value=0, max_value=15),
    vessel_type=NAME,
    grt=st.integers(min_value=0, max_value=500_000),
    trip_id=NAME,
    origin=NAME,
    destination=NAME,
    depart_ts=FINITE,
    arrive_ts=FINITE,
)

CELL_RECORDS = st.builds(
    CellRecord,
    mmsi=st.integers(min_value=0, max_value=999_999_999),
    ts=FINITE,
    sog=FINITE,
    cog=FINITE,
    heading=HEADING,
    vessel_type=NAME,
    trip_id=st.one_of(st.none(), NAME),
    origin=st.one_of(st.none(), NAME),
    destination=st.one_of(st.none(), NAME),
    eto_s=FINITE,
    ata_s=FINITE,
    cell=st.integers(min_value=0, max_value=2**52),
    next_cell=st.one_of(st.none(), st.integers(min_value=0, max_value=2**52)),
    extras=st.tuples(),
)


class TestRoundTrip:
    """from_records -> to_records is lossless for every batch shape."""

    @settings(max_examples=60)
    @given(records=st.lists(CLEAN_RECORDS, max_size=20))
    def test_clean_batch(self, records):
        batch = CleanBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records

    @settings(max_examples=60)
    @given(records=st.lists(TRIP_RECORDS, max_size=20))
    def test_trip_batch(self, records):
        batch = TripBatch.from_records(records)
        assert batch.to_records() == records

    @settings(max_examples=60)
    @given(records=st.lists(CELL_RECORDS, max_size=20))
    def test_cell_batch(self, records):
        batch = CellBatch.from_records(records)
        assert batch.to_records() == records

    @settings(max_examples=30)
    @given(records=st.lists(CLEAN_RECORDS, min_size=3, max_size=12),
           data=st.data())
    def test_slice_matches_record_slice(self, records, data):
        start = data.draw(st.integers(0, len(records)))
        stop = data.draw(st.integers(start, len(records)))
        batch = CleanBatch.from_records(records)
        assert batch.slice(start, stop).to_records() == records[start:stop]


class TestValidation:
    def test_negative_optional_int_rejected_not_aliased(self):
        record = CleanRecord(
            mmsi=1, ts=0.0, lat=0.0, lon=0.0, sog=0.0, cog=0.0,
            heading=NULL_INT, status=0, vessel_type="cargo", grt=100,
        )
        with pytest.raises(ValueError, match="negative"):
            CleanBatch.from_records([record])

    def test_mismatched_column_lengths_rejected(self):
        columns = {name: [0] * 2 for name, _ in CleanBatch.SPEC}
        columns["ts"] = [0.0]
        with pytest.raises(ValueError, match="rows"):
            CleanBatch(**columns)

    def test_unknown_column_rejected(self):
        columns = {name: [] for name, _ in CleanBatch.SPEC}
        columns["bogus"] = []
        with pytest.raises(ValueError, match="unknown"):
            CleanBatch(**columns)

    def test_column_and_memoryview_access(self):
        record = CleanRecord(
            mmsi=7, ts=1.5, lat=2.0, lon=3.0, sog=4.0, cog=5.0,
            heading=None, status=0, vessel_type="cargo", grt=100,
        )
        batch = CleanBatch.from_records([record])
        assert list(batch.column("ts")) == [1.5]
        view = batch.memoryview_of("mmsi")
        assert view[0] == 7
        assert batch.column("heading")[0] == NULL_INT
        with pytest.raises(KeyError):
            batch.column("nope")
        with pytest.raises(TypeError):
            batch.memoryview_of("vessel_type")

    def test_empty_batch(self):
        batch = CleanBatch.from_records([])
        assert len(batch) == 0
        assert batch.to_records() == []


class TestMapBatches:
    def test_map_batches_transforms_batchwise(self):
        records = [
            CleanRecord(
                mmsi=i, ts=float(i), lat=0.0, lon=0.0, sog=float(i),
                cog=0.0, heading=None, status=0, vessel_type="cargo", grt=1,
            )
            for i in range(10)
        ]
        batches = [
            CleanBatch.from_records(records[:5]),
            CleanBatch.from_records(records[5:]),
        ]

        def double_sog(batch: RecordBatch) -> RecordBatch:
            columns = {name: batch.column(name) for name, _ in batch.SPEC}
            columns["sog"] = type(columns["sog"])(
                "d", (v * 2 for v in columns["sog"])
            )
            return type(batch)(**columns)

        with Engine(EngineConfig(num_partitions=2)) as eng:
            out = eng.parallelize(batches, num_partitions=2).map_batches(
                double_sog
            ).collect()
        rows = [r for batch in out for r in batch.to_records()]
        assert [r.sog for r in rows] == [float(i) * 2 for i in range(10)]
        assert [r.mmsi for r in rows] == list(range(10))

    def test_map_batches_counts_rows_not_batches(self):
        batches = [
            CleanBatch.from_records(
                [
                    CleanRecord(
                        mmsi=i, ts=0.0, lat=0.0, lon=0.0, sog=0.0, cog=0.0,
                        heading=None, status=0, vessel_type="t", grt=1,
                    )
                    for i in range(n)
                ]
            )
            for n in (3, 4)
        ]
        with Engine(
            EngineConfig(num_partitions=2, collect_metrics=True)
        ) as eng:
            ds = eng.parallelize(batches, num_partitions=2).map_batches(
                lambda b: b, label="identity"
            )
            ds.collect()
            stage = next(
                s for s in eng.metrics.stages if s.label == "identity"
            )
        # Row accounting sums the rows *inside* the batches (3 + 4), not
        # the two batch objects — funnel stage counts stay comparable
        # whichever representation flows through.
        assert stage.rows_in == 7
        assert stage.rows_out == 7
        assert stage.partitions == 2


class TestSketchBatchOps:
    """Each batch operation is bit-identical to its scalar update loop."""

    @settings(max_examples=40)
    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        max_size=300,
    ))
    def test_tdigest_update_many(self, values):
        scalar, batched = TDigest(compression=50), TDigest(compression=50)
        for v in values:
            scalar.update(v)
        batched.update_many(values)
        assert batched.to_dict() == scalar.to_dict()

    @settings(max_examples=40)
    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        max_size=200,
    ))
    def test_moments_update_many(self, values):
        scalar, batched = MomentsSketch(), MomentsSketch()
        for v in values:
            scalar.update(v)
        batched.update_many(values)
        assert batched.to_dict() == scalar.to_dict()

    @settings(max_examples=40)
    @given(angles=st.lists(
        st.floats(min_value=-720.0, max_value=720.0, allow_nan=False),
        max_size=100,
    ))
    def test_circular_update_components(self, angles):
        import math

        scalar, batched = CircularMoments(), CircularMoments()
        for a in angles:
            scalar.update(a)
        cos_values = [math.cos(math.radians(a)) for a in angles]
        sin_values = [math.sin(math.radians(a)) for a in angles]
        batched.update_components(cos_values, sin_values)
        assert (batched.sum_cos, batched.sum_sin, batched.count) == (
            scalar.sum_cos, scalar.sum_sin, scalar.count,
        )

    @settings(max_examples=40)
    @given(angles=st.lists(
        st.floats(min_value=0.0, max_value=359.9, allow_nan=False),
        max_size=100,
    ))
    def test_histogram_add_bin_counts(self, angles):
        scalar, batched = DirectionHistogram(), DirectionHistogram()
        buckets: dict[int, int] = {}
        for a in angles:
            scalar.update(a)
            index = batched.bin_index(a)
            buckets[index] = buckets.get(index, 0) + 1
        batched.add_bin_counts(buckets.items())
        assert batched.counts == scalar.counts
        assert batched.total == scalar.total

    def test_histogram_bad_bin_index_rejected(self):
        hist = DirectionHistogram()
        with pytest.raises(ValueError):
            hist.add_bin_counts([(hist.num_bins, 1)])

    @settings(max_examples=40)
    @given(values=st.lists(
        st.one_of(
            st.integers(min_value=0, max_value=10**12),
            st.text(max_size=12),
        ),
        max_size=200,
    ))
    def test_hll_update_hashed(self, values):
        scalar, batched = HyperLogLog(), HyperLogLog()
        for v in values:
            scalar.update(v)
            batched.update_hashed(hash64(v))
        assert batched.to_dict() == scalar.to_dict()

    @settings(max_examples=30)
    @given(
        left=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                allow_nan=False), max_size=120),
        right=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                 allow_nan=False), max_size=120),
    )
    def test_tdigest_deferred_merge_invariants(self, left, right):
        a, b = TDigest(compression=50), TDigest(compression=50)
        a.update_many(left)
        b.update_many(right)
        a.merge(b)
        combined = left + right
        assert a.count == pytest.approx(len(combined))
        if combined:
            assert a.min_value == min(combined)
            assert a.max_value == max(combined)
            # Queries force compression; the answer must be a plausible
            # quantile regardless of how many merges were deferred.
            assert min(combined) <= a.quantile(0.5) <= max(combined)
            # And serialisation never leaks buffered points.
            state = a.to_dict()
            assert sum(state["weights"]) == pytest.approx(len(combined))

    def test_tdigest_merge_defers_compression_until_needed(self):
        a, b = TDigest(compression=100), TDigest(compression=100)
        a.update_many([float(i) for i in range(10)])
        b.update_many([float(i) for i in range(10, 20)])
        a.merge(b)
        # Small merge: nothing forced a sweep yet.
        assert a._buffer
        a.quantile(0.5)
        assert not a._buffer


# -- scalar vs batched funnel equivalence ----------------------------------------


@pytest.fixture(scope="module")
def scalar_result(small_world):
    """The same world built with the scalar (reference) funnel."""
    return build_inventory(
        small_world.positions,
        small_world.fleet,
        small_world.ports,
        PipelineConfig(vectorized=False),
    )


class TestScalarBatchedEquivalence:
    """The tentpole contract: vectorized=True changes nothing but speed."""

    def test_funnel_counters_identical(self, small_result, scalar_result):
        assert small_result.funnel == scalar_result.funnel

    def test_every_summary_byte_identical(self, small_result, scalar_result):
        batched = {
            key.to_tuple(): summary
            for key, summary in small_result.inventory.items()
        }
        scalar = {
            key.to_tuple(): summary
            for key, summary in scalar_result.inventory.items()
        }
        assert set(batched) == set(scalar)
        mismatches = [
            key
            for key in batched
            if encode(batched[key].to_dict()) != encode(scalar[key].to_dict())
        ]
        assert mismatches == []

    def test_sstables_byte_identical(
        self, small_result, scalar_result, tmp_path
    ):
        batched_path = tmp_path / "batched.sst"
        scalar_path = tmp_path / "scalar.sst"
        write_inventory(small_result.inventory, batched_path)
        write_inventory(scalar_result.inventory, scalar_path)
        assert batched_path.read_bytes() == scalar_path.read_bytes()
