"""Router fault matrix: failover, unavailability, recovery, rebalance.

The distributed failure modes the scatter-gather tier must convert into
either a correct answer (failover to the replica) or a *typed* error on
a live connection (``shard_unavailable``) — never a hang past the
deadline, never a dropped socket, never a half-applied placement:

- primary dies mid-traffic → replica answers, ``router.failover`` counts;
- primary **and** replica die → ``shard_unavailable`` (with the shard's
  name in details) comes back fast on a connection that stays usable;
- one shard of a scatter dies → the scatter fails typed, other shards
  keep answering point lookups;
- a dead endpoint trips to DOWN after the failure threshold and recovers
  only through a health probe (``router.shard_down`` / ``router.shard_up``);
- a rebalance under live queries is snapshot-consistent: every response
  during the swap equals the single-node answer.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time

import pytest

from repro.hexgrid import cell_to_latlng
from repro.inventory import SSTableInventory, write_inventory
from repro.inventory.keys import GroupingSet
from repro.server import (
    InventoryClient,
    InventoryService,
    ServerConfig,
    ServerError,
    ServerThread,
    ShardedInventory,
)
from repro.server.protocol import ERR_SHARD_UNAVAILABLE
from repro.server.sharding import rebalance, split_inventory

N_SHARDS = 2

#: Deadlines tuned for fault tests: shard calls fail fast, the fronting
#: request deadline is generous enough to cover a full failover sweep.
ROUTER_KW = dict(timeout=2.0, connect_timeout=0.5, failure_threshold=2)
FRONT_CONFIG = ServerConfig(request_timeout_s=5.0)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve(stack, table, resolution=6, port=0):
    backend = stack.enter_context(SSTableInventory(table, resolution=resolution))
    return stack.enter_context(
        ServerThread(InventoryService(backend), ServerConfig(port=port))
    )


@pytest.fixture(scope="module")
def split(tmp_path_factory, small_inventory):
    """The combined table + a 2-shard split on disk (shared, read-only)."""
    tmp = tmp_path_factory.mktemp("faults")
    source = tmp / "inv.sst"
    write_inventory(small_inventory, source)
    placement = split_inventory(source, resolution=6, shards=N_SHARDS)
    return tmp, source, placement


@pytest.fixture()
def probes(small_inventory):
    """(lat, lon) probes over plain cells, spread across both shards."""
    out = []
    for key, _ in small_inventory.items():
        if key.grouping_set is GroupingSet.CELL:
            out.append(cell_to_latlng(key.cell))
        if len(out) >= 24:
            break
    return out


def _shard_of(sharded, lat, lon):
    from repro.hexgrid import latlng_to_cell

    topology = sharded.topology
    return topology.owner(latlng_to_cell(lat, lon, topology.resolution))


class TestFailover:
    def test_replica_answers_when_primary_dies(self, split, probes):
        tmp, source, placement = split
        with contextlib.ExitStack() as stack:
            addresses = {}
            primaries = {}
            for spec in placement.shards:
                primary = _serve(stack, tmp / spec.table)
                replica = _serve(stack, tmp / spec.table)
                primaries[spec.name] = primary
                addresses[spec.name] = [primary.address, replica.address]
            sharded = stack.enter_context(
                ShardedInventory(placement, addresses, **ROUTER_KW)
            )
            front = stack.enter_context(
                ServerThread(InventoryService(sharded), FRONT_CONFIG)
            )
            with InventoryClient(*front.address) as client:
                baseline = [
                    client.request("summary_at", lat=lat, lon=lon)
                    for lat, lon in probes
                ]
                # Kill the primary of the shard owning probe 0; every
                # probe owned by that shard must now fail over.
                victim = _shard_of(sharded, *probes[0])
                primaries[victim.name].stop()
                after = [
                    client.request("summary_at", lat=lat, lon=lon)
                    for lat, lon in probes
                ]
                assert after == baseline  # identical answers via replica
                counters = sharded.counters.as_dict()
                assert counters.get("router.failover", 0) > 0
                # The dead endpoint tripped its wire and is skipped now.
                stats = client.stats()["inventory"]["shards"]
                states = {
                    shard["name"]: [e["state"] for e in shard["endpoints"]]
                    for shard in stats["shards"]
                }
                assert states[victim.name][0] == "down"
                assert states[victim.name][1] == "up"

    def test_multi_get_fails_over_too(self, split, probes):
        tmp, source, placement = split
        with contextlib.ExitStack() as stack:
            addresses = {}
            primaries = {}
            for spec in placement.shards:
                primary = _serve(stack, tmp / spec.table)
                replica = _serve(stack, tmp / spec.table)
                primaries[spec.name] = primary
                addresses[spec.name] = [primary.address, replica.address]
            sharded = stack.enter_context(
                ShardedInventory(placement, addresses, **ROUTER_KW)
            )
            front = stack.enter_context(
                ServerThread(InventoryService(sharded), FRONT_CONFIG)
            )
            keys = [{"lat": lat, "lon": lon} for lat, lon in probes]
            with InventoryClient(*front.address) as client:
                baseline = client.request("multi_get", keys=keys)
                for handle in primaries.values():
                    handle.stop()  # both primaries die; replicas remain
                assert client.request("multi_get", keys=keys) == baseline
                assert sharded.counters.as_dict().get("router.failover", 0) > 0


class TestShardUnavailable:
    def test_typed_error_on_live_connection_within_deadline(
        self, split, probes
    ):
        tmp, source, placement = split
        with contextlib.ExitStack() as stack:
            addresses = {}
            handles = {}
            for spec in placement.shards:
                primary = _serve(stack, tmp / spec.table)
                replica = _serve(stack, tmp / spec.table)
                handles[spec.name] = (primary, replica)
                addresses[spec.name] = [primary.address, replica.address]
            sharded = stack.enter_context(
                ShardedInventory(placement, addresses, **ROUTER_KW)
            )
            front = stack.enter_context(
                ServerThread(InventoryService(sharded), FRONT_CONFIG)
            )
            with InventoryClient(*front.address) as client:
                # Warm: find a probe owned by the victim shard and one
                # owned by the other shard.
                victim = _shard_of(sharded, *probes[0])
                victim_probe = probes[0]
                other_probe = next(
                    p
                    for p in probes
                    if _shard_of(sharded, *p).name != victim.name
                )
                for handle in handles[victim.name]:
                    handle.stop()  # primary AND replica down

                started = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client.request(
                        "summary_at",
                        lat=victim_probe[0],
                        lon=victim_probe[1],
                    )
                elapsed = time.perf_counter() - started
                assert excinfo.value.code == ERR_SHARD_UNAVAILABLE
                assert excinfo.value.details == {"shard": victim.name}
                # Never a hang past the deadline: the typed answer must
                # arrive within the fronting server's request timeout.
                assert elapsed < FRONT_CONFIG.request_timeout_s

                # The connection survives, and unaffected shards answer.
                assert client.ping()
                answer = client.request(
                    "summary_at", lat=other_probe[0], lon=other_probe[1]
                )
                assert answer["summary"] is not None
                assert (
                    sharded.counters.as_dict().get("router.unavailable", 0)
                    > 0
                )

    def test_scatter_fails_typed_when_one_shard_is_dark(self, split):
        tmp, source, placement = split
        route_args = None
        with SSTableInventory(source) as combined:
            for key, _ in combined.items():
                if key.grouping_set is GroupingSet.CELL_OD_TYPE:
                    route_args = dict(
                        origin=key.origin,
                        destination=key.destination,
                        vessel_type=key.vessel_type,
                    )
                    break
        assert route_args is not None
        with contextlib.ExitStack() as stack:
            addresses = {}
            handles = {}
            for spec in placement.shards:
                handle = _serve(stack, tmp / spec.table)
                handles[spec.name] = handle
                addresses[spec.name] = [handle.address]  # no replica
            sharded = stack.enter_context(
                ShardedInventory(placement, addresses, **ROUTER_KW)
            )
            front = stack.enter_context(
                ServerThread(InventoryService(sharded), FRONT_CONFIG)
            )
            with InventoryClient(*front.address) as client:
                assert client.request("route_cells", **route_args)["cells"]
                dark = placement.shards[0].name
                handles[dark].stop()  # one shard of the scatter dies
                with pytest.raises(ServerError) as excinfo:
                    client.request("route_cells", **route_args)
                assert excinfo.value.code == ERR_SHARD_UNAVAILABLE
                assert excinfo.value.details == {"shard": dark}
                assert client.ping()  # connection still live


class TestRecovery:
    def test_probe_recovers_a_restarted_endpoint(self, split, probes):
        tmp, source, placement = split
        with contextlib.ExitStack() as stack:
            fixed_port = _free_port()
            spec0 = placement.shards[0]
            primary = _serve(stack, tmp / spec0.table, port=fixed_port)
            replica0 = _serve(stack, tmp / spec0.table)
            other = _serve(stack, tmp / placement.shards[1].table)
            addresses = {
                spec0.name: [primary.address, replica0.address],
                placement.shards[1].name: [other.address],
            }
            sharded = stack.enter_context(
                ShardedInventory(placement, addresses, **ROUTER_KW)
            )
            from repro.server.protocol import summary_to_wire

            probe = next(
                p for p in probes if _shard_of(sharded, *p).name == spec0.name
            )
            baseline = summary_to_wire(sharded.summary_at(*probe))
            assert baseline is not None

            primary.stop()
            # Drive traffic until the trip wire marks the primary down.
            for _ in range(ROUTER_KW["failure_threshold"]):
                assert summary_to_wire(sharded.summary_at(*probe)) == baseline
            shard0 = sharded.topology.shards[0]
            assert shard0.endpoints[0].down

            # Restart on the same port (bind retry absorbs TIME_WAIT),
            # then one health sweep brings the endpoint back.
            restarted = stack.enter_context(
                ServerThread(
                    InventoryService(
                        stack.enter_context(
                            SSTableInventory(tmp / spec0.table, resolution=6)
                        )
                    ),
                    ServerConfig(port=fixed_port),
                )
            )
            assert restarted.address == primary.address
            sharded.probe_once()
            assert not shard0.endpoints[0].down
            counters = sharded.counters.as_dict()
            assert counters.get("router.shard_up", 0) >= 1
            assert counters.get("router.shard_down", 0) >= 1
            assert counters.get("router.health_probes", 0) >= 1
            # Primary serves again: no further failovers accrue.
            failovers = counters.get("router.failover", 0)
            assert summary_to_wire(sharded.summary_at(*probe)) == baseline
            assert (
                sharded.counters.as_dict().get("router.failover", 0)
                == failovers
            )

    def test_background_prober_thread_lifecycle(self, split):
        tmp, source, placement = split
        with contextlib.ExitStack() as stack:
            addresses = {
                spec.name: [_serve(stack, tmp / spec.table).address]
                for spec in placement.shards
            }
            sharded = ShardedInventory(
                placement, addresses, probe_interval_s=0.05, **ROUTER_KW
            )
            try:
                deadline = time.monotonic() + 5.0
                while (
                    sharded.counters.as_dict().get("router.health_probes", 0)
                    < 2
                ):
                    assert time.monotonic() < deadline, "prober never ran"
                    time.sleep(0.02)
                with pytest.raises(RuntimeError, match="already running"):
                    sharded.start_probing(1.0)
            finally:
                sharded.close()
            thread = sharded._prober
            assert thread is None  # close() joined and cleared it


class TestRebalance:
    def test_rebalance_under_live_queries_is_snapshot_consistent(
        self, split, probes, small_inventory
    ):
        """Queries racing a topology swap must every one of them return
        the single-node answer — no request may observe half of the old
        placement and half of the new."""
        tmp, source, placement = split
        grown = rebalance(placement, source, shards=3)
        expected = {
            (lat, lon): small_inventory.summary_at(lat, lon)
            for lat, lon in probes
        }
        with contextlib.ExitStack() as stack:
            old_addresses = {
                spec.name: [_serve(stack, tmp / spec.table).address]
                for spec in placement.shards
            }
            new_addresses = {
                spec.name: [_serve(stack, tmp / spec.table).address]
                for spec in grown.shards
            }
            sharded = stack.enter_context(
                ShardedInventory(placement, old_addresses, **ROUTER_KW)
            )
            front = stack.enter_context(
                ServerThread(
                    InventoryService(sharded),
                    ServerConfig(request_timeout_s=10.0, max_concurrency=8),
                )
            )
            failures: list[object] = []
            stop = threading.Event()

            def worker():
                from repro.server.protocol import summary_to_wire

                with InventoryClient(*front.address) as client:
                    while not stop.is_set():
                        for (lat, lon), summary in expected.items():
                            got = client.request(
                                "summary_at", lat=lat, lon=lon
                            )["summary"]
                            want = (
                                None
                                if summary is None
                                else summary_to_wire(summary)
                            )
                            if got != want:
                                failures.append(((lat, lon), got))
                                return

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            # Swap placements repeatedly under load: 2 -> 3 -> 2 -> 3.
            for _ in range(3):
                time.sleep(0.15)
                sharded.apply_placement(grown, new_addresses)
                assert sharded.topology.version == grown.version
                time.sleep(0.15)
                sharded.apply_placement(placement, old_addresses)
                assert sharded.topology.version == placement.version
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures, f"divergent answers during swap: {failures[:3]}"
            counters = sharded.counters.as_dict()
            assert counters.get("router.reloads", 0) == 6
            assert counters.get("router.shard_down", 0) == 0

    def test_apply_placement_requires_addresses_for_every_shard(self, split):
        tmp, source, placement = split
        grown = rebalance(placement, source, shards=3)
        with contextlib.ExitStack() as stack:
            addresses = {
                spec.name: [_serve(stack, tmp / spec.table).address]
                for spec in placement.shards
            }
            sharded = stack.enter_context(
                ShardedInventory(placement, addresses, **ROUTER_KW)
            )
            with pytest.raises(ValueError, match="no addresses"):
                sharded.apply_placement(grown, addresses)
            # The failed apply left the current topology untouched.
            assert sharded.topology.version == placement.version
