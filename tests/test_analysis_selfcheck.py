"""``src/repro`` itself must lint clean modulo the committed baseline.

This is the dogfood gate: the analyzer the repo ships is run over the
repo's own source in-process, against the real ``lint-baseline.json``.
If a change reintroduces a raw durable write, an unlocked mutation, an
unregistered span name or any other invariant violation, this test —
and the ``lint-invariants`` CI job running the same command — fails
with the offending ``path:line: RULE`` before review ever sees it.
"""

from __future__ import annotations

import io

from repro.analysis.runner import (
    analyze,
    default_baseline,
    default_root,
    lint,
)


def test_src_repro_lints_clean_modulo_committed_baseline():
    out = io.StringIO()
    code = lint(out=out)
    assert code == 0, (
        "repro's own source violates its invariants:\n" + out.getvalue()
    )


def test_committed_baseline_exists_at_the_default_path():
    path = default_baseline(default_root())
    assert path.name == "lint-baseline.json"
    assert path.is_file(), f"committed baseline missing: {path}"


def test_every_suppression_in_src_carries_its_pragma_reason():
    """Suppressed findings are audit-trail entries, not escape hatches.

    ``analyze`` would already fail on a reasonless pragma (REP000); this
    asserts the stronger, positive property that the committed tree's
    pragmas all parse and carry prose.
    """
    from repro.analysis.project import Project

    project = Project.load(default_root())
    assert not project.errors
    for module in project.modules:
        assert not module.pragma_errors, module.pragma_errors
        for pragma in module.pragmas:
            assert pragma.reason.strip(), (
                f"{module.rel}:{pragma.line} pragma has no reason"
            )


def test_analyze_default_root_has_no_meta_findings():
    findings = analyze(default_root())
    assert [f for f in findings if f.rule == "REP000"] == []


def test_rep007_machine_checks_the_declared_live_inventory_order():
    """The lock-order declaration in ``inventory/live.py`` is not prose.

    REP007 must actually *observe* the three-lock hierarchy on the real
    tree — every declared pair as a concrete acquisition edge, including
    the ``_maint_lock → _write_lock`` edge that only exists through a
    call chain — otherwise the declaration guards nothing.
    """
    from repro.analysis.project import Project
    from repro.analysis.rules.lock_order import LockOrderRule

    project = Project.load(default_root())
    live = next(m for m in project.modules if m.rel == "inventory/live.py")
    assert live.lock_orders, "live.py lost its lock-order declaration"
    assert live.lock_orders[0].names == ("_maint_lock", "_write_lock", "_mem_lock")

    graph = LockOrderRule().collect(project)
    pairs = {
        (edge.src.label(), edge.dst.label()) for edge in graph.edges
    }
    assert pairs >= {
        ("LiveInventory._maint_lock", "LiveInventory._write_lock"),
        ("LiveInventory._maint_lock", "LiveInventory._mem_lock"),
        ("LiveInventory._write_lock", "LiveInventory._mem_lock"),
    }
    # The router's topology-swap locking is in view too.
    acquired_labels = {
        lock.label() for locks in graph.acquired.values() for lock in locks
    }
    assert "ShardedInventory._swap_lock" in acquired_labels


def test_full_tree_analysis_fits_the_interactive_budget():
    """The parse-once caches keep a full run inside editor-loop latency.

    A generous wall-clock bound (the suite runs on shared CI workers),
    but one that a regression to re-parsing every module per rule — nine
    rules now walk every tree — would blow immediately.
    """
    import time

    start = time.monotonic()
    analyze(default_root())
    elapsed = time.monotonic() - start
    assert elapsed < 20.0, f"full-tree analyze took {elapsed:.1f}s"
