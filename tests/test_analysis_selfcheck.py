"""``src/repro`` itself must lint clean modulo the committed baseline.

This is the dogfood gate: the analyzer the repo ships is run over the
repo's own source in-process, against the real ``lint-baseline.json``.
If a change reintroduces a raw durable write, an unlocked mutation, an
unregistered span name or any other invariant violation, this test —
and the ``lint-invariants`` CI job running the same command — fails
with the offending ``path:line: RULE`` before review ever sees it.
"""

from __future__ import annotations

import io

from repro.analysis.runner import (
    analyze,
    default_baseline,
    default_root,
    lint,
)


def test_src_repro_lints_clean_modulo_committed_baseline():
    out = io.StringIO()
    code = lint(out=out)
    assert code == 0, (
        "repro's own source violates its invariants:\n" + out.getvalue()
    )


def test_committed_baseline_exists_at_the_default_path():
    path = default_baseline(default_root())
    assert path.name == "lint-baseline.json"
    assert path.is_file(), f"committed baseline missing: {path}"


def test_every_suppression_in_src_carries_its_pragma_reason():
    """Suppressed findings are audit-trail entries, not escape hatches.

    ``analyze`` would already fail on a reasonless pragma (REP000); this
    asserts the stronger, positive property that the committed tree's
    pragmas all parse and carry prose.
    """
    from repro.analysis.project import Project

    project = Project.load(default_root())
    assert not project.errors
    for module in project.modules:
        assert not module.pragma_errors, module.pragma_errors
        for pragma in module.pragmas:
            assert pragma.reason.strip(), (
                f"{module.rel}:{pragma.line} pragma has no reason"
            )


def test_analyze_default_root_has_no_meta_findings():
    findings = analyze(default_root())
    assert [f for f in findings if f.rule == "REP000"] == []
