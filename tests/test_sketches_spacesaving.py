"""Tests for the Space-Saving heavy-hitters sketch."""

import random
from collections import Counter

import pytest

from repro.sketches import SpaceSaving


def test_capacity_validation():
    with pytest.raises(ValueError):
        SpaceSaving(0)


def test_weight_validation():
    with pytest.raises(ValueError):
        SpaceSaving(4).update("x", weight=0)


def test_exact_below_capacity():
    sketch = SpaceSaving(16)
    data = ["a"] * 5 + ["b"] * 3 + ["c"]
    for item in data:
        sketch.update(item)
    top = sketch.top()
    assert [(t.value, t.count, t.error) for t in top] == [
        ("a", 5, 0), ("b", 3, 0), ("c", 1, 0)
    ]
    assert sketch.total == 9


def test_top_n_limit_and_tiebreak():
    sketch = SpaceSaving(16)
    for item in ["x", "y", "z"]:
        sketch.update(item, weight=2)
    top2 = sketch.top(2)
    assert len(top2) == 2
    assert [t.value for t in top2] == ["x", "y"]  # repr tiebreak


def test_eviction_overestimates_within_error():
    sketch = SpaceSaving(2)
    sketch.update("a", weight=10)
    sketch.update("b", weight=5)
    sketch.update("c")  # evicts b (count 5) → c reported 6, error 5
    item = next(t for t in sketch.top() if t.value == "c")
    assert item.count == 6
    assert item.error == 5
    assert item.count - item.error <= 1  # true count bounded


def test_heavy_hitters_survive_on_zipf():
    rng = random.Random(99)
    truth = Counter()
    sketch = SpaceSaving(32)
    for _ in range(50000):
        value = int(rng.paretovariate(1.1)) % 500
        truth[value] += 1
        sketch.update(value)
    true_top = [v for v, _ in truth.most_common(5)]
    sketch_top = [t.value for t in sketch.top(10)]
    for heavy in true_top:
        assert heavy in sketch_top


def test_guarantee_frequency_above_n_over_k_present():
    sketch = SpaceSaving(10)
    n = 10000
    rng = random.Random(5)
    for i in range(n):
        if i % 5 == 0:
            sketch.update("frequent")  # 2000 > n/k = 1000
        else:
            sketch.update(f"noise-{rng.randrange(2000)}")
    assert sketch.count("frequent") >= 2000


def test_merge_exact_when_under_capacity():
    a = SpaceSaving(32)
    b = SpaceSaving(32)
    for item in ["x"] * 4 + ["y"] * 2:
        a.update(item)
    for item in ["y"] * 3 + ["z"]:
        b.update(item)
    a.merge(b)
    assert a.count("x") == 4
    assert a.count("y") == 5
    assert a.count("z") == 1
    assert a.total == 10


def test_merge_truncates_to_capacity_with_valid_bounds():
    true_counts = {}
    a = SpaceSaving(4)
    b = SpaceSaving(4)
    for i in range(4):
        a.update(f"a{i}", weight=10 - i)
        true_counts[f"a{i}"] = 10 - i
        b.update(f"b{i}", weight=20 - i)
        true_counts[f"b{i}"] = 20 - i
    a.merge(b)
    assert len(a) == 4
    for item in a.top():
        # Space-Saving invariant: reported count overestimates the true
        # frequency by at most the recorded error.
        true = true_counts[item.value]
        assert item.count >= true
        assert item.count - item.error <= true
    # The overall heaviest item always survives a merge.
    assert a.count("b0") >= 20


def test_dict_roundtrip():
    sketch = SpaceSaving(8)
    for item in ["p"] * 7 + ["q"] * 2:
        sketch.update(item)
    restored = SpaceSaving.from_dict(sketch.to_dict())
    assert restored.total == sketch.total
    assert [(t.value, t.count) for t in restored.top()] == [
        (t.value, t.count) for t in sketch.top()
    ]


def test_count_for_untracked_value():
    assert SpaceSaving(4).count("ghost") == 0
