"""Tests for the cleaning stage (§3.3.1)."""

import pytest

from repro.ais.messages import PositionReport
from repro.pipeline import cleaning
from repro.world.fleet import build_fleet


def _report(ts=0.0, lat=50.0, lon=1.0, mmsi=235000001, **overrides):
    fields = dict(
        mmsi=mmsi, epoch_ts=ts, lat=lat, lon=lon, sog=12.0, cog=45.0,
        heading=44, status=0,
    )
    fields.update(overrides)
    return PositionReport(**fields)


class TestSortAndDedupe:
    def test_sorts_by_timestamp(self):
        reports = [_report(ts=300.0), _report(ts=0.0), _report(ts=600.0)]
        cleaned = cleaning.sort_and_dedupe(reports)
        assert [r.epoch_ts for r in cleaned] == [0.0, 300.0, 600.0]

    def test_drops_exact_duplicates(self):
        reports = [_report(ts=0.0), _report(ts=0.0), _report(ts=300.0)]
        assert len(cleaning.sort_and_dedupe(reports)) == 2

    def test_same_time_different_position_kept(self):
        reports = [_report(ts=0.0, lat=50.0), _report(ts=0.0, lat=50.001)]
        assert len(cleaning.sort_and_dedupe(reports)) == 2

    def test_empty(self):
        assert cleaning.sort_and_dedupe([]) == []


class TestFeasibilityFilter:
    def test_keeps_plausible_track(self):
        # ~12 knots: 1.85 km per 300 s.
        reports = [
            _report(ts=i * 300.0, lat=50.0 + i * 0.0017) for i in range(10)
        ]
        assert len(cleaning.feasibility_filter(reports)) == 10

    def test_drops_teleport_spike_only(self):
        reports = [
            _report(ts=0.0, lat=50.0),
            _report(ts=300.0, lat=58.0),  # ~900 km in 5 min: impossible
            _report(ts=600.0, lat=50.003),
        ]
        cleaned = cleaning.feasibility_filter(reports)
        assert [r.lat for r in cleaned] == [50.0, 50.003]

    def test_consecutive_spikes_all_dropped(self):
        reports = [
            _report(ts=0.0, lat=50.0),
            _report(ts=300.0, lat=58.0),
            _report(ts=600.0, lat=-12.0),
            _report(ts=900.0, lat=50.01),
        ]
        cleaned = cleaning.feasibility_filter(reports)
        assert [r.lat for r in cleaned] == [50.0, 50.01]

    def test_threshold_is_configurable(self):
        # ~60 knots (one degree of longitude per hour at the equator):
        # feasible only if the threshold allows it.
        reports = [
            _report(ts=0.0, lat=0.0, lon=0.0),
            _report(ts=3600.0, lat=0.0, lon=1.0),
        ]
        assert len(cleaning.feasibility_filter(reports, max_speed_kn=50.0)) == 1
        assert len(cleaning.feasibility_filter(reports, max_speed_kn=70.0)) == 2

    def test_empty(self):
        assert cleaning.feasibility_filter([]) == []


class TestEnrichment:
    @pytest.fixture(scope="class")
    def static(self):
        fleet = build_fleet(120, seed=42)
        return {vessel.mmsi: vessel for vessel in fleet}

    def _vessel_of_segment(self, static, segment_value, commercial):
        for vessel in static.values():
            if vessel.segment.value == segment_value and (
                vessel.is_commercial == commercial
            ):
                return vessel
        pytest.skip(f"no {segment_value} vessel in fixture fleet")

    def test_attaches_type_and_grt(self, static):
        vessel = self._vessel_of_segment(static, "container", True)
        records = cleaning.enrich_track(
            vessel.mmsi, [_report(mmsi=vessel.mmsi)], static
        )
        assert records is not None
        assert records[0].vessel_type == "container"
        assert records[0].grt == vessel.grt

    def test_unknown_mmsi_dropped(self, static):
        assert cleaning.enrich_track(999999999, [_report()], static) is None

    def test_non_commercial_dropped(self, static):
        vessel = next(
            v for v in static.values() if v.segment.value in ("fishing", "tug")
        )
        assert cleaning.enrich_track(
            vessel.mmsi, [_report(mmsi=vessel.mmsi)], static
        ) is None

    def test_commercial_only_flag_disables_filter(self, static):
        vessel = next(
            v for v in static.values() if v.segment.value in ("fishing", "tug")
        )
        records = cleaning.enrich_track(
            vessel.mmsi,
            [_report(mmsi=vessel.mmsi)],
            static,
            min_grt=0,
            commercial_only=False,
        )
        assert records is not None

    def test_min_grt_threshold(self, static):
        vessel = self._vessel_of_segment(static, "cargo", True)
        assert cleaning.enrich_track(
            vessel.mmsi, [_report(mmsi=vessel.mmsi)], static,
            min_grt=vessel.grt + 1,
        ) is None

    def test_heading_sentinel_becomes_none(self, static):
        vessel = self._vessel_of_segment(static, "tanker", True)
        records = cleaning.enrich_track(
            vessel.mmsi, [_report(mmsi=vessel.mmsi, heading=511)], static
        )
        assert records[0].heading is None
