"""Server-side observability: the ``trace`` request, the Prometheus
endpoint, the slow-query log and trace lineage under concurrency.

Runs a real TCP server (``ServerThread``) like the rest of the server
suite — these are the observability guarantees an operator leans on in
``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import logging
import threading
import urllib.error
import urllib.request

import pytest

from repro.hexgrid import latlng_to_cell
from repro.inventory import GroupKey, Inventory
from repro.inventory.summary import CellSummary
from repro.obs import trace as obs
from repro.obs.exposition import CONTENT_TYPE, MetricsExporter, server_exposition
from repro.obs.sinks import RingBufferSink
from repro.server import (
    InventoryClient,
    InventoryService,
    ServerConfig,
    ServerThread,
)

LAT, LON = 5.0, 100.0


def _tiny_inventory() -> Inventory:
    inventory = Inventory(resolution=6)
    summary = CellSummary()
    for j in range(3):
        summary.update(
            mmsi=100_000_000 + j, sog=8.0 + j, cog=45.0, heading=45,
            trip_id=f"t{j}", eto_s=60.0, ata_s=120.0,
            origin="CNSHA", destination="NLRTM", next_cell=None,
        )
    inventory.put(GroupKey(cell=latlng_to_cell(LAT, LON, 6)), summary)
    return inventory


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture()
def service():
    return InventoryService(_tiny_inventory())


# -- the trace request -----------------------------------------------------------


def test_trace_request_without_tracing_is_empty_not_an_error(service):
    with ServerThread(service) as handle:
        with InventoryClient(*handle.address) as client:
            answer = client.trace()
    assert answer == {"enabled": False, "spans": []}


def test_trace_request_serves_the_ring_tail(service):
    ring = RingBufferSink(capacity=64)
    obs.configure(ring)
    with ServerThread(service) as handle:
        with InventoryClient(*handle.address) as client:
            client.ping()
            client.summary_at(LAT, LON)
            answer = client.trace(n=50)
    assert answer["enabled"] is True
    names = [span["name"] for span in answer["spans"]]
    assert "server.request" in names
    assert "server.handle" in names
    # the handler span nests under its request span, same trace
    requests = {s["span"]: s for s in answer["spans"]
                if s["name"] == "server.request"}
    handlers = [s for s in answer["spans"] if s["name"] == "server.handle"]
    assert handlers, "handler spans must reach the ring"
    for handler in handlers:
        parent = requests.get(handler["parent"])
        assert parent is not None, "server.handle must parent under server.request"
        assert handler["trace"] == parent["trace"]
    # request spans carry the queue-wait split
    for request_span in requests.values():
        assert "queue_wait_ms" in request_span["attrs"]


def test_trace_request_respects_n(service):
    ring = RingBufferSink(capacity=64)
    obs.configure(ring)
    with ServerThread(service) as handle:
        with InventoryClient(*handle.address) as client:
            for _ in range(5):
                client.ping()
            answer = client.trace(n=3)
    assert len(answer["spans"]) == 3


def test_concurrent_connections_never_interleave_trace_ids(service):
    ring = RingBufferSink(capacity=4096)
    obs.configure(ring)
    errors: list[BaseException] = []

    def client_loop(address):
        try:
            with InventoryClient(*address) as client:
                for _ in range(10):
                    client.summary_at(LAT, LON)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    with ServerThread(service, ServerConfig(max_concurrency=8)) as handle:
        threads = [
            threading.Thread(target=client_loop, args=(handle.address,))
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not errors
    spans = ring.spans()
    requests = [s for s in spans
                if s["name"] == "server.request"
                and s["attrs"].get("type") == "summary_at"]
    assert len(requests) == 60
    # every request is its own trace: ids never collide across connections
    assert len({s["trace"] for s in requests}) == 60
    request_by_id = {s["span"]: s for s in requests}
    handlers = [s for s in spans if s["name"] == "server.handle"]
    for handler in handlers:
        parent = request_by_id.get(handler["parent"])
        if parent is not None:  # ping/stats handlers aside
            assert handler["trace"] == parent["trace"]
    # within one trace there is exactly one request span and its handler
    by_trace: dict = {}
    for span in spans:
        by_trace.setdefault(span["trace"], []).append(span)
    for trace_spans in by_trace.values():
        roots = [s for s in trace_spans if s["parent"] is None]
        assert len(roots) == 1, "one root (the request) per trace"


# -- the Prometheus endpoint -----------------------------------------------------


def _scrape(host: str, port: int) -> tuple[str, str]:
    with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
        return response.read().decode("utf-8"), response.headers["Content-Type"]


def _metric_value(body: str, metric: str) -> float:
    for line in body.splitlines():
        if line.startswith(metric + " "):
            return float(line.split()[1])
    raise AssertionError(f"{metric} not found in exposition:\n{body}")


def test_metrics_endpoint_matches_stats(service):
    with ServerThread(service) as handle:
        exporter = MetricsExporter(handle.server.exposition, port=0)
        host, port = exporter.start()
        try:
            with InventoryClient(*handle.address) as client:
                client.ping()
                client.ping()
                client.summary_at(LAT, LON)
                stats = client.stats()["server"]
            body, content_type = _scrape(host, port)
        finally:
            exporter.stop()
    assert content_type == CONTENT_TYPE
    counters = stats["counters"]
    assert _metric_value(body, "repro_server_requests_total") >= counters[
        "server.requests"
    ] - 1  # the stats request itself may land either side of the scrape
    assert _metric_value(body, "repro_server_requests_ping_total") == 2.0
    assert "repro_server_latency_ms_p50" in body
    assert "repro_server_queue_wait_ms_p50" in body
    # block-cache counters appear when the backend has them (in-memory
    # backend has none; the exposition must still render)
    assert body.endswith("\n")


def test_metrics_endpoint_404_off_path(service):
    with ServerThread(service) as handle:
        exporter = MetricsExporter(handle.server.exposition, port=0)
        host, port = exporter.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://{host}:{port}/other")
            assert excinfo.value.code == 404
        finally:
            exporter.stop()


def test_server_exposition_renders_counters_and_gauges():
    snapshot = {
        "counters": {"server.requests": 4, "server.errors": 1},
        "latency_ms": {"count": 4, "p50_ms": 1.5, "p99_ms": 9.0,
                       "mean_ms": 2.0, "max_ms": 9.0},
        "queue_wait_ms": {"count": 4, "p50_ms": None, "p99_ms": None,
                          "mean_ms": None, "max_ms": None},
    }
    body = server_exposition(snapshot, {"block_cache.hits": 7})
    assert "repro_server_requests_total 4" in body
    assert "repro_block_cache_hits_total 7" in body
    assert "repro_server_latency_ms_p50_ms 1.5" in body
    # None gauges (empty digests) are skipped, not rendered as "None"
    assert "queue_wait_ms_p50" not in body
    assert "None" not in body


# -- the slow-query log ----------------------------------------------------------


def test_slow_requests_are_logged_and_counted(service, caplog):
    config = ServerConfig(slow_request_s=0.0)  # everything is "slow"
    with caplog.at_level(logging.WARNING, logger="repro.server.slowlog"):
        with ServerThread(service, config) as handle:
            with InventoryClient(*handle.address) as client:
                client.ping()
                stats = client.stats()["server"]
    assert stats["counters"]["server.requests.slow"] >= 1
    slow_lines = [r for r in caplog.records if "slow request" in r.getMessage()]
    assert slow_lines
    assert "type=ping" in slow_lines[0].getMessage()


def test_fast_requests_are_not_flagged_slow(service):
    config = ServerConfig(slow_request_s=30.0)
    with ServerThread(service, config) as handle:
        with InventoryClient(*handle.address) as client:
            client.ping()
            stats = client.stats()["server"]
    assert stats["counters"].get("server.requests.slow", 0) == 0


def test_slow_threshold_validation():
    with pytest.raises(ValueError):
        ServerConfig(slow_request_s=-1.0)
