"""Tests for AIS validation predicates, vessel types and CSV I/O."""

import pytest

from repro.ais import (
    CSV_COLUMNS,
    MarketSegment,
    is_commercial_type,
    is_valid_course,
    is_valid_heading,
    is_valid_latitude,
    is_valid_longitude,
    is_valid_mmsi,
    is_valid_position_report,
    is_valid_speed,
    is_valid_status,
    read_csv,
    segment_for_type,
    write_csv,
)
from repro.ais.messages import HEADING_NOT_AVAILABLE, PositionReport


class TestValidation:
    def test_latitude_range_and_sentinel(self):
        assert is_valid_latitude(0.0)
        assert is_valid_latitude(-90.0)
        assert is_valid_latitude(90.0)
        assert not is_valid_latitude(91.0)  # protocol sentinel
        assert not is_valid_latitude(-95.0)

    def test_longitude_range_and_sentinel(self):
        assert is_valid_longitude(180.0)
        assert is_valid_longitude(-180.0)
        assert not is_valid_longitude(181.0)
        assert not is_valid_longitude(300.0)

    def test_speed_range_and_sentinel(self):
        assert is_valid_speed(0.0)
        assert is_valid_speed(102.2)
        assert not is_valid_speed(102.3)
        assert not is_valid_speed(-0.1)

    def test_course_range(self):
        assert is_valid_course(0.0)
        assert is_valid_course(359.9)
        assert not is_valid_course(360.0)  # sentinel

    def test_heading_range(self):
        assert is_valid_heading(0)
        assert is_valid_heading(359)
        assert not is_valid_heading(360)
        assert not is_valid_heading(511)

    def test_status_range(self):
        assert is_valid_status(0)
        assert is_valid_status(15)
        assert not is_valid_status(16)

    def test_mmsi_nine_digits(self):
        assert is_valid_mmsi(235000001)
        assert not is_valid_mmsi(99_999_999)
        assert not is_valid_mmsi(1_000_000_000)

    def _report(self, **overrides):
        fields = dict(
            mmsi=235000001, epoch_ts=0.0, lat=50.0, lon=1.0,
            sog=12.0, cog=45.0, heading=44, status=0,
        )
        fields.update(overrides)
        return PositionReport(**fields)

    def test_valid_report_passes(self):
        assert is_valid_position_report(self._report())

    @pytest.mark.parametrize("field,value", [
        ("lat", 91.0), ("lon", 181.0), ("sog", 102.3),
        ("cog", 360.0), ("status", 16), ("mmsi", 12345),
    ])
    def test_each_bad_field_fails(self, field, value):
        assert not is_valid_position_report(self._report(**{field: value}))

    def test_heading_not_available_is_tolerated(self):
        assert is_valid_position_report(
            self._report(heading=HEADING_NOT_AVAILABLE)
        )

    def test_out_of_range_heading_fails(self):
        assert not is_valid_position_report(self._report(heading=400))


class TestVesselTypes:
    @pytest.mark.parametrize("code,segment", [
        (70, MarketSegment.CARGO),
        (79, MarketSegment.CARGO),
        (71, MarketSegment.CONTAINER),
        (72, MarketSegment.CONTAINER),
        (80, MarketSegment.TANKER),
        (89, MarketSegment.TANKER),
        (60, MarketSegment.PASSENGER),
        (30, MarketSegment.FISHING),
        (37, MarketSegment.PLEASURE),
        (52, MarketSegment.TUG),
        (40, MarketSegment.HIGH_SPEED),
        (0, MarketSegment.OTHER),
        (99, MarketSegment.OTHER),
    ])
    def test_segment_mapping(self, code, segment):
        assert segment_for_type(code) is segment

    def test_unknown_codes_are_other(self):
        assert segment_for_type(None) is MarketSegment.OTHER
        assert segment_for_type(-5) is MarketSegment.OTHER
        assert segment_for_type(150) is MarketSegment.OTHER

    def test_commercial_filter(self):
        assert is_commercial_type(70)
        assert is_commercial_type(84)
        assert is_commercial_type(65)
        assert not is_commercial_type(30)
        assert not is_commercial_type(52)
        assert not is_commercial_type(None)

    def test_segment_str(self):
        assert str(MarketSegment.TANKER) == "tanker"


class TestCsvIO:
    def _reports(self):
        return [
            PositionReport(mmsi=235000001, epoch_ts=1_640_995_200.0, lat=51.5,
                           lon=1.2, sog=14.3, cog=123.4, heading=124, status=0),
            PositionReport(mmsi=538000002, epoch_ts=1_640_995_260.0, lat=-33.9,
                           lon=18.4, sog=0.1, cog=10.0, heading=511, status=5),
        ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "reports.csv"
        written = write_csv(path, self._reports())
        assert written == 2
        back = list(read_csv(path))
        assert len(back) == 2
        assert back[0].mmsi == 235000001
        assert back[0].lat == pytest.approx(51.5)
        assert back[0].epoch_ts == pytest.approx(1_640_995_200.0)
        assert back[1].heading == 511

    def test_header_matches_columns(self, tmp_path):
        path = tmp_path / "reports.csv"
        write_csv(path, self._reports())
        header = path.read_text().splitlines()[0]
        assert header == ",".join(CSV_COLUMNS)

    def test_bad_rows_are_skipped(self, tmp_path):
        path = tmp_path / "reports.csv"
        write_csv(path, self._reports())
        with open(path, "a") as handle:
            handle.write("not,a,valid,row,at,all,x,y\n")
        assert len(list(read_csv(path))) == 2

    def test_epoch_timestamps_accepted(self, tmp_path):
        path = tmp_path / "reports.csv"
        path.write_text(
            ",".join(CSV_COLUMNS)
            + "\n235000001,1640995200,50.0,1.0,10.0,90.0,90,0\n"
        )
        rows = list(read_csv(path))
        assert rows[0].epoch_ts == 1_640_995_200.0
