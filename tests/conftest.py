"""Shared fixtures: one small synthetic world and its inventory, built once.

The end-to-end fixtures are session-scoped because dataset generation and
pipeline runs are the expensive part of the suite; tests must treat them
as read-only.
"""

from __future__ import annotations

import pytest

from repro import PipelineConfig, WorldConfig, build_inventory, generate_dataset
from repro.engine import Engine, EngineConfig


@pytest.fixture(scope="session")
def small_world():
    """A compact but fully featured dataset (~15k reports, trips included)."""
    return generate_dataset(
        WorldConfig(seed=1234, n_vessels=16, days=10.0, report_interval_s=600.0)
    )


@pytest.fixture(scope="session")
def small_result(small_world):
    """The pipeline result (inventory + funnel) for the small world."""
    return build_inventory(
        small_world.positions,
        small_world.fleet,
        small_world.ports,
        PipelineConfig(),
    )


@pytest.fixture(scope="session")
def small_inventory(small_result):
    """The small world's inventory."""
    return small_result.inventory


@pytest.fixture()
def engine():
    """A fresh serial engine per test."""
    with Engine(EngineConfig(num_partitions=4)) as eng:
        yield eng
