"""Tests for the batch NMEA/CSV decoders (repro.ais.batch).

The contract is strict equivalence: :func:`decode_lines` must produce
message-for-message what :func:`decode_sentences` produces over the same
lines — including which malformed lines are skipped — and
:func:`read_csv_batch` must produce row-for-row what :func:`read_csv`
produces.  The batch decoders are amortisations, not reinterpretations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ais import decode_sentences, encode_message
from repro.ais.batch import (
    IntBitReader,
    decode_lines,
    decode_payload_packed,
    read_csv_batch,
    unarmor_to_int,
)
from repro.ais.codec import decode_payload
from repro.ais.csvio import read_csv, write_csv
from repro.ais.messages import (
    ClassBPositionReport,
    PositionReport,
    StaticVoyageData,
)
from repro.ais.nmea import parse_sentence
from repro.ais.sixbit import SIXBIT_CHARSET, BitReader, unarmor

ARMORED = st.text(
    alphabet=[chr(48 + c) if c <= 39 else chr(56 + c) for c in range(64)],
    max_size=40,
)

MMSI = st.integers(min_value=100_000_000, max_value=999_999_999)
LAT = st.floats(min_value=-89.9, max_value=89.9)
LON = st.floats(min_value=-179.9, max_value=179.9)


class TestUnarmor:
    @settings(max_examples=80)
    @given(payload=ARMORED, data=st.data())
    def test_matches_scalar_unarmor(self, payload, data):
        fill = data.draw(st.integers(0, min(5, 6 * len(payload))))
        bits = unarmor(payload, fill)
        value, bit_length = unarmor_to_int(payload, fill)
        assert bit_length == len(bits)
        assert [int(b) for b in bits] == [
            (value >> (bit_length - 1 - i)) & 1 for i in range(bit_length)
        ]

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError):
            unarmor_to_int("ab\x7f")
        with pytest.raises(ValueError):
            unarmor_to_int("abé")  # non-ASCII

    def test_bad_fill_bits_rejected(self):
        with pytest.raises(ValueError):
            unarmor_to_int("A", fill_bits=6)
        with pytest.raises(ValueError):
            unarmor_to_int("", fill_bits=2)


class TestIntBitReader:
    @settings(max_examples=60)
    @given(payload=ARMORED.filter(lambda s: len(s) >= 8))
    def test_reads_match_bitreader(self, payload):
        bits = unarmor(payload)
        value, bit_length = unarmor_to_int(payload)
        scalar = BitReader(bits)
        packed = IntBitReader(value, bit_length)
        assert packed.read_uint(6) == scalar.read_uint(6)
        assert packed.read_int(8) == scalar.read_int(8)
        assert packed.read_bool() == scalar.read_bool()
        assert packed.read_string(12) == scalar.read_string(12)
        assert packed.remaining == scalar.remaining

    def test_truncation_raises(self):
        reader = IntBitReader(0b101, 3)
        with pytest.raises(ValueError, match="truncated"):
            reader.read_uint(4)

    def test_string_width_must_be_multiple_of_six(self):
        reader = IntBitReader(0, 64)
        with pytest.raises(ValueError):
            reader.read_string(7)

    def test_charset_round_trip(self):
        # Pack 'A' (index 1 in the 6-bit charset) and read it back.
        index = SIXBIT_CHARSET.index("A")
        reader = IntBitReader(index, 6)
        assert reader.read_string(6) == "A"


class TestDecodeEquivalence:
    @settings(max_examples=60)
    @given(mmsi=MMSI, lat=LAT, lon=LON,
           sog=st.floats(min_value=0.0, max_value=102.2),
           cog=st.floats(min_value=0.0, max_value=359.9),
           msg_type=st.sampled_from([1, 2, 3]))
    def test_packed_payload_decode_matches_scalar(
        self, mmsi, lat, lon, sog, cog, msg_type
    ):
        message = PositionReport(
            mmsi=mmsi, epoch_ts=5.0, lat=lat, lon=lon, sog=sog, cog=cog,
            msg_type=msg_type,
        )
        sentence = parse_sentence(encode_message(message)[0])
        scalar = decode_payload(sentence.payload, sentence.fill_bits, 5.0)
        packed = decode_payload_packed(sentence.payload, sentence.fill_bits, 5.0)
        assert packed == scalar

    def test_batch_matches_scalar_over_mixed_stream(self):
        lines: list[str] = []
        for i in range(10):
            lines.extend(
                encode_message(
                    PositionReport(
                        mmsi=200_000_000 + i, epoch_ts=1.0, lat=5.0 + i,
                        lon=100.0 + i, sog=8.0, cog=45.0, heading=45,
                    )
                )
            )
        # A multi-fragment type 5 rides along.
        lines.extend(
            encode_message(
                StaticVoyageData(
                    mmsi=235009812, imo=9321483, callsign="GBXX5",
                    shipname="EVER GIVEN", ship_type=71, dim_bow=200,
                    dim_stern=200, dim_port=29, dim_starboard=30,
                    draught=14.5, destination="ROTTERDAM", eta_month=3,
                    eta_day=23, eta_hour=5, eta_minute=30,
                )
            )
        )
        lines.extend(
            encode_message(
                ClassBPositionReport(
                    mmsi=338123456, epoch_ts=1.0, lat=21.3, lon=-157.8,
                    sog=6.2, cog=245.0, heading=244,
                )
            )
        )
        # Garbage the scalar path also skips.
        lines.extend([
            "",
            "not nmea at all",
            "!AIVDM,1,1,,A,zzzz,0*00",          # bad checksum
            "!AIVDM,1,1,,A*00",                  # too few fields
            "!BADTK,1,1,,A,15M67F,0*3F",         # wrong talker
            "$GPGGA,123519,4807.038,N*47",       # not a VDM line
        ])
        scalar = list(decode_sentences(lines, epoch_ts=1.0))
        batched = decode_lines(lines, epoch_ts=1.0)
        assert batched == scalar
        assert len(batched) == 12

    def test_interleaved_fragments_assemble_identically(self):
        voyage_lines = encode_message(
            StaticVoyageData(
                mmsi=235009812, imo=9321483, callsign="GBXX5",
                shipname="MSC OSCAR", ship_type=71, dim_bow=197,
                dim_stern=198, dim_port=29, dim_starboard=30,
                draught=16.0, destination="SINGAPORE", eta_month=6,
                eta_day=1, eta_hour=12, eta_minute=0,
            )
        )
        assert len(voyage_lines) > 1  # really multi-fragment
        position_line = encode_message(
            PositionReport(
                mmsi=200_000_001, epoch_ts=0.0, lat=1.0, lon=103.0,
                sog=10.0, cog=180.0,
            )
        )[0]
        lines = [voyage_lines[0], position_line, *voyage_lines[1:]]
        assert decode_lines(lines) == list(decode_sentences(lines))

    def test_unsupported_message_type_skipped(self):
        with pytest.raises(ValueError, match="unsupported"):
            decode_payload_packed("D", 0)  # type 20


class TestCsvBatch:
    def test_round_trip_matches_scalar_reader(self, tmp_path):
        reports = [
            PositionReport(
                mmsi=200_000_000 + i, epoch_ts=1_650_000_000.0 + 60 * i,
                lat=5.0 + i * 0.1, lon=100.0 + i * 0.1, sog=8.5, cog=45.0,
                heading=45, status=0,
            )
            for i in range(25)
        ]
        path = tmp_path / "reports.csv"
        write_csv(path, reports)
        assert read_csv_batch(path) == list(read_csv(path))

    def test_timestamp_shapes_match_scalar_precedence(self, tmp_path):
        path = tmp_path / "shapes.csv"
        rows = [
            "MMSI,BaseDateTime,LAT,LON,SOG,COG,Heading,Status",
            "200000001,1650000000.5,5.0,100.0,8.0,45.0,45,0",   # epoch float
            "200000002,2022-04-15T06:40:00,5.1,100.1,8.0,45.0,45,0",  # ISO
            "200000003,2022-04-15 06:40:00,5.2,100.2,8.0,45.0,45,0",  # spaced: skipped
            "200000004,20230101,5.3,100.3,8.0,45.0,45,0",  # digits = epoch
            "200000005,not-a-time,5.4,100.4,8.0,45.0,45,0",  # skipped
            "200000006,,5.5,100.5,8.0,45.0,45,0",            # skipped
        ]
        path.write_text("\n".join(rows) + "\n")
        batched = read_csv_batch(path)
        scalar = list(read_csv(path))
        assert batched == scalar
        assert [r.mmsi for r in batched] == [
            200000001, 200000002, 200000004,
        ]
        assert batched[2].epoch_ts == 20230101.0  # float() wins over ISO

    def test_short_and_bad_rows_skipped_like_scalar(self, tmp_path):
        path = tmp_path / "bad.csv"
        rows = [
            "MMSI,BaseDateTime,LAT,LON,SOG,COG,Heading,Status",
            "200000001,1650000000,5.0,100.0,8.0,45.0,45,0",
            "200000002,1650000000,5.0",                     # short row
            "bogus,1650000000,5.0,100.0,8.0,45.0,45,0",     # bad mmsi
            "200000003,1650000000,5.0,100.0,8.0,45.0,xx,0",  # bad heading
        ]
        path.write_text("\n".join(rows) + "\n")
        batched = read_csv_batch(path)
        assert batched == list(read_csv(path))
        assert [r.mmsi for r in batched] == [200000001]

    def test_missing_required_column_yields_nothing(self, tmp_path):
        path = tmp_path / "headerless.csv"
        path.write_text("MMSI,LAT,LON\n200000001,5.0,100.0\n")
        assert read_csv_batch(path) == list(read_csv(path)) == []

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv_batch(path) == []
