"""Tests for repro.geo.rhumb."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    haversine_m,
    rhumb_bearing_deg,
    rhumb_destination,
    rhumb_distance_m,
)

LATS = st.floats(min_value=-70.0, max_value=70.0)
LONS = st.floats(min_value=-179.0, max_value=179.0)


def test_rhumb_along_meridian_equals_great_circle():
    rhumb = rhumb_distance_m(0.0, 10.0, 30.0, 10.0)
    great = haversine_m(0.0, 10.0, 30.0, 10.0)
    assert rhumb == pytest.approx(great, rel=1e-9)


def test_rhumb_along_equator_equals_great_circle():
    rhumb = rhumb_distance_m(0.0, 0.0, 0.0, 40.0)
    great = haversine_m(0.0, 0.0, 0.0, 40.0)
    assert rhumb == pytest.approx(great, rel=1e-9)


@given(lat1=LATS, lon1=LONS, lat2=LATS, lon2=LONS)
def test_rhumb_never_shorter_than_great_circle(lat1, lon1, lat2, lon2):
    rhumb = rhumb_distance_m(lat1, lon1, lat2, lon2)
    great = haversine_m(lat1, lon1, lat2, lon2)
    # Equality holds along meridians/equator; allow float rounding slack.
    assert rhumb >= great * (1.0 - 1e-9) - 1e-6


def test_rhumb_bearing_constant_quadrants():
    assert rhumb_bearing_deg(0.0, 0.0, 10.0, 0.0) == pytest.approx(0.0)
    assert rhumb_bearing_deg(0.0, 0.0, 0.0, 10.0) == pytest.approx(90.0)
    assert rhumb_bearing_deg(10.0, 0.0, 0.0, 0.0) == pytest.approx(180.0)
    assert rhumb_bearing_deg(0.0, 10.0, 0.0, 0.0) == pytest.approx(270.0)


def test_rhumb_takes_short_way_around():
    bearing = rhumb_bearing_deg(0.0, 170.0, 0.0, -170.0)
    assert bearing == pytest.approx(90.0)


@given(lat=LATS, lon=LONS, bearing=st.floats(min_value=0.0, max_value=359.9),
       distance=st.floats(min_value=100.0, max_value=1_000_000.0))
def test_rhumb_destination_roundtrip(lat, lon, bearing, distance):
    lat2, lon2 = rhumb_destination(lat, lon, bearing, distance)
    back = rhumb_distance_m(lat, lon, lat2, lon2)
    assert back == pytest.approx(distance, rel=1e-3, abs=2.0)


def test_rhumb_destination_due_east_keeps_latitude():
    lat2, lon2 = rhumb_destination(30.0, 0.0, 90.0, 500_000.0)
    assert lat2 == pytest.approx(30.0, abs=1e-9)
    assert lon2 > 0.0
