"""The driver: baseline ratchet, pragma suppression, reports, exit codes.

These tests exercise ``lint(...)`` (the function behind both ``repro
lint`` and ``python -m repro.analysis``) end to end against scratch
trees, covering the acceptance gauntlet: a deliberately-introduced raw
durable write / unlocked mutation / unregistered span name must make the
runner exit non-zero with the right rule id and line.
"""

from __future__ import annotations

import io
import json
import textwrap

import pytest

from repro.analysis import baseline
from repro.analysis.runner import (
    DEFAULT_RULES,
    analyze,
    lint,
    main,
)

CLEAN = """\
    def load(path):
        with open(path, "rb") as handle:
            return handle.read()
"""

RAW_WRITE = """\
    def publish(path, payload):
        with open(path, "w") as handle:
            handle.write(payload)
"""


def write_tree(tmp_path, files: dict[str, str]):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def run_lint(root, baseline_path, **kwargs):
    out = io.StringIO()
    code = lint(root=root, baseline_path=baseline_path, out=out, **kwargs)
    return code, out.getvalue()


# ------------------------------------------------------------ exit codes


def test_clean_tree_exits_zero(tmp_path):
    root = write_tree(tmp_path, {"inventory/reader.py": CLEAN})
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 0
    assert "invariants clean" in text


def test_injected_raw_write_fails_with_rule_and_line(tmp_path):
    root = write_tree(tmp_path, {"inventory/scratch.py": RAW_WRITE})
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "inventory/scratch.py:2: REP001" in text


def test_injected_unlocked_mutation_fails_with_rule_and_line(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "scratch.py": """\
                import threading


                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._seen = set()

                    def mark(self, key):
                        with self._lock:
                            self._seen.add(key)

                    def forget(self, key):
                        self._seen.discard(key)
            """
        },
    )
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "scratch.py:14: REP002" in text


def test_injected_unregistered_span_fails_with_rule_and_line(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "scratch.py": """\
                from repro.obs.trace import span


                def work():
                    with span("repro.rogue.name"):
                        pass
            """
        },
    )
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "scratch.py:5: REP003" in text


def test_syntax_error_is_an_unsuppressible_rep000(tmp_path):
    root = write_tree(tmp_path, {"broken.py": "def oops(:\n"})
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "REP000" in text and "does not parse" in text


# --------------------------------------------------------------- ratchet


def test_baseline_tolerates_recorded_violations(tmp_path):
    root = write_tree(tmp_path, {"inventory/scratch.py": RAW_WRITE})
    baseline_path = tmp_path / "baseline.json"
    baseline.save(
        baseline_path, {"REP001": {"inventory/scratch.py": 1}}
    )
    code, text = run_lint(root, baseline_path)
    assert code == 0
    assert "1 baselined" in text


def test_new_violation_beyond_baseline_fails(tmp_path):
    # the baseline covers one REP001 in this file; a second one appears
    root = write_tree(
        tmp_path,
        {
            "inventory/scratch.py": textwrap.dedent(RAW_WRITE)
            + "\n\ndef second(path):\n    return open(path, 'a')\n"
        },
    )
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path, {"REP001": {"inventory/scratch.py": 1}})
    code, text = run_lint(root, baseline_path)
    assert code == 1
    # the whole pair is reported: statically old and new are identical
    assert text.count("REP001") >= 2


def test_fixed_violation_makes_the_baseline_stale(tmp_path):
    root = write_tree(tmp_path, {"inventory/scratch.py": CLEAN})
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path, {"REP001": {"inventory/scratch.py": 1}})
    code, text = run_lint(root, baseline_path)
    assert code == 1
    assert "stale" in text and "--update-baseline" in text


def test_update_baseline_banks_the_fix_and_shrinks_the_file(tmp_path):
    root = write_tree(tmp_path, {"inventory/scratch.py": RAW_WRITE})
    baseline_path = tmp_path / "baseline.json"

    code, _ = run_lint(root, baseline_path, update_baseline=True)
    assert code == 0
    assert baseline.load(baseline_path) == {"REP001": {"inventory/scratch.py": 1}}
    assert run_lint(root, baseline_path)[0] == 0

    # fix it; the stale entry fails until the shrink is banked
    (root / "inventory/scratch.py").write_text(
        textwrap.dedent(CLEAN), encoding="utf-8"
    )
    assert run_lint(root, baseline_path)[0] == 1
    code, _ = run_lint(root, baseline_path, update_baseline=True)
    assert code == 0
    assert baseline.load(baseline_path) == {}
    assert run_lint(root, baseline_path)[0] == 0


def test_unreadable_baseline_is_a_hard_error(tmp_path):
    root = write_tree(tmp_path, {"inventory/reader.py": CLEAN})
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text('{"version": 99}', encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported baseline format"):
        run_lint(root, baseline_path)


# --------------------------------------------------------------- pragmas


def test_trailing_pragma_suppresses_the_finding(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "inventory/spill.py": """\
                def spill(path, payload):
                    with open(path, "w") as handle:  # repro: allow[REP001] scratch spill file, rebuilt on restart
                        handle.write(payload)
            """
        },
    )
    assert run_lint(root, tmp_path / "baseline.json")[0] == 0


def test_standalone_pragma_applies_to_the_next_line(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "inventory/spill.py": """\
                def spill(path, payload):
                    # repro: allow[REP001] scratch spill file, rebuilt on restart
                    with open(path, "w") as handle:
                        handle.write(payload)
            """
        },
    )
    assert run_lint(root, tmp_path / "baseline.json")[0] == 0


def test_pragma_without_reason_is_rep000_and_suppresses_nothing(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "inventory/spill.py": """\
                def spill(path, payload):
                    with open(path, "w") as handle:  # repro: allow[REP001]
                        handle.write(payload)
            """
        },
    )
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "REP000" in text and "needs a reason" in text
    assert "REP001" in text  # the finding itself still reported


def test_pragma_naming_unknown_rule_is_rep000(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "mod.py": """\
                # repro: allow[REPX, REP001] something
                VALUE = 1
            """
        },
    )
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "unknown rule ids: REPX" in text


def test_rep000_cannot_be_suppressed(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "mod.py": """\
                # repro: allow[REP000] nice try
                VALUE = 1
            """
        },
    )
    code, text = run_lint(root, tmp_path / "baseline.json")
    assert code == 1
    assert "cannot be suppressed" in text


def test_pragma_shaped_string_literal_is_not_a_pragma(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "mod.py": """\
                DOC = "write # repro: allow[REP001] <reason> next to the call"
            """
        },
    )
    assert run_lint(root, tmp_path / "baseline.json")[0] == 0


# --------------------------------------------------------------- reports


def test_json_report_shape(tmp_path):
    root = write_tree(tmp_path, {"inventory/scratch.py": RAW_WRITE})
    code, text = run_lint(root, tmp_path / "baseline.json", fmt="json")
    assert code == 1
    payload = json.loads(text)
    assert payload["ok"] is False
    (finding,) = payload["findings"]
    assert finding["rule"] == "REP001"
    assert finding["path"] == "inventory/scratch.py"
    assert finding["line"] == 2
    assert finding["baselined"] is False
    assert payload["counts"] == {"REP001": {"inventory/scratch.py": 1}}
    assert payload["summary"] == {"new": 1, "baselined": 0, "stale": 0}


def test_rules_flag_selects_a_subset(tmp_path):
    root = write_tree(tmp_path, {"inventory/scratch.py": RAW_WRITE})
    code, text = run_lint(
        root, tmp_path / "baseline.json", rules_spec="REP002,REP004"
    )
    assert code == 0  # REP001 not selected

    with pytest.raises(SystemExit, match="unknown rule id"):
        run_lint(root, tmp_path / "baseline.json", rules_spec="REP042")


def test_main_entry_point_matches_lint(tmp_path, capsys):
    root = write_tree(tmp_path, {"inventory/scratch.py": RAW_WRITE})
    argv = ["--root", str(root), "--baseline", str(tmp_path / "baseline.json")]
    assert main(argv) == 1
    assert "REP001" in capsys.readouterr().out
    assert main(argv + ["--update-baseline"]) == 0
    assert main(argv) == 0


# ------------------------------------------------------------- stability


def test_findings_are_sorted_and_deduplicated(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "world/b.py": "import random\n\n\ndef f():\n    return random.random()\n",
            "world/a.py": "import time\n\n\ndef g():\n    return time.time()\n",
        },
    )
    findings = analyze(root)
    assert findings == sorted(findings)
    assert len(set(findings)) == len(findings)
    assert [f.path for f in findings] == ["world/a.py", "world/b.py"]


def test_default_rule_ids_are_unique_and_titled():
    ids = [rule.id for rule in DEFAULT_RULES]
    assert len(set(ids)) == len(ids) == 9
    assert all(rule.title for rule in DEFAULT_RULES)
