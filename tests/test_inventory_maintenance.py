"""Background maintenance: the scheduler, the size-tiered policy, and
the backpressure valve.

The contracts under test (see docs/STORAGE.md):

- **Policy correctness** — :class:`CompactionPolicy` only ever selects a
  *contiguous, same-tier run* in table-age order (the associativity
  requirement: reads fold oldest-source-first, so only adjacent
  collapses preserve answers), preferring the smallest tier.
- **Fail-stop, never silent** — a crashed maintenance job resurfaces
  its *original* exception instance on the next write-path call, in
  both background and inline modes, and ``close()`` stays clean.
- **Bounded stall** — when maintenance falls behind its hard limits,
  ingest blocks for the configured wait and then fails with the typed
  :class:`IngestBackpressure`, leaving the rejected batch un-logged.
- **Snapshot isolation under load** — readers racing a background
  flush/compaction stream see batch-atomic, monotonically growing
  answers, and the final state is byte-identical to an inline run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.hexgrid import latlng_to_cell
from repro.inventory import GroupKey
from repro.inventory.compaction import CompactionPolicy, CompactionTask
from repro.inventory.live import LiveInventory
from repro.inventory.maintenance import (
    JOB_FLUSH,
    IngestBackpressure,
    MaintenanceConfig,
    MaintenanceScheduler,
)
from repro.inventory.memtable import IngestRecord

RESOLUTION = 6
LAT, LON = 1.25, 103.8  # every test record lands in this one cell
KEY = GroupKey(cell=latlng_to_cell(LAT, LON, RESOLUTION))


def _record(i: int) -> IngestRecord:
    return IngestRecord(
        mmsi=563_000_000 + (i % 7),
        ts=1_700_000_000.0 + i * 10.0,
        lat=LAT,
        lon=LON,
        sog=8.0 + (i % 5),
        cog=float((i * 31) % 360),
    )


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition not reached in time")
        time.sleep(0.005)


class _Boom(Exception):
    """A typed injected crash, so identity assertions are unambiguous."""


# -- the size-tiered policy ---------------------------------------------------------


class TestCompactionPolicy:
    def test_tiers_are_geometric(self):
        policy = CompactionPolicy(fanout=4, base_bytes=100)
        assert policy.tier_of(0) == 0
        assert policy.tier_of(100) == 0
        assert policy.tier_of(101) == 1
        assert policy.tier_of(400) == 1
        assert policy.tier_of(401) == 2
        assert policy.tier_of(100 * 4**3) == 3

    def test_fanout_validation(self):
        CompactionPolicy(fanout=0)  # disabled is legal
        CompactionPolicy(fanout=2)
        with pytest.raises(ValueError):
            CompactionPolicy(fanout=1)
        with pytest.raises(ValueError):
            CompactionPolicy(base_bytes=0)

    def test_disabled_policy_chooses_nothing(self):
        policy = CompactionPolicy(fanout=0, base_bytes=100)
        sizes = [10] * 50
        assert policy.choose(sizes) is None
        assert policy.debt_bytes(sizes) == 0

    def test_chooses_contiguous_same_tier_run(self):
        policy = CompactionPolicy(fanout=2, base_bytes=100)
        # [tier1, tier0, tier0] — only the trailing tier-0 pair is a run.
        task = policy.choose([300, 10, 20])
        assert task == CompactionTask(start=1, stop=3, tier=0, input_bytes=30)

    def test_interrupted_run_is_not_merged(self):
        policy = CompactionPolicy(fanout=3, base_bytes=100)
        # Three tier-0 tables exist but a tier-1 table splits them 2+1:
        # merging across it would reorder the oldest-first fold.
        assert policy.choose([10, 20, 300, 30]) is None

    def test_smallest_tier_wins_oldest_breaks_ties(self):
        policy = CompactionPolicy(fanout=2, base_bytes=100)
        # An eligible tier-1 run ahead of an eligible tier-0 run: the
        # cheap tier-0 merge is chosen even though it is younger.
        task = policy.choose([150, 180, 10, 20])
        assert (task.tier, task.start, task.stop) == (0, 2, 4)
        # Two tier-0 runs (split by tier 1): the older one wins.
        task = policy.choose([10, 20, 300, 30, 40])
        assert (task.tier, task.start, task.stop) == (0, 0, 2)

    def test_debt_sums_every_eligible_run(self):
        policy = CompactionPolicy(fanout=2, base_bytes=100)
        # tier0 run [10, 20] + tier1 run [150, 180]; the lone 10 after
        # the tier-1 run is not an eligible run.
        assert policy.debt_bytes([10, 20, 150, 180, 10]) == 360

    def test_tier_shape_buckets_counts_and_bytes(self):
        policy = CompactionPolicy(fanout=4, base_bytes=100)
        shape = policy.tier_shape([10, 20, 300, 300])
        assert shape == [
            {"tier": 0, "tables": 2, "bytes": 30},
            {"tier": 1, "tables": 2, "bytes": 600},
        ]


# -- the scheduler ------------------------------------------------------------------


class TestMaintenanceScheduler:
    def test_background_runs_submitted_jobs(self):
        ran = []
        scheduler = MaintenanceScheduler({"j": lambda: ran.append("j")})
        try:
            scheduler.submit("j")
            scheduler.wait_idle(timeout=5.0)
        finally:
            scheduler.close()
        assert ran == ["j"]

    def test_unknown_kind_is_rejected(self):
        scheduler = MaintenanceScheduler({"j": lambda: None}, background=False)
        with pytest.raises(ValueError, match="unknown maintenance job"):
            scheduler.submit("nope")
        scheduler.close()

    def test_pending_submissions_dedupe_but_running_requeues(self):
        started = threading.Event()
        release = threading.Event()
        count = [0]

        def job():
            count[0] += 1
            started.set()
            release.wait(5.0)

        scheduler = MaintenanceScheduler({"j": job})
        try:
            scheduler.submit("j")
            assert started.wait(5.0)
            # The kind is RUNNING, so one re-queue is accepted (that is
            # how cascading tier merges chain) — but only one: further
            # submits dedupe against the pending entry.
            scheduler.submit("j")
            scheduler.submit("j")
            scheduler.submit("j")
            assert scheduler.queue_depth() == 2  # 1 running + 1 pending
            release.set()
            scheduler.wait_idle(timeout=5.0)
        finally:
            scheduler.close()
        assert count[0] == 2

    def test_wait_idle_times_out(self):
        release = threading.Event()
        scheduler = MaintenanceScheduler({"j": lambda: release.wait(5.0)})
        try:
            scheduler.submit("j")
            with pytest.raises(TimeoutError):
                scheduler.wait_idle(timeout=0.05)
        finally:
            release.set()
            scheduler.close()

    def test_inline_error_propagates_and_fail_stops(self):
        boom = _Boom("inline")

        def job():
            raise boom

        scheduler = MaintenanceScheduler({"j": job}, background=False)
        with pytest.raises(_Boom) as excinfo:
            scheduler.submit("j")
        assert excinfo.value is boom
        assert scheduler.error is boom
        # Fail-stopped: later submits are dropped, not executed.
        scheduler.submit("j")
        with pytest.raises(_Boom):
            scheduler.wait_idle()
        scheduler.close()  # shutdown is cleanup, never a report channel

    def test_background_error_is_stored_and_reraised(self):
        boom = _Boom("background")

        def job():
            raise boom

        scheduler = MaintenanceScheduler({"j": job})
        try:
            scheduler.submit("j")
            _wait_until(lambda: scheduler.error is not None)
            assert scheduler.error is boom
            with pytest.raises(_Boom) as excinfo:
                scheduler.check()
            assert excinfo.value is boom
        finally:
            scheduler.close()


def test_maintenance_config_validation():
    with pytest.raises(ValueError):
        MaintenanceConfig(max_frozen_memtables=0)
    with pytest.raises(ValueError):
        MaintenanceConfig(max_debt_bytes=0)
    with pytest.raises(ValueError):
        MaintenanceConfig(backpressure_wait_s=-1.0)


# -- the live write path under background maintenance -------------------------------


class TestLiveBackgroundMaintenance:
    def test_watermark_flush_happens_off_the_ingest_path(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION,
            flush_records=10, tier_fanout=0,
        ) as inventory:
            ack = inventory.ingest([_record(i) for i in range(10)])
            # The ingest call only sealed and scheduled; the table write
            # happens on the maintenance thread.
            assert ack.flushed is True
            inventory.wait_maintenance(timeout=10.0)
            stats = inventory.ingest_stats()
            assert stats["maintenance"] == "background"
            assert stats["tables"] == 1 and stats["flushes"] == 1
            assert stats["memtable_records"] == 0
            assert stats["frozen_memtables"] == 0
            assert inventory.get(KEY).records == 10

    def test_backpressure_is_typed_and_batch_is_not_logged(self, tmp_path):
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION,
            flush_records=1, tier_fanout=0,
            max_frozen_memtables=1, backpressure_wait_s=0.05,
        ) as inventory:
            started = threading.Event()
            release = threading.Event()

            def stuck_flush():
                started.set()
                release.wait(10.0)

            inventory._scheduler._jobs[JOB_FLUSH] = stuck_flush
            inventory.ingest([_record(0)])  # seals; flush job wedges
            assert started.wait(5.0)
            with pytest.raises(IngestBackpressure) as excinfo:
                inventory.ingest([_record(1)])
            error = excinfo.value
            assert error.frozen_memtables >= 1
            assert error.waited_s == pytest.approx(0.05)
            stats = inventory.ingest_stats()
            assert stats["backpressure_waits"] >= 1
            assert stats["backpressure_timeouts"] >= 1
            # Un-wedge, restore the real job, and drain: the valve
            # clears and ingest flows again.
            release.set()
            inventory._scheduler._jobs[JOB_FLUSH] = inventory._job_flush
            inventory.wait_maintenance(timeout=10.0)
            assert inventory.flush() is not None
            inventory.ingest([_record(2)])
            inventory.wait_maintenance(timeout=10.0)
        # The refused batch was never WAL-appended: reopening serves
        # exactly the two accepted records.
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, flush_records=0
        ) as reopened:
            assert reopened.get(KEY).records == 2

    def test_background_job_crash_resurfaces_original_instance(self, tmp_path):
        boom = _Boom("injected maintenance crash")
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION,
            flush_records=1, tier_fanout=0,
        ) as inventory:
            def crash():
                raise boom

            inventory._scheduler._jobs[JOB_FLUSH] = crash
            inventory.ingest([_record(0)])  # schedules the crashing job
            _wait_until(lambda: inventory._scheduler.error is not None)
            with pytest.raises(_Boom) as excinfo:
                inventory.ingest([_record(1)])
            assert excinfo.value is boom  # typed errors stay typed
            assert (
                inventory.ingest_stats()["maintenance_error"]
                == "injected maintenance crash"
            )
            # close() (via the context manager) must stay clean.
        # Recovery is the same as for an inline crash: the WAL still
        # holds everything the unflushed memtable did.
        with LiveInventory(
            tmp_path / "live", resolution=RESOLUTION, flush_records=0
        ) as reopened:
            assert reopened.get(KEY).records == 1

    def test_concurrent_ingest_and_query_stress(self, tmp_path):
        """Readers racing the writer and the maintenance thread see
        batch-atomic, monotonically growing answers, and the final
        state is byte-identical to an inline-mode run of the same
        batches."""
        total_batches, batch_size = 30, 20
        kwargs = dict(
            resolution=RESOLUTION, flush_records=40,
            tier_fanout=2, tier_base_bytes=4096,
        )
        failures: list[BaseException] = []
        done = threading.Event()
        with LiveInventory(tmp_path / "live", **kwargs) as inventory:
            def writer():
                try:
                    n = 0
                    for _ in range(total_batches):
                        inventory.ingest(
                            [_record(n + i) for i in range(batch_size)]
                        )
                        n += batch_size
                except BaseException as exc:  # surfaced by the assert below
                    failures.append(exc)
                finally:
                    done.set()

            def reader():
                last = 0
                try:
                    while not done.is_set():
                        summary = inventory.get(KEY)
                        if summary is None:
                            continue
                        records = summary.records
                        assert records >= last, "snapshot went backwards"
                        assert records % batch_size == 0, "partial batch seen"
                        last = records
                except BaseException as exc:
                    failures.append(exc)

            threads = [threading.Thread(target=writer)]
            threads += [threading.Thread(target=reader) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
            assert not failures, failures
            inventory.wait_maintenance(timeout=30.0)
            assert inventory.get(KEY).records == total_batches * batch_size
            stats = inventory.ingest_stats()
            assert stats["flushes"] >= 1
            live_items = {
                key: summary.to_dict() for key, summary in inventory.items()
            }
        with LiveInventory(
            tmp_path / "ref", background_maintenance=False, **kwargs
        ) as reference:
            n = 0
            for _ in range(total_batches):
                reference.ingest([_record(n + i) for i in range(batch_size)])
                n += batch_size
            reference_items = {
                key: summary.to_dict() for key, summary in reference.items()
            }
        assert live_items == reference_items
