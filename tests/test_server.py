"""Tests for the concurrent query server (repro.server).

Three layers of guarantees:

- **protocol** — frames round-trip, summaries cross the wire
  bit-identically, limits are enforced from the length prefix;
- **equivalence** — every query type answered over TCP equals the
  in-process backend's answer on the same build (the serving layer adds
  transport, not interpretation);
- **fault isolation** — a malformed, oversized, stalled or slow client
  hurts only its own connection: concurrent clients keep their latency,
  the server keeps serving, and shutdown drains in-flight requests
  before closing.
"""

from __future__ import annotations

import io
import socket
import struct
import threading
import time

import pytest

from repro.apps import DestinationPredictor, EtaEstimator
from repro.inventory import (
    GroupKey,
    Inventory,
    SSTableInventory,
    write_inventory,
)
from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.inventory.keys import GroupingSet
from repro.inventory.summary import CellSummary
from repro.server import (
    InventoryClient,
    InventoryServer,
    InventoryService,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server import protocol


# -- helpers ---------------------------------------------------------------------


def _tiny_inventory() -> Inventory:
    """A two-cell in-memory inventory for fault tests (no pipeline run)."""
    inventory = Inventory(resolution=6)
    for i, (lat, lon) in enumerate([(5.0, 100.0), (6.0, 101.0)]):
        summary = CellSummary()
        for j in range(3):
            summary.update(
                mmsi=100_000_000 + j, sog=8.0 + i + j, cog=45.0, heading=45,
                trip_id=f"t{i}{j}", eto_s=60.0, ata_s=120.0,
                origin="CNSHA", destination="NLRTM", next_cell=None,
            )
        inventory.put(
            GroupKey(cell=latlng_to_cell(lat, lon, 6)), summary
        )
    return inventory


class _SlowService:
    """Wraps a service so chosen request types block for a while."""

    def __init__(self, inner, delay_s: float, slow_types=("ping",)) -> None:
        self.inner = inner
        self.delay_s = delay_s
        self.slow_types = slow_types

    def handle(self, request: dict) -> dict:
        if request.get("type") in self.slow_types:
            time.sleep(self.delay_s)
        return self.inner.handle(request)


def _raw_exchange(address, payload: bytes, read_response: bool = True):
    """Send raw bytes on a fresh socket; optionally read one frame back."""
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.sendall(payload)
        if not read_response:
            return None
        return protocol.read_frame_blocking(sock.makefile("rb").read)


# -- protocol round-trips --------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        message = {"id": 7, "type": "ping", "nested": {"a": [1, 2.5, None]}}
        frame = protocol.encode_frame(message)
        buffer = io.BytesIO(frame)
        assert protocol.read_frame_blocking(buffer.read) == message
        assert protocol.read_frame_blocking(buffer.read) is None  # clean EOF

    def test_multiple_frames_in_one_stream(self):
        frames = [{"id": i, "type": "ping"} for i in range(3)]
        stream = io.BytesIO(b"".join(protocol.encode_frame(f) for f in frames))
        assert [protocol.read_frame_blocking(stream.read) for _ in range(3)] == frames

    def test_oversized_frame_rejected_at_encode_and_decode(self):
        with pytest.raises(protocol.FrameTooLargeError):
            protocol.encode_frame({"blob": "x" * 2048}, max_bytes=1024)
        huge_header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(protocol.FrameTooLargeError):
            protocol.read_frame_blocking(io.BytesIO(huge_header).read)

    def test_truncated_frame_raises(self):
        frame = protocol.encode_frame({"id": 1, "type": "ping"})
        stream = io.BytesIO(frame[:-3])  # payload cut short
        with pytest.raises(protocol.TruncatedFrameError):
            protocol.read_frame_blocking(stream.read)

    def test_truncated_header_raises(self):
        stream = io.BytesIO(b"\x00\x00")
        with pytest.raises(protocol.TruncatedFrameError):
            protocol.read_frame_blocking(stream.read)

    def test_non_json_payload_rejected(self):
        payload = b"\xff\xfenot json"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.read_frame_blocking(io.BytesIO(frame).read)
        assert excinfo.value.code == protocol.ERR_BAD_FRAME

    def test_non_object_payload_rejected(self):
        frame = struct.pack(">I", 2) + b"[]"
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame_blocking(io.BytesIO(frame).read)

    def test_summary_wire_round_trip(self):
        inventory = _tiny_inventory()
        _, summary = next(iter(inventory.items()))
        wire = protocol.summary_to_wire(summary)
        assert isinstance(wire, str)
        restored = protocol.summary_from_wire(wire)
        assert restored.to_dict() == summary.to_dict()

    def test_undecodable_summary_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.summary_from_wire("AAAA")


# -- equivalence against the in-process backend ----------------------------------


@pytest.fixture(scope="module")
def served_backend(small_inventory, tmp_path_factory):
    """(address, disk backend) for a server over the small world's table."""
    path = tmp_path_factory.mktemp("served") / "inventory.sst"
    write_inventory(small_inventory, path)
    with SSTableInventory(path, cache_blocks=128) as backend:
        service = InventoryService(backend)
        with ServerThread(service) as handle:
            yield handle.address, backend


@pytest.fixture()
def client(served_backend):
    address, _ = served_backend
    with InventoryClient(*address) as connection:
        yield connection


@pytest.fixture(scope="module")
def cell_probes(small_inventory):
    """(lat, lon) probes over known cells plus one guaranteed miss."""
    probes = []
    for key, _ in small_inventory.items():
        if key.grouping_set is GroupingSet.CELL:
            probes.append(cell_to_latlng(key.cell))
            if len(probes) >= 8:
                break
    probes.append((-55.0, -130.0))  # southern-ocean miss
    return probes


class TestEquivalence:
    def test_ping(self, client):
        assert client.ping() is True

    def test_summary_at_matches_backend(self, served_backend, client, cell_probes):
        _, backend = served_backend
        for lat, lon in cell_probes:
            local = backend.summary_at(lat, lon)
            remote = client.summary_at(lat, lon)
            if local is None:
                assert remote is None
            else:
                assert remote.to_dict() == local.to_dict()

    def test_top_destinations_matches_backend(
        self, served_backend, client, cell_probes
    ):
        _, backend = served_backend
        for lat, lon in cell_probes:
            assert client.top_destinations_at(lat, lon) == (
                backend.top_destinations_at(lat, lon)
            )

    def test_route_cells_matches_backend(self, served_backend, client,
                                         small_inventory):
        _, backend = served_backend
        route_key = next(
            (key for key, _ in small_inventory.items()
             if key.grouping_set is GroupingSet.CELL_OD_TYPE),
            None,
        )
        if route_key is None:
            pytest.skip("small world produced no route groups")
        local = backend.route_cells(
            route_key.origin, route_key.destination, route_key.vessel_type
        )
        remote = client.route_cells(
            route_key.origin, route_key.destination, route_key.vessel_type
        )
        assert sorted(remote) == sorted(local)
        for cell, summary in local.items():
            assert remote[cell].to_dict() == summary.to_dict()

    def test_eta_matches_in_process_estimator(self, served_backend, client,
                                              small_inventory):
        _, backend = served_backend
        estimator = EtaEstimator(backend)
        sample = next(
            ((key, summary) for key, summary in small_inventory.items()
             if key.grouping_set is GroupingSet.CELL_OD_TYPE
             and summary.ata.count >= 3),
            None,
        )
        if sample is None:
            pytest.skip("small world produced no dense route cells")
        key, _ = sample
        lat, lon = cell_to_latlng(key.cell)
        local = estimator.estimate(
            lat, lon, vessel_type=key.vessel_type,
            origin=key.origin, destination=key.destination,
        )
        remote = client.eta(
            lat, lon, vessel_type=key.vessel_type,
            origin=key.origin, destination=key.destination,
        )
        assert local is not None and remote is not None
        assert remote == local  # both frozen dataclasses, field-exact

    def test_destination_matches_in_process_predictor(
        self, served_backend, client, cell_probes
    ):
        _, backend = served_backend
        track = cell_probes[:4]
        local = DestinationPredictor(backend).predict_track(list(track))
        remote = client.destination(list(track))
        assert remote["best"] == local.best()
        assert remote["observations"] == local.observations
        assert remote["matched_observations"] == local.matched_observations
        for (dest_r, share_r), (dest_l, share_l) in zip(
            remote["ranking"], local.ranking()
        ):
            assert dest_r == dest_l
            assert share_r == pytest.approx(share_l)

    def test_stats_exposes_inventory_and_server_views(self, client):
        stats = client.stats()
        assert stats["inventory"]["entries"] > 0
        assert "cache" in stats["inventory"]
        counters = stats["server"]["counters"]
        assert counters["server.requests"] >= 1
        assert counters["server.connections.opened"] >= 1

    def test_bad_request_reports_code(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.request("summary_at", lat="north", lon=3.0)
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        # Position-query invariants surface as bad_request too.
        with pytest.raises(ServerError) as excinfo:
            client.request("summary_at", lat=1.0, lon=2.0, origin="CNSHA")
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_unknown_request_type_keeps_connection_alive(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.request("teleport")
        assert excinfo.value.code == protocol.ERR_UNKNOWN_TYPE
        assert client.ping() is True  # same connection still serves


# -- fault isolation -------------------------------------------------------------


class TestFaults:
    @pytest.fixture()
    def fault_server(self):
        service = InventoryService(_tiny_inventory())
        config = ServerConfig(
            max_concurrency=4, request_timeout_s=2.0, idle_timeout_s=10.0,
            max_frame_bytes=64 * 1024, drain_timeout_s=5.0,
        )
        with ServerThread(service, config) as handle:
            yield handle

    def test_oversized_frame_gets_error_then_close(self, fault_server):
        huge = struct.pack(">I", 10 * 1024 * 1024)
        response = _raw_exchange(fault_server.address, huge)
        assert response is not None and response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_FRAME_TOO_LARGE
        # The connection was dropped, but the server still serves.
        with InventoryClient(*fault_server.address) as client:
            assert client.ping() is True

    def test_truncated_frame_drops_only_that_connection(self, fault_server):
        frame = protocol.encode_frame({"id": 1, "type": "ping"})
        _raw_exchange(fault_server.address, frame[:-2], read_response=False)
        time.sleep(0.1)
        with InventoryClient(*fault_server.address) as client:
            assert client.ping() is True
        counters = fault_server.server.metrics.counters
        assert counters.value(f"server.errors.{protocol.ERR_TRUNCATED}") >= 1

    def test_garbage_payload_rejected_cleanly(self, fault_server):
        payload = b"\xff\xfe\xfd garbage"
        frame = struct.pack(">I", len(payload)) + payload
        response = _raw_exchange(fault_server.address, frame)
        assert response is not None and response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_BAD_FRAME

    def test_request_deadline_exceeded(self):
        service = _SlowService(InventoryService(_tiny_inventory()), delay_s=1.5)
        config = ServerConfig(request_timeout_s=0.2, drain_timeout_s=0.5)
        with ServerThread(service, config) as handle:
            with InventoryClient(*handle.address) as client:
                started = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client.ping()
                elapsed = time.perf_counter() - started
        assert excinfo.value.code == protocol.ERR_DEADLINE
        assert elapsed < 1.0  # the answer was the deadline, not the sleep

    def test_stalled_writer_does_not_delay_other_clients(self, fault_server):
        """A connection that declares a frame and never finishes sending
        it must not add latency to well-behaved clients."""
        stalled = socket.create_connection(fault_server.address, timeout=5.0)
        try:
            stalled.sendall(struct.pack(">I", 512) + b"partial")
            time.sleep(0.05)  # let the server start (and block) reading it
            with InventoryClient(*fault_server.address) as client:
                latencies = []
                for _ in range(20):
                    started = time.perf_counter()
                    assert client.ping() is True
                    latencies.append(time.perf_counter() - started)
            assert max(latencies) < 0.5
        finally:
            stalled.close()

    def test_slow_request_does_not_block_fast_client(self):
        """One client stuck in a slow handler; another gets fast answers
        concurrently (bounded concurrency > 1 really is concurrent)."""
        service = _SlowService(
            InventoryService(_tiny_inventory()), delay_s=1.0,
            slow_types=("stats",),
        )
        config = ServerConfig(max_concurrency=4, request_timeout_s=5.0)
        with ServerThread(service, config) as handle:
            slow_done = threading.Event()

            def slow_caller():
                with InventoryClient(*handle.address) as slow_client:
                    slow_client.stats()
                slow_done.set()

            slow_thread = threading.Thread(target=slow_caller)
            slow_thread.start()
            time.sleep(0.1)  # the slow request is now in a worker thread
            with InventoryClient(*handle.address) as fast_client:
                started = time.perf_counter()
                for _ in range(5):
                    assert fast_client.ping() is True
                fast_elapsed = time.perf_counter() - started
            slow_thread.join(timeout=10)
        assert slow_done.is_set()
        assert fast_elapsed < 0.5

    def test_concurrent_clients_get_isolated_responses(self, served_backend):
        """Many threads, each with its own connection and its own probe:
        every response must match that client's request (no cross-talk)."""
        address, backend = served_backend
        probes = []
        for key, _ in backend.items():
            if key.grouping_set is GroupingSet.CELL:
                probes.append(cell_to_latlng(key.cell))
                if len(probes) >= 6:
                    break
        expected = [backend.summary_at(lat, lon) for lat, lon in probes]
        failures: list[str] = []

        def worker(index):
            lat, lon = probes[index % len(probes)]
            want = expected[index % len(probes)]
            with InventoryClient(address[0], address[1]) as worker_client:
                for _ in range(10):
                    got = worker_client.summary_at(lat, lon)
                    if (got is None) != (want is None) or (
                        got is not None and got.to_dict() != want.to_dict()
                    ):
                        failures.append(f"client {index} got a foreign answer")
                        return

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_graceful_shutdown_drains_in_flight_requests(self):
        """A request already executing when shutdown starts still gets its
        response; the connection closes afterwards."""
        service = _SlowService(InventoryService(_tiny_inventory()), delay_s=0.4)
        config = ServerConfig(request_timeout_s=5.0, drain_timeout_s=5.0)
        handle = ServerThread(service, config).start()
        results: dict = {}

        def in_flight_caller():
            try:
                with InventoryClient(*handle.address) as draining_client:
                    results["pong"] = draining_client.ping()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                results["error"] = exc

        caller = threading.Thread(target=in_flight_caller)
        caller.start()
        time.sleep(0.1)  # request is mid-handler now
        started = time.perf_counter()
        handle.stop()  # graceful drain
        drained_in = time.perf_counter() - started
        caller.join(timeout=10)
        assert results.get("pong") is True, results.get("error")
        assert drained_in < 4.0
        # After shutdown nothing is listening anymore.
        with pytest.raises(OSError):
            socket.create_connection(handle.address, timeout=0.5)

    def test_shutdown_with_idle_connections_is_prompt(self):
        service = InventoryService(_tiny_inventory())
        config = ServerConfig(idle_timeout_s=60.0, drain_timeout_s=5.0)
        handle = ServerThread(service, config).start()
        idle = socket.create_connection(handle.address, timeout=5.0)
        try:
            started = time.perf_counter()
            handle.stop()
            assert time.perf_counter() - started < 3.0
        finally:
            idle.close()


# -- config plumbing -------------------------------------------------------------


def test_server_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(max_concurrency=0)
    with pytest.raises(ValueError):
        ServerConfig(request_timeout_s=0.0)


def test_cli_serve_config_plumbing():
    from repro.cli import _build_parser, _serve_config

    parser = _build_parser()
    args = parser.parse_args([
        "serve", "--inventory", "inv.sst", "--host", "0.0.0.0",
        "--port", "9000", "--max-concurrency", "8",
        "--request-timeout", "2.5", "--idle-timeout", "7.5",
    ])
    config = _serve_config(args)
    assert (config.host, config.port) == ("0.0.0.0", 9000)
    assert config.max_concurrency == 8
    assert config.request_timeout_s == 2.5
    assert config.idle_timeout_s == 7.5
    assert args.handler is not None


def test_server_address_requires_start():
    with pytest.raises(RuntimeError):
        InventoryServer(InventoryService(_tiny_inventory())).address


# -- storage corruption under a live server --------------------------------------


class TestCorruptionResponses:
    """A checksum failure under a query becomes a typed ``data_corruption``
    error response on a live connection — never a wrong answer, never a
    dead socket — and is counted for operators."""

    @pytest.fixture()
    def corrupt_served(self, tmp_path):
        inventory = _tiny_inventory()
        path = tmp_path / "inventory.sst"
        write_inventory(inventory, path)
        payload = bytearray(path.read_bytes())
        # Scribble over the first data block (footer and index intact,
        # so the backend opens cleanly and fails only when a query
        # actually reads the damaged block).
        for offset in range(40, 90):
            payload[offset] ^= 0xFF
        path.write_bytes(bytes(payload))
        probe = cell_to_latlng(
            next(key for key, _ in inventory.items()).cell
        )
        with SSTableInventory(path, resolution=6, cache_blocks=8) as backend:
            service = InventoryService(backend)
            with ServerThread(service) as handle:
                yield handle, probe

    def test_corruption_is_typed_and_connection_survives(self, corrupt_served):
        handle, (lat, lon) = corrupt_served
        with InventoryClient(*handle.address) as client:
            with pytest.raises(ServerError) as exc_info:
                client.summary_at(lat, lon)
            assert exc_info.value.code == protocol.ERR_CORRUPTION
            # Same connection, next request: still alive, still typed.
            assert client.ping() is True
            with pytest.raises(ServerError) as exc_info:
                client.summary_at(lat, lon)
            assert exc_info.value.code == protocol.ERR_CORRUPTION

    def test_corruption_is_counted(self, corrupt_served):
        from repro.server.metrics import CORRUPTION_TOTAL

        handle, (lat, lon) = corrupt_served
        with InventoryClient(*handle.address) as client:
            with pytest.raises(ServerError):
                client.summary_at(lat, lon)
            counters = client.stats()["server"]["counters"]
        assert counters[CORRUPTION_TOTAL] == 1
        assert counters[f"server.errors.{protocol.ERR_CORRUPTION}"] == 1
        assert handle.server.metrics.corruption_errors == 1


# -- multi-request frames --------------------------------------------------------


class TestMultiRequests:
    """multi_get / multi_query: one frame, N sub-requests, ordered answers."""

    def test_multi_get_matches_n_singles(self, served_backend, client,
                                         cell_probes):
        _, backend = served_backend
        keys = [{"lat": lat, "lon": lon} for lat, lon in cell_probes]
        batched = client.multi_get(keys)
        assert len(batched) == len(keys)
        for (lat, lon), remote in zip(cell_probes, batched):
            local = backend.summary_at(lat, lon)
            if local is None:
                assert remote is None
            else:
                assert remote.to_dict() == local.to_dict()

    def test_multi_get_respects_per_key_filters(self, served_backend, client,
                                                small_inventory):
        _, backend = served_backend
        key = next(
            (k for k, _ in small_inventory.items()
             if k.grouping_set is GroupingSet.CELL_TYPE),
            None,
        )
        if key is None:
            pytest.skip("small world produced no per-type groups")
        lat, lon = cell_to_latlng(key.cell)
        plain, typed = client.multi_get([
            {"lat": lat, "lon": lon},
            {"lat": lat, "lon": lon, "vessel_type": key.vessel_type},
        ])
        local = backend.summary_at(lat, lon, vessel_type=key.vessel_type)
        assert typed is not None and local is not None
        assert typed.to_dict() == local.to_dict()
        assert plain is not None  # the unfiltered cell group exists too

    def test_multi_query_mixed_types_in_order(self, served_backend, client,
                                              cell_probes):
        _, backend = served_backend
        lat, lon = cell_probes[0]
        out = client.multi_query([
            {"type": "ping"},
            {"type": "summary_at", "lat": lat, "lon": lon},
            {"type": "top_destinations_at", "lat": lat, "lon": lon},
            {"type": "stats"},
        ])
        assert [entry["ok"] for entry in out] == [True] * 4
        assert out[0]["result"] == {"pong": True}
        raw = out[1]["result"]["summary"]
        local = backend.summary_at(lat, lon)
        assert protocol.summary_from_wire(raw).to_dict() == local.to_dict()
        assert out[3]["result"]["inventory"]["resolution"] == backend.resolution

    def test_multi_query_isolates_per_item_errors(self, client, cell_probes):
        lat, lon = cell_probes[0]
        out = client.multi_query([
            {"type": "summary_at", "lat": lat, "lon": lon},
            {"type": "summary_at", "lat": "bogus", "lon": lon},
            {"type": "no_such_type"},
            {"type": "ping"},
        ])
        assert [entry["ok"] for entry in out] == [True, False, False, True]
        assert out[1]["error"]["code"] == protocol.ERR_BAD_REQUEST
        assert "requests[1]" in out[1]["error"]["message"]
        assert out[2]["error"]["code"] == protocol.ERR_UNKNOWN_TYPE

    def test_item_cap_violation_is_typed_with_index(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.multi_query(
                [{"type": "ping"}] * (protocol.MAX_MULTI_ITEMS + 1)
            )
        err = exc_info.value
        assert err.code == protocol.ERR_FRAME_TOO_LARGE
        assert err.details == {"index": protocol.MAX_MULTI_ITEMS}
        assert str(protocol.MAX_MULTI_ITEMS) in str(err)
        # The violation was answered, not dropped: same connection works.
        assert client.ping() is True

    def test_byte_budget_violation_names_offending_index(self, small_inventory):
        # A service with a tiny frame budget: the second summary cannot
        # fit, and the error names sub-request 1 on a live connection.
        probe_key = next(
            key for key, _ in small_inventory.items()
            if key.grouping_set is GroupingSet.CELL
        )
        lat, lon = cell_to_latlng(probe_key.cell)
        wire = protocol.summary_to_wire(
            small_inventory.get(probe_key)
        )
        service = InventoryService(
            small_inventory, max_frame_bytes=1024 + len(wire) + 10
        )
        with ServerThread(service) as handle:
            with InventoryClient(*handle.address) as client:
                key = {"lat": lat, "lon": lon}
                [only] = client.multi_get([key])
                assert only is not None
                with pytest.raises(ServerError) as exc_info:
                    client.multi_get([key, key])
                err = exc_info.value
                assert err.code == protocol.ERR_FRAME_TOO_LARGE
                assert err.details == {"index": 1}
                assert client.ping() is True  # connection survived

    def test_nesting_rejected(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.multi_query(
                [{"type": "multi_get", "keys": [{"lat": 0.0, "lon": 0.0}]}]
            )
        assert exc_info.value.code == protocol.ERR_BAD_REQUEST

    def test_empty_and_malformed_lists_rejected(self, client):
        for params in ({"keys": []}, {"keys": "nope"}, {}):
            with pytest.raises(ServerError) as exc_info:
                client.request("multi_get", **params)
            assert exc_info.value.code == protocol.ERR_BAD_REQUEST
        with pytest.raises(ServerError) as exc_info:
            client.request("multi_get", keys=[42])
        assert exc_info.value.code == protocol.ERR_BAD_REQUEST
        assert "keys[0]" in str(exc_info.value)

    def test_bad_key_error_names_index(self, client):
        with pytest.raises(ServerError) as exc_info:
            client.multi_get(
                [{"lat": 0.0, "lon": 0.0}, {"lat": 0.0}]  # lon missing
            )
        err = exc_info.value
        assert err.code == protocol.ERR_BAD_REQUEST
        assert "keys[1]" in str(err)

    def test_multi_counters(self, small_inventory):
        from repro.server.metrics import MULTI_REJECTED, REQUESTS_BATCHED

        service = InventoryService(small_inventory)
        with ServerThread(service) as handle:
            with InventoryClient(*handle.address) as client:
                client.multi_get([{"lat": 0.0, "lon": 0.0}] * 3)
                client.multi_query([{"type": "ping"}] * 4)
                with pytest.raises(ServerError):
                    client.multi_query(
                        [{"type": "ping"}] * (protocol.MAX_MULTI_ITEMS + 1)
                    )
                counters = client.stats()["server"]["counters"]
        assert counters[REQUESTS_BATCHED] == 7
        assert counters[MULTI_REJECTED] == 1
        assert counters["server.requests.multi_get"] == 1
        assert counters["server.requests.multi_query"] == 1


class TestBindRetry:
    """EADDRINUSE resilience: parallel CI runners (and back-to-back test
    servers) transiently hold fixed ports; a bounded bind retry absorbs
    the window instead of failing the whole run."""

    def _occupy(self) -> socket.socket:
        blocker = socket.socket()
        blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        return blocker

    def test_retries_until_port_frees(self, small_inventory):
        blocker = self._occupy()
        port = blocker.getsockname()[1]
        # Free the port shortly after the first bind attempt fails.
        releaser = threading.Timer(0.3, blocker.close)
        releaser.start()
        try:
            config = ServerConfig(
                port=port, bind_retries=10, bind_retry_delay_s=0.1
            )
            with ServerThread(InventoryService(small_inventory), config) as handle:
                assert handle.address == ("127.0.0.1", port)
                with InventoryClient(*handle.address) as client:
                    assert client.ping()
        finally:
            releaser.cancel()
            blocker.close()

    def test_no_retries_raises_immediately(self, small_inventory):
        blocker = self._occupy()
        port = blocker.getsockname()[1]
        try:
            config = ServerConfig(port=port, bind_retries=0)
            handle = ServerThread(InventoryService(small_inventory), config)
            started = time.perf_counter()
            with pytest.raises(OSError):
                handle.start()
            assert time.perf_counter() - started < 2.0  # no retry loop
        finally:
            blocker.close()

    def test_ephemeral_port_never_retries(self, small_inventory):
        # Port 0 cannot collide; the retry knob must not add latency.
        config = ServerConfig(bind_retries=10, bind_retry_delay_s=5.0)
        started = time.perf_counter()
        with ServerThread(InventoryService(small_inventory), config) as handle:
            assert handle.address is not None
        assert time.perf_counter() - started < 5.0

    def test_bind_retry_validation(self):
        with pytest.raises(ValueError, match="bind retry"):
            ServerConfig(bind_retries=-1)
        with pytest.raises(ValueError, match="bind retry"):
            ServerConfig(bind_retry_delay_s=-0.1)
