"""Tests for repro.geo.circular."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    angular_difference_deg,
    circular_mean_deg,
    circular_std_deg,
    normalize_deg,
)

ANGLES = st.floats(min_value=-720.0, max_value=720.0)


@given(angle=ANGLES)
def test_normalize_range(angle):
    result = normalize_deg(angle)
    assert 0.0 <= result < 360.0


def test_normalize_examples():
    assert normalize_deg(-1.0) == 359.0
    assert normalize_deg(360.0) == 0.0
    assert normalize_deg(725.0) == pytest.approx(5.0)


@given(a=ANGLES, b=ANGLES)
def test_angular_difference_symmetric_and_bounded(a, b):
    diff = angular_difference_deg(a, b)
    assert 0.0 <= diff <= 180.0
    assert diff == pytest.approx(angular_difference_deg(b, a))


def test_angular_difference_wraps():
    assert angular_difference_deg(359.0, 1.0) == pytest.approx(2.0)
    assert angular_difference_deg(0.0, 180.0) == pytest.approx(180.0)


def test_circular_mean_wraps_north():
    assert circular_mean_deg([350.0, 10.0]) == pytest.approx(0.0, abs=1e-9)


def test_circular_mean_simple():
    assert circular_mean_deg([80.0, 100.0]) == pytest.approx(90.0)


def test_circular_mean_single_value():
    assert circular_mean_deg([123.0]) == pytest.approx(123.0)


def test_circular_mean_empty_raises():
    with pytest.raises(ValueError):
        circular_mean_deg([])


def test_circular_mean_cancelling_raises():
    with pytest.raises(ValueError):
        circular_mean_deg([0.0, 180.0])


def test_circular_std_zero_for_identical():
    assert circular_std_deg([42.0] * 10) == pytest.approx(0.0, abs=1e-6)


def test_circular_std_grows_with_spread():
    narrow = circular_std_deg([88.0, 92.0] * 5)
    wide = circular_std_deg([60.0, 120.0] * 5)
    assert wide > narrow


def test_circular_std_empty_raises():
    with pytest.raises(ValueError):
        circular_std_deg([])
