"""Tests for the ETA estimator and the destination predictor."""

import pytest

from repro.apps import (
    DestinationPredictor,
    EtaEstimator,
    great_circle_baseline_s,
)
from repro.hexgrid import cell_to_latlng
from repro.inventory.keys import GroupingSet


@pytest.fixture(scope="module")
def od_samples(small_inventory):
    """(lat, lon, key) samples for cells with route-level ATA history."""
    samples = []
    for key, summary in small_inventory.items():
        if key.grouping_set is GroupingSet.CELL_OD_TYPE and summary.ata.count >= 3:
            lat, lon = cell_to_latlng(key.cell)
            samples.append((lat, lon, key, summary))
            if len(samples) >= 20:
                break
    if not samples:
        pytest.skip("fixture world produced no dense route cells")
    return samples


class TestEtaEstimator:
    def test_route_level_estimate(self, small_inventory, od_samples):
        estimator = EtaEstimator(small_inventory)
        lat, lon, key, summary = od_samples[0]
        estimate = estimator.estimate(
            lat, lon, vessel_type=key.vessel_type,
            origin=key.origin, destination=key.destination,
        )
        assert estimate is not None
        assert estimate.grouping == "cell_od_type"
        assert estimate.samples == summary.ata.count
        assert estimate.p10_s <= estimate.p50_s <= estimate.p90_s
        assert estimate.mean_s > 0

    def test_fallback_to_type_then_cell(self, small_inventory, od_samples):
        estimator = EtaEstimator(small_inventory)
        lat, lon, key, _ = od_samples[0]
        estimate = estimator.estimate(
            lat, lon, vessel_type=key.vessel_type,
            origin="XXXXX", destination="YYYYY",
        )
        assert estimate is not None
        assert estimate.grouping in ("cell_type", "cell")

    def test_no_history_returns_none(self, small_inventory):
        estimator = EtaEstimator(small_inventory)
        assert estimator.estimate(-55.0, -140.0) is None  # empty Southern Pacific

    def test_min_samples_respected(self, small_inventory, od_samples):
        lat, lon, key, summary = od_samples[0]
        strict = EtaEstimator(small_inventory, min_samples=summary.ata.count + 1)
        estimate = strict.estimate(
            lat, lon, vessel_type=key.vessel_type,
            origin=key.origin, destination=key.destination,
        )
        assert estimate is None or estimate.grouping != "cell_od_type"

    def test_interval_contains(self, small_inventory, od_samples):
        estimator = EtaEstimator(small_inventory)
        lat, lon, key, _ = od_samples[0]
        estimate = estimator.estimate(
            lat, lon, vessel_type=key.vessel_type,
            origin=key.origin, destination=key.destination,
        )
        assert estimate.interval_contains(estimate.p50_s)
        assert not estimate.interval_contains(estimate.p90_s * 100 + 1e9)


class TestBaseline:
    def test_baseline_scales_with_distance(self):
        near = great_circle_baseline_s(0.0, 0.0, 0.0, 1.0)
        far = great_circle_baseline_s(0.0, 0.0, 0.0, 10.0)
        assert far == pytest.approx(10 * near, rel=0.01)

    def test_baseline_speed_validation(self):
        with pytest.raises(ValueError):
            great_circle_baseline_s(0.0, 0.0, 1.0, 1.0, service_speed_kn=0.0)

    def test_baseline_units(self):
        # 60 nm at 15 kn = 4 hours.
        seconds = great_circle_baseline_s(0.0, 0.0, 1.0, 0.0, service_speed_kn=15.0)
        assert seconds == pytest.approx(4 * 3600.0, rel=0.01)


class TestDestinationPredictor:
    def test_empty_state(self, small_inventory):
        predictor = DestinationPredictor(small_inventory)
        state = predictor.start()
        assert state.best() is None
        assert state.ranking() == []

    def test_votes_accumulate_along_true_route(self, small_world, small_inventory):
        from repro.world.routing import SeaRouter

        predictor = DestinationPredictor(small_inventory)
        router = SeaRouter()
        static = small_world.static_by_mmsi()
        scored = 0
        hits = 0
        for plan in small_world.voyages[:15]:
            track = router.route_positions(plan.origin, plan.destination)
            vessel_type = static[plan.mmsi].segment.value
            state = predictor.predict_track(track, vessel_type=vessel_type)
            if state.best() is None:
                continue
            scored += 1
            if state.best() == plan.destination:
                hits += 1
        assert scored > 0
        # Voting must beat the ~1/#ports random baseline by a wide margin.
        assert hits / scored > 0.10

    def test_ranking_is_normalised_and_sorted(self, small_world, small_inventory):
        from repro.world.routing import SeaRouter

        predictor = DestinationPredictor(small_inventory)
        router = SeaRouter()
        plan = small_world.voyages[0]
        track = router.route_positions(plan.origin, plan.destination)
        state = predictor.predict_track(track)
        ranking = state.ranking()
        if ranking:
            shares = [share for _, share in ranking]
            assert shares == sorted(shares, reverse=True)
            assert sum(shares) == pytest.approx(1.0)

    def test_observations_counted(self, small_inventory):
        predictor = DestinationPredictor(small_inventory)
        state = predictor.start()
        predictor.observe(state, -55.0, -140.0)  # empty ocean: no match
        assert state.observations == 1
        assert state.matched_observations == 0
