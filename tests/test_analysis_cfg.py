"""Corner cases of the CFG builder and the project call graph.

The interprocedural rules (REP007/REP008) are only as sound as these
two layers, so the hard shapes are pinned directly: ``try/finally``
with ``return`` in both arms, exception-suppressing ``with``,
comprehension bodies, ``async def``, decorated methods, and recursive
call chains (which must terminate with the conservative cyclic answer).
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import CallGraph, FuncRef
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.project import ImportMap, Project


def make_tree(root, files: dict[str, str]):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def cfg_of(source: str, index: int = 0, imports: ImportMap | None = None) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    funcs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    return build_cfg(funcs[index], imports)


def node_at(cfg: CFG, line: int):
    for node in cfg.statement_nodes():
        if node.line == line:
            return node
    raise AssertionError(f"no CFG node at line {line}")


def reaches(cfg: CFG, start: int, goal: int) -> bool:
    """Whether ``goal`` is reachable from ``start`` along any edge kind."""
    seen, stack = {start}, [start]
    while stack:
        node = cfg.nodes[stack.pop()]
        for succ in node.succ | node.exc:
            if succ == goal:
                return True
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


# ---------------------------------------------------------------- CFG shapes


def test_return_routes_through_finally():
    cfg = cfg_of(
        """
        def f(x):
            try:
                return 1
            finally:
                cleanup()
        """
    )
    ret = node_at(cfg, 4)
    cleanup = node_at(cfg, 6)
    # The return's successor is the finally region, never the exit directly.
    assert cfg.exit not in ret.succ
    assert reaches(cfg, ret.index, cleanup.index)
    assert reaches(cfg, cleanup.index, cfg.exit)


def test_try_finally_with_return_in_both_arms():
    cfg = cfg_of(
        """
        def f(x):
            try:
                return work()
            finally:
                return fallback()
        """
    )
    body_return = node_at(cfg, 4)
    finally_return = node_at(cfg, 6)
    # Both the normal and the exceptional leg of the body run the finally.
    assert reaches(cfg, body_return.index, finally_return.index)
    assert reaches(cfg, finally_return.index, cfg.exit)
    # Every path out of the function passes the finally's return.
    assert cfg.exit not in body_return.succ


def test_raise_has_only_exceptional_successors():
    cfg = cfg_of(
        """
        def f():
            raise ValueError("no")
        """
    )
    raise_node = node_at(cfg, 3)
    assert raise_node.succ == set()
    assert cfg.exit in raise_node.exc


def test_except_handler_catches_and_continues():
    cfg = cfg_of(
        """
        def f():
            try:
                risky()
            except ValueError:
                handle()
            after()
        """
    )
    risky = node_at(cfg, 4)
    handler_body = node_at(cfg, 6)
    after = node_at(cfg, 7)
    assert reaches(cfg, risky.index, handler_body.index)
    assert reaches(cfg, handler_body.index, after.index)
    # A non-matching exception still propagates to the exit.
    assert reaches(cfg, risky.index, cfg.exit)


def test_with_contextlib_suppress_routes_body_exception_past_the_with():
    source = """
        import contextlib


        def f():
            with contextlib.suppress(OSError):
                raise OSError
            after()
        """
    tree = ast.parse(textwrap.dedent(source))

    class _Fake:
        pass

    module = _Fake()
    module.tree = tree
    imports = ImportMap.of(module)
    func = next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )
    cfg = build_cfg(func, imports)
    raise_node = node_at(cfg, 7)
    after = node_at(cfg, 8)
    assert reaches(cfg, raise_node.index, after.index)


def test_plain_with_does_not_suppress():
    cfg = cfg_of(
        """
        def f(lock):
            with lock:
                raise OSError
            after()
        """
    )
    raise_node = node_at(cfg, 4)
    after = node_at(cfg, 5)
    assert not reaches(cfg, raise_node.index, after.index)


def test_loop_break_and_continue_edges():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                if item:
                    break
                continue
            after()
        """
    )
    head = node_at(cfg, 3)
    brk = node_at(cfg, 5)
    cont = node_at(cfg, 6)
    after = node_at(cfg, 7)
    assert reaches(cfg, brk.index, after.index)
    assert reaches(cfg, cont.index, head.index)


def test_async_def_builds_with_async_constructs():
    cfg = cfg_of(
        """
        async def f(source):
            async with source.lock():
                async for item in source:
                    await handle(item)
            return None
        """
    )
    assert node_at(cfg, 3).label == "AsyncWith"
    assert reaches(cfg, cfg.entry, cfg.exit)


def test_code_after_raise_is_unreachable():
    cfg = cfg_of(
        """
        def f():
            raise RuntimeError
            dead()
        """
    )
    dead = node_at(cfg, 4)
    assert dead.index not in cfg.reachable()


def test_catch_all_handler_removes_the_propagation_path():
    cfg = cfg_of(
        """
        def f():
            try:
                risky()
            except Exception:
                return None
            after()
        """
    )
    risky = node_at(cfg, 4)
    after = node_at(cfg, 7)
    assert reaches(cfg, risky.index, after.index) or reaches(
        cfg, risky.index, cfg.exit
    )
    # The only way from risky() to the exit is the handler's return or
    # normal completion — never an uncaught propagation edge from the
    # dispatch (except Exception is treated as catch-all).
    dispatch_nodes = [
        n for n in cfg.nodes if n.label == "join" and risky.exc == {n.index}
    ]
    assert dispatch_nodes, "risky() should raise into a dispatch join"
    handler_heads = [
        cfg.nodes[i] for i in dispatch_nodes[0].succ
    ]
    assert all(head.label == "except" for head in handler_heads)


# ---------------------------------------------------------------- call graph


def project_of(tmp_path, files):
    return Project.load(make_tree(tmp_path, files))


def test_self_method_and_module_function_resolution(tmp_path):
    project = project_of(
        tmp_path,
        {
            "pkg/mod.py": """\
                def helper():
                    return 1


                class Thing:
                    def outer(self):
                        self.inner()
                        return helper()

                    def inner(self):
                        return 2
            """,
        },
    )
    graph = CallGraph.of(project)
    outer = FuncRef(rel="pkg/mod.py", qualname="Thing.outer")
    assert FuncRef(rel="pkg/mod.py", qualname="Thing.inner") in graph.direct(outer)
    assert FuncRef(rel="pkg/mod.py", qualname="helper") in graph.direct(outer)


def test_cross_module_resolution_through_imports(tmp_path):
    # The package name the import map resolves against is the analysis
    # root's directory name.
    root = make_tree(
        tmp_path / "pkg",
        {
            "util.py": """\
                def shared():
                    return 1


                class Widget:
                    def __init__(self):
                        self.x = 1
            """,
            "app.py": """\
                from pkg.util import shared
                from pkg import util


                def run():
                    shared()
                    util.shared()
                    w = util.Widget()
                    return w
            """,
        },
    )
    project = Project.load(root)
    graph = CallGraph.of(project)
    run = FuncRef(rel="app.py", qualname="run")
    assert FuncRef(rel="util.py", qualname="shared") in graph.direct(run)
    assert FuncRef(rel="util.py", qualname="Widget.__init__") in graph.direct(run)


def test_recursion_terminates_with_cyclic_reachability(tmp_path):
    project = project_of(
        tmp_path,
        {
            "pkg/rec.py": """\
                def ping():
                    return pong()


                def pong():
                    return ping()


                def solo():
                    return solo()
            """,
        },
    )
    graph = CallGraph.of(project)
    ping = FuncRef(rel="pkg/rec.py", qualname="ping")
    pong = FuncRef(rel="pkg/rec.py", qualname="pong")
    solo = FuncRef(rel="pkg/rec.py", qualname="solo")
    assert graph.reachable(ping) == frozenset({ping, pong})
    assert graph.reachable(solo) == frozenset({solo})


def test_decorated_methods_stay_in_the_graph(tmp_path):
    project = project_of(
        tmp_path,
        {
            "pkg/deco.py": """\
                import functools


                class Api:
                    @functools.lru_cache
                    def cached(self):
                        return self.raw()

                    def raw(self):
                        return 1

                    def use(self):
                        return self.cached()
            """,
        },
    )
    graph = CallGraph.of(project)
    use = FuncRef(rel="pkg/deco.py", qualname="Api.use")
    cached = FuncRef(rel="pkg/deco.py", qualname="Api.cached")
    raw = FuncRef(rel="pkg/deco.py", qualname="Api.raw")
    assert cached in graph.direct(use)
    assert raw in graph.reachable(use)


def test_calls_inside_comprehensions_resolve(tmp_path):
    project = project_of(
        tmp_path,
        {
            "pkg/comp.py": """\
                def score(item):
                    return item


                def rank(items):
                    return [score(i) for i in items if score(i) > 0]
            """,
        },
    )
    graph = CallGraph.of(project)
    rank = FuncRef(rel="pkg/comp.py", qualname="rank")
    assert FuncRef(rel="pkg/comp.py", qualname="score") in graph.direct(rank)


def test_dynamic_calls_stay_unresolved(tmp_path):
    project = project_of(
        tmp_path,
        {
            "pkg/dyn.py": """\
                class Box:
                    def run(self, callback, other):
                        callback()
                        other.method()
                        getattr(self, "x")()
            """,
        },
    )
    graph = CallGraph.of(project)
    run = FuncRef(rel="pkg/dyn.py", qualname="Box.run")
    assert graph.direct(run) == frozenset()


def test_callgraph_is_cached_per_project(tmp_path):
    project = project_of(tmp_path, {"pkg/a.py": "def f():\n    return 1\n"})
    assert CallGraph.of(project) is CallGraph.of(project)
