"""Tests for repro.hexgrid.hexmath (pure lattice geometry)."""

import pytest
from hypothesis import given, strategies as st

from repro.hexgrid.hexmath import (
    axial_round,
    axial_to_plane,
    hex_corners,
    hex_disk,
    hex_distance,
    hex_line,
    hex_neighbors,
    hex_ring,
    plane_to_axial,
    point_in_hex,
)

AXIAL = st.integers(min_value=-500, max_value=500)


@given(q=AXIAL, r=AXIAL)
def test_plane_roundtrip(q, r):
    x, y = axial_to_plane(q, r, size=100.0)
    fq, fr = plane_to_axial(x, y, size=100.0)
    assert axial_round(fq, fr) == (q, r)


@given(q=AXIAL, r=AXIAL)
def test_neighbors_are_at_distance_one(q, r):
    for nq, nr in hex_neighbors(q, r):
        assert hex_distance(q, r, nq, nr) == 1


def test_neighbor_count_and_uniqueness():
    neighbors = hex_neighbors(3, -2)
    assert len(neighbors) == 6
    assert len(set(neighbors)) == 6


@given(q=AXIAL, r=AXIAL, k=st.integers(min_value=0, max_value=8))
def test_ring_size(q, r, k):
    ring = hex_ring(q, r, k)
    expected = 1 if k == 0 else 6 * k
    assert len(ring) == expected
    assert len(set(ring)) == expected
    for cell in ring:
        assert hex_distance(q, r, *cell) == k


@given(q=AXIAL, r=AXIAL, k=st.integers(min_value=0, max_value=6))
def test_disk_size(q, r, k):
    disk = hex_disk(q, r, k)
    expected = 1 + 3 * k * (k + 1)
    assert len(disk) == expected
    assert len(set(disk)) == expected
    assert disk[0] == (q, r)


def test_ring_rejects_negative_radius():
    with pytest.raises(ValueError):
        hex_ring(0, 0, -1)


@given(q1=AXIAL, r1=AXIAL, q2=AXIAL, r2=AXIAL)
def test_distance_is_a_metric(q1, r1, q2, r2):
    d = hex_distance(q1, r1, q2, r2)
    assert d >= 0
    assert (d == 0) == ((q1, r1) == (q2, r2))
    assert d == hex_distance(q2, r2, q1, r1)


@given(q1=AXIAL, r1=AXIAL, q2=AXIAL, r2=AXIAL)
def test_line_connects_endpoints_with_neighbor_steps(q1, r1, q2, r2):
    line = hex_line(q1, r1, q2, r2)
    assert line[0] == (q1, r1)
    assert line[-1] == (q2, r2)
    assert len(line) == hex_distance(q1, r1, q2, r2) + 1
    for a, b in zip(line, line[1:]):
        assert hex_distance(*a, *b) == 1


def test_corners_are_equidistant_from_center():
    import math

    corners = hex_corners(2, -1, size=50.0)
    cx, cy = axial_to_plane(2, -1, size=50.0)
    assert len(corners) == 6
    for x, y in corners:
        assert math.hypot(x - cx, y - cy) == pytest.approx(50.0)


def test_point_in_hex_center_and_outside():
    x, y = axial_to_plane(4, 4, size=10.0)
    assert point_in_hex(x, y, 4, 4, size=10.0)
    assert not point_in_hex(x + 100.0, y, 4, 4, size=10.0)
