"""Tests for the GeoJSON export."""

import json
import math

import pytest

from repro.geo import haversine_m
from repro.hexgrid import cell_to_latlng, latlng_to_cell
from repro.inventory import GroupKey, Inventory
from repro.inventory.export import (
    cell_feature,
    inventory_to_geojson,
    write_geojson,
)
from repro.inventory.summary import CellSummary


def _summary(records=4):
    summary = CellSummary()
    for i in range(records):
        summary.update(
            mmsi=100_000_000 + i, sog=11.0, cog=45.0, heading=44,
            trip_id=f"t{i}", eto_s=10.0, ata_s=7200.0,
            origin="CNSHA", destination="SGSIN",
        )
    return summary


@pytest.fixture()
def inventory():
    store = Inventory(resolution=6)
    for i in range(6):
        cell = latlng_to_cell(1.0 + 0.2 * i, 103.0, 6)
        store.put(GroupKey(cell=cell), _summary(records=2 + i))
        store.put(GroupKey(cell=cell, vessel_type="cargo"), _summary(records=1))
    return store


def test_cell_feature_shape():
    cell = latlng_to_cell(51.9, 3.9, 6)
    feature = cell_feature(cell, _summary())
    assert feature["type"] == "Feature"
    ring = feature["geometry"]["coordinates"][0]
    assert len(ring) == 7  # hexagon + closing vertex
    assert ring[0] == ring[-1]
    props = feature["properties"]
    assert props["records"] == 4
    assert props["top_destination"] == "SGSIN"
    assert props["mean_ata_h"] == 2.0
    assert props["cell"] == f"{cell:016x}"


def test_feature_vertices_surround_center():
    cell = latlng_to_cell(-33.9, 18.4, 6)
    feature = cell_feature(cell, _summary())
    center = cell_to_latlng(cell)
    for lon, lat in feature["geometry"]["coordinates"][0][:-1]:
        assert haversine_m(lat, lon, *center) < 12_000


def test_antimeridian_cells_do_not_span_the_world():
    cell = latlng_to_cell(0.0, 179.99, 6)
    feature = cell_feature(cell, _summary())
    lons = [lon for lon, _ in feature["geometry"]["coordinates"][0]]
    assert max(lons) - min(lons) < 180.0


def test_collection_counts_and_order(inventory):
    collection = inventory_to_geojson(inventory)
    assert collection["type"] == "FeatureCollection"
    assert len(collection["features"]) == 6
    counts = [f["properties"]["records"] for f in collection["features"]]
    assert counts == sorted(counts, reverse=True)


def test_vessel_type_export(inventory):
    collection = inventory_to_geojson(inventory, vessel_type="cargo")
    assert len(collection["features"]) == 6
    assert all(f["properties"]["records"] == 1 for f in collection["features"])
    assert inventory_to_geojson(inventory, vessel_type="tanker")["features"] == []


def test_predicate_and_cap(inventory):
    dense = inventory_to_geojson(
        inventory, predicate=lambda s: s.records >= 5
    )
    assert len(dense["features"]) == 3
    capped = inventory_to_geojson(inventory, max_features=2)
    assert len(capped["features"]) == 2
    assert capped["features"][0]["properties"]["records"] == 7


def test_write_geojson_roundtrips_as_json(tmp_path, inventory):
    path = tmp_path / "cells.geojson"
    count = write_geojson(inventory, path)
    assert count == 6
    parsed = json.loads(path.read_text())
    assert parsed["type"] == "FeatureCollection"
    assert len(parsed["features"]) == 6
    # Every coordinate is a finite number (valid GeoJSON).
    for feature in parsed["features"]:
        for lon, lat in feature["geometry"]["coordinates"][0]:
            assert math.isfinite(lon) and math.isfinite(lat)


def test_small_world_export(small_inventory, tmp_path):
    path = tmp_path / "world.geojson"
    count = write_geojson(small_inventory, path, max_features=500)
    assert 0 < count <= 500
    assert path.stat().st_size > 1000
