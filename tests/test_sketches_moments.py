"""Tests for MomentsSketch against exact references."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sketches import MomentsSketch

VALUES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


def _fill(values):
    sketch = MomentsSketch()
    for value in values:
        sketch.update(value)
    return sketch


def test_empty_sketch_defaults():
    sketch = MomentsSketch()
    assert sketch.count == 0
    assert sketch.variance == 0.0
    assert sketch.std == 0.0


def test_single_value():
    sketch = _fill([42.0])
    assert sketch.mean == 42.0
    assert sketch.std == 0.0
    assert sketch.min_value == sketch.max_value == 42.0


@given(values=VALUES)
def test_mean_matches_exact(values):
    sketch = _fill(values)
    assert sketch.mean == pytest.approx(statistics.fmean(values), rel=1e-9, abs=1e-6)


@given(values=VALUES)
def test_std_matches_exact(values):
    sketch = _fill(values)
    exact = statistics.pstdev(values)
    assert sketch.std == pytest.approx(exact, rel=1e-6, abs=1e-5)


@given(values=VALUES)
def test_extrema_match(values):
    sketch = _fill(values)
    assert sketch.min_value == min(values)
    assert sketch.max_value == max(values)


@given(values=VALUES, split=st.integers(min_value=0, max_value=200))
def test_split_merge_equals_whole(values, split):
    split = min(split, len(values))
    left = _fill(values[:split])
    right = _fill(values[split:])
    left.merge(right)
    whole = _fill(values)
    assert left.count == whole.count
    assert left.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-6)
    assert left.std == pytest.approx(whole.std, rel=1e-6, abs=1e-5)


def test_merge_empty_into_nonempty_and_back():
    full = _fill([1.0, 2.0, 3.0])
    empty = MomentsSketch()
    full.merge(MomentsSketch())
    assert full.count == 3
    empty.merge(full)
    assert empty.count == 3
    assert empty.mean == pytest.approx(2.0)


@given(values=VALUES)
def test_dict_roundtrip(values):
    sketch = _fill(values)
    restored = MomentsSketch.from_dict(sketch.to_dict())
    assert restored.count == sketch.count
    assert restored.mean == pytest.approx(sketch.mean, rel=1e-12)
    assert restored.min_value == sketch.min_value


def test_empty_dict_roundtrip():
    restored = MomentsSketch.from_dict(MomentsSketch().to_dict())
    assert restored.count == 0
    assert restored.min_value == math.inf


def test_variance_never_negative_under_cancellation():
    sketch = _fill([1e8, 1e8 + 1e-4, 1e8 - 1e-4])
    assert sketch.variance >= 0.0
