"""Scheduler equivalence and metrics instrumentation tests."""

import operator

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.scheduler import (
    ProcessScheduler,
    SerialScheduler,
    ThreadScheduler,
    WorkerError,
    make_scheduler,
)


REFERENCE_DATA = [(i % 13, i) for i in range(5000)]


def _reference():
    result: dict = {}
    for key, value in REFERENCE_DATA:
        result[key] = result.get(key, 0) + value
    return result


@pytest.mark.parametrize("scheduler", ["serial", "threads", "processes"])
def test_all_schedulers_agree(scheduler):
    with Engine(
        EngineConfig(num_partitions=4, scheduler=scheduler, max_workers=2)
    ) as engine:
        result = dict(
            engine.parallelize(REFERENCE_DATA).reduce_by_key(operator.add).collect()
        )
    assert result == _reference()


@pytest.mark.parametrize("scheduler", ["serial", "threads", "processes"])
def test_schedulers_run_lambda_closures(scheduler):
    captured = {"offset": 7}
    with Engine(
        EngineConfig(num_partitions=3, scheduler=scheduler, max_workers=2)
    ) as engine:
        result = engine.parallelize(range(10)).map(
            lambda x: x + captured["offset"]
        ).collect()
    assert result == [x + 7 for x in range(10)]


def test_scheduler_factory():
    assert isinstance(make_scheduler("serial"), SerialScheduler)
    assert isinstance(make_scheduler("threads"), ThreadScheduler)
    assert isinstance(make_scheduler("processes"), ProcessScheduler)
    with pytest.raises(ValueError):
        make_scheduler("gpu")


def test_worker_validation():
    with pytest.raises(ValueError):
        ThreadScheduler(0)
    with pytest.raises(ValueError):
        ProcessScheduler(0)


def test_process_scheduler_preserves_partition_order():
    scheduler = ProcessScheduler(max_workers=3)
    partitions = [[i] for i in range(10)]
    result = scheduler.run(lambda index, part: [part[0] * 10], partitions)
    assert result == [[i * 10] for i in range(10)]


def test_process_scheduler_empty_input():
    assert ProcessScheduler(2).run(lambda i, p: p, []) == []


def test_process_scheduler_surfaces_worker_failure():
    scheduler = ProcessScheduler(max_workers=2)

    def boom(index, part):
        raise RuntimeError("worker exploded")

    with pytest.raises(RuntimeError):
        scheduler.run(boom, [[1], [2]])


def test_process_scheduler_carries_worker_traceback():
    """The parent's WorkerError must contain the worker's *real*
    traceback — exception type, message and the raising line — not a
    'go reproduce it serially' shrug."""
    scheduler = ProcessScheduler(max_workers=2)

    def boom(index, part):
        raise KeyError(f"missing-key-{index}")

    with pytest.raises(WorkerError) as exc_info:
        scheduler.run(boom, [[1], [2], [3]])
    message = str(exc_info.value)
    assert "KeyError" in message
    assert "missing-key-" in message
    assert "Traceback" in message
    assert exc_info.value.tracebacks
    assert any("boom" in tb for tb in exc_info.value.tracebacks)


def test_process_scheduler_reports_unpicklable_results_with_traceback():
    scheduler = ProcessScheduler(max_workers=2)

    def unpicklable(index, part):
        return [lambda: index]  # lambdas don't pickle

    with pytest.raises(WorkerError) as exc_info:
        scheduler.run(unpicklable, [[1], [2]])
    assert "pickle" in str(exc_info.value).lower()


class TestRetries:
    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            SerialScheduler(retries=-1)
        with pytest.raises(ValueError):
            ThreadScheduler(retries=0, backoff=-0.5)

    def test_factory_passes_retry_policy_through(self):
        scheduler = make_scheduler("threads", retries=3, backoff=0.25)
        assert scheduler.retries == 3
        assert scheduler.backoff == 0.25

    def test_engine_config_passes_retry_policy_through(self):
        with Engine(
            EngineConfig(scheduler="threads", scheduler_retries=2,
                         scheduler_backoff=0.0)
        ) as engine:
            assert engine.scheduler.retries == 2

    @pytest.mark.parametrize("name", ["serial", "threads"])
    def test_transient_failures_are_retried(self, name):
        import threading

        scheduler = make_scheduler(name, max_workers=2, retries=2, backoff=0.0)
        lock = threading.Lock()
        attempts: dict[int, int] = {}

        def flaky(index, part):
            with lock:
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] <= 2:
                    raise OSError("transient")
            return [value * 2 for value in part]

        try:
            result = scheduler.run(flaky, [[1], [2], [3]])
        finally:
            scheduler.close()
        assert result == [[2], [4], [6]]
        assert all(count == 3 for count in attempts.values())

    def test_process_scheduler_retries_inside_workers(self, tmp_path):
        # Worker processes don't share memory: count attempts on disk.
        scheduler = ProcessScheduler(max_workers=2, retries=2, backoff=0.0)

        def flaky(index, part):
            marker = tmp_path / f"attempts-{index}"
            seen = len(marker.read_bytes()) if marker.exists() else 0
            marker.write_bytes(b"x" * (seen + 1))
            if seen < 2:
                raise OSError("transient")
            return [value + 10 for value in part]

        result = scheduler.run(flaky, [[1], [2], [3]])
        assert result == [[11], [12], [13]]

    def test_attempt_budget_is_finite(self):
        scheduler = SerialScheduler(retries=2, backoff=0.0)
        attempts = []

        def always_fails(index, part):
            attempts.append(index)
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            scheduler.run(always_fails, [[1]])
        assert len(attempts) == 3  # 1 try + 2 retries, then give up

    def test_backoff_doubles_between_attempts(self, monkeypatch):
        from repro.engine import scheduler as scheduler_module

        delays = []
        monkeypatch.setattr(scheduler_module, "_sleep", delays.append)
        scheduler = SerialScheduler(retries=3, backoff=0.1)

        def always_fails(index, part):
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError):
            scheduler.run(always_fails, [[1]])
        assert delays == [0.1, 0.2, 0.4]


def test_metrics_record_rows_and_stages():
    with Engine(EngineConfig(num_partitions=4, collect_metrics=True)) as engine:
        (
            engine.parallelize(range(100))
            .filter(lambda x: x % 2 == 0)
            .key_by(lambda x: x % 5)
            .reduce_by_key(operator.add)
            .collect()
        )
        metrics = engine.metrics
        assert metrics is not None
        labels = [stage.label for stage in metrics.stages]
        assert any("filter" in label for label in labels)
        assert any("reduce_by_key" in label for label in labels)
        filter_stage = next(s for s in metrics.stages if "filter" in s.label)
        assert filter_stage.rows_in == 100
        assert filter_stage.rows_out == 50
        assert metrics.total_seconds() >= 0.0
        by_label = metrics.by_label()
        assert set(by_label) == set(labels)
        metrics.clear()
        assert metrics.stages == []


def test_metrics_disabled_by_default():
    with Engine(EngineConfig(num_partitions=2)) as engine:
        engine.parallelize([1]).map(lambda x: x).collect()
        assert engine.metrics is None


def test_thread_scheduler_reaps_outstanding_tasks_on_failure():
    """When one partition raises, run() must not abandon in-flight tasks:
    started tasks are awaited and queued ones cancelled before the
    exception propagates, so nothing mutates shared state afterwards."""
    import threading
    import time

    scheduler = ThreadScheduler(max_workers=2)
    lock = threading.Lock()
    completions: list[int] = []

    def task(index, part):
        if index == 0:
            raise RuntimeError("partition zero exploded")
        time.sleep(0.15)
        with lock:
            completions.append(index)
        return part

    try:
        with pytest.raises(RuntimeError, match="partition zero"):
            scheduler.run(task, [[0], [1], [2], [3], [4], [5]])
        with lock:
            settled = list(completions)
        # Nothing may still be running: any queued task was cancelled,
        # any started task finished *before* run() raised.
        time.sleep(0.3)
        with lock:
            assert completions == settled
    finally:
        scheduler.close()


def test_thread_scheduler_reusable_after_failure():
    scheduler = ThreadScheduler(max_workers=2)
    try:
        with pytest.raises(ValueError):
            scheduler.run(
                lambda i, part: (_ for _ in ()).throw(ValueError("boom")),
                [[1], [2]],
            )
        assert scheduler.run(lambda i, part: [x * 2 for x in part],
                             [[1], [2]]) == [[2], [4]]
    finally:
        scheduler.close()


def test_counter_set_increments_are_thread_safe():
    """8 threads x 25k increments on one counter must not drop a single
    event (the unguarded read-modify-write did, under preemption)."""
    import threading

    from repro.engine.metrics import CounterSet

    counters = CounterSet()
    threads_n, per_thread = 8, 25_000

    def hammer():
        for _ in range(per_thread):
            counters.increment("shared")

    threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counters.value("shared") == threads_n * per_thread
