"""Tests for the adaptive multi-resolution inventory (§5 future work)."""

import pytest

from repro.hexgrid import cell_to_latlng, get_resolution, latlng_to_cell
from repro.inventory import GroupKey, Inventory
from repro.inventory.adaptive import AdaptiveInventory, build_adaptive
from repro.inventory.keys import GroupingSet
from repro.inventory.summary import CellSummary


def _summary(records, mmsi_base=0):
    summary = CellSummary()
    for i in range(records):
        summary.update(
            mmsi=100_000_000 + mmsi_base + i, sog=10.0, cog=90.0, heading=90,
            trip_id=f"t{mmsi_base + i}", eto_s=10.0, ata_s=20.0,
            origin="AAAAA", destination="BBBBB",
        )
    return summary


def _inventory_with(cells_and_counts, resolution=7):
    inventory = Inventory(resolution=resolution)
    for index, (cell, count) in enumerate(cells_and_counts):
        inventory.put(GroupKey(cell=cell), _summary(count, mmsi_base=index * 100))
        inventory.put(
            GroupKey(cell=cell, vessel_type="cargo"),
            _summary(count, mmsi_base=index * 100),
        )
    return inventory


def test_validation():
    with pytest.raises(ValueError):
        AdaptiveInventory(fine_resolution=5, coarse_resolution=6)
    inventory = Inventory(resolution=7)
    with pytest.raises(ValueError):
        build_adaptive(inventory, min_records=0, coarse_resolution=5)


def test_dense_cells_keep_fine_resolution():
    dense = latlng_to_cell(1.0, 103.0, 7)
    inventory = _inventory_with([(dense, 50)])
    adaptive = build_adaptive(inventory, min_records=10, coarse_resolution=4)
    assert dense in adaptive.cells()
    assert adaptive.resolution_histogram() == {7: 1}


def test_sparse_cells_collapse_to_parent():
    sparse = latlng_to_cell(40.0, -40.0, 7)
    inventory = _inventory_with([(sparse, 2)])
    adaptive = build_adaptive(inventory, min_records=10, coarse_resolution=4)
    cells = adaptive.cells()
    assert sparse not in cells
    assert all(get_resolution(cell) == 4 for cell in cells)


def test_siblings_merge_until_dense():
    # Seven sibling cells with 3 records each: parent holds 21 >= 10.
    from repro.hexgrid import cell_to_children

    parent = latlng_to_cell(30.0, 30.0, 6)
    children = cell_to_children(parent)
    inventory = _inventory_with([(child, 3) for child in children])
    adaptive = build_adaptive(inventory, min_records=10, coarse_resolution=4)
    assert adaptive.cells() == {parent}
    merged = [
        summary for key, summary in adaptive.items()
        if key.grouping_set is GroupingSet.CELL
    ]
    assert len(merged) == 1
    assert merged[0].records == 3 * len(children)


def test_record_conservation(small_inventory):
    adaptive = build_adaptive(
        small_inventory, min_records=8, coarse_resolution=3
    )
    assert adaptive.total_records() == small_inventory.total_records()


def test_group_count_shrinks(small_inventory):
    adaptive = build_adaptive(
        small_inventory, min_records=8, coarse_resolution=3
    )
    assert len(adaptive) < len(small_inventory)


def test_mixed_resolutions_present(small_inventory):
    adaptive = build_adaptive(
        small_inventory, min_records=8, coarse_resolution=3
    )
    histogram = adaptive.resolution_histogram()
    assert len(histogram) >= 2  # genuinely non-uniform
    assert min(histogram) >= 3
    assert max(histogram) == small_inventory.resolution


def test_point_query_probes_fine_to_coarse():
    dense = latlng_to_cell(1.0, 103.0, 7)
    sparse = latlng_to_cell(40.0, -40.0, 7)
    inventory = _inventory_with([(dense, 50), (sparse, 2)])
    adaptive = build_adaptive(inventory, min_records=10, coarse_resolution=4)

    dense_hit = adaptive.summary_at(*cell_to_latlng(dense))
    assert dense_hit is not None and dense_hit.records == 50

    sparse_hit = adaptive.summary_at(*cell_to_latlng(sparse))
    assert sparse_hit is not None and sparse_hit.records == 2

    assert adaptive.summary_at(-55.0, -150.0) is None


def test_breakdowns_travel_with_the_cell():
    sparse = latlng_to_cell(40.0, -40.0, 7)
    inventory = _inventory_with([(sparse, 2)])
    adaptive = build_adaptive(inventory, min_records=10, coarse_resolution=4)
    lat, lon = cell_to_latlng(sparse)
    typed = adaptive.summary_at(lat, lon, vessel_type="cargo")
    assert typed is not None and typed.records == 2


def test_source_inventory_untouched(small_inventory):
    before = {
        key: summary.records for key, summary in small_inventory.items()
    }
    build_adaptive(small_inventory, min_records=50, coarse_resolution=3)
    after = {
        key: summary.records for key, summary in small_inventory.items()
    }
    assert before == after


def test_min_records_one_is_identity_shape(small_inventory):
    adaptive = build_adaptive(
        small_inventory, min_records=1, coarse_resolution=3
    )
    assert adaptive.cells() == small_inventory.cells()
    assert len(adaptive) == len(small_inventory)
