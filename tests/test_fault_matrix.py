"""The fault matrix: every injected fault is a typed error or a full
recovery — never a silent wrong answer, never a partial table at a
final path.

Sweeps :mod:`repro.testing.faults` over the storage layer:

- every write index × {torn, enospc, crash} during a table build;
- every rename index × crash and every fsync index × crash;
- every read index × {eio, bitflip} during a query campaign;
- a kill-and-resume campaign over the windowed pipeline build,
  asserting the resumed output is byte-identical to an uninterrupted
  build.
"""

import errno

import pytest

from repro.hexgrid import latlng_to_cell
from repro.inventory import (
    CorruptionError,
    GroupKey,
    Inventory,
    SSTableError,
    SSTableReader,
    SSTableWriter,
    verify_table,
    write_inventory,
)
from repro.inventory import fsio
from repro.inventory.sstable import route_index_path
from repro.inventory.summary import CellSummary
from repro.testing import Fault, FaultInjector, FaultPlan, SimulatedCrash, record_ops


def _inventory(cells=20):
    inventory = Inventory(resolution=6)
    for i in range(cells):
        summary = CellSummary()
        summary.update(mmsi=200_000_000 + i, sog=8.0 + i, cog=45.0, heading=45)
        inventory.put(
            GroupKey(cell=latlng_to_cell(5.0 + i * 0.4, 110.0, 6)), summary
        )
    return inventory


def _assert_absent_or_valid(path, inventory) -> str:
    """The crash-safety invariant: the final path holds either nothing
    or a complete, verified table with the right answers."""
    if not path.exists():
        return "absent"
    check = verify_table(path)
    assert check.ok, "partial/corrupt table at final path:\n" + "\n".join(
        check.lines()
    )
    with SSTableReader(path) as reader:
        for key, summary in inventory.items():
            got = reader.get(key)
            assert got is not None and got.records == summary.records, (
                f"wrong answer for {key} after injected fault"
            )
    return "valid"


class TestHarness:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("write", 0, "eio")  # read-only kind on a write
        with pytest.raises(ValueError):
            Fault("rename", 0, "torn")
        with pytest.raises(ValueError):
            Fault("nope", 0, "crash")
        with pytest.raises(ValueError):
            Fault("write", -1, "torn")

    def test_record_ops_counts_a_build(self, tmp_path):
        inventory = _inventory()
        counts = record_ops(lambda: write_inventory(inventory, tmp_path / "t.sst"))
        assert counts["write"] > 0
        assert counts["rename"] == 2  # sidecar + table
        assert counts["fsync"] > 0

    def test_enospc_is_a_real_errno(self, tmp_path):
        plan = FaultPlan.single("write", 0, "enospc")
        with FaultInjector(plan) as injector:
            with pytest.raises(OSError) as exc_info:
                fsio.atomic_write_bytes(tmp_path / "f", b"payload")
        assert exc_info.value.errno == errno.ENOSPC
        assert injector.triggered == [Fault("write", 0, "enospc")]
        # The failed write cleaned its temp up (no crash was simulated).
        assert list(tmp_path.iterdir()) == []

    def test_torn_write_is_deterministic(self, tmp_path):
        leftovers = []
        for name in ("a", "b"):
            directory = tmp_path / name
            directory.mkdir()
            plan = FaultPlan.single("write", 0, "torn", seed=11)
            with FaultInjector(plan) as injector:
                with pytest.raises(SimulatedCrash):
                    fsio.atomic_write_bytes(directory / "f", b"x" * 4096)
            assert injector.crashed
            leftovers.append((directory / "f.tmp").read_bytes())
        assert leftovers[0] == leftovers[1]
        assert 0 <= len(leftovers[0]) < 4096  # a strict prefix reached disk

    def test_filesystem_freezes_after_crash(self, tmp_path):
        plan = FaultPlan.single("rename", 0, "crash")
        with FaultInjector(plan):
            with pytest.raises(SimulatedCrash):
                fsio.atomic_write_bytes(tmp_path / "f", b"payload")
            # Post-crash, nothing else lands: the temp is orphaned just
            # as a real dead process would orphan it.
            fsio.unlink(tmp_path / "f.tmp")
        assert (tmp_path / "f.tmp").exists()
        assert not (tmp_path / "f").exists()


class TestWriteFaultMatrix:
    """Every write/rename/fsync of a table build, every applicable kind."""

    def test_every_write_fault_leaves_final_path_absent_or_valid(self, tmp_path):
        inventory = _inventory()
        probe = tmp_path / "probe"
        probe.mkdir()
        counts = record_ops(lambda: write_inventory(inventory, probe / "t.sst"))
        cases = [
            ("write", index, kind)
            for index in range(counts["write"])
            for kind in ("torn", "enospc", "crash")
        ]
        cases += [("rename", index, "crash") for index in range(counts["rename"])]
        cases += [("fsync", index, "crash") for index in range(counts["fsync"])]
        assert len(cases) > 10  # the matrix is real, not degenerate

        outcomes = {}
        for op, index, kind in cases:
            directory = tmp_path / f"{op}{index}_{kind}"
            directory.mkdir()
            path = directory / "t.sst"
            plan = FaultPlan.single(op, index, kind, seed=3)
            with FaultInjector(plan) as injector:
                try:
                    write_inventory(inventory, path)
                    error = None
                except (SimulatedCrash, OSError) as exc:
                    error = exc
            assert injector.triggered, f"fault {op}#{index} never fired"
            state = _assert_absent_or_valid(path, inventory)
            if error is None:
                # The build claimed success: the table must exist and
                # answer correctly (e.g. a crash-faulted fsync *after*
                # the commit rename).
                assert state == "valid"
            if isinstance(error, OSError) and not isinstance(error, SimulatedCrash):
                # Process-alive failure (ENOSPC): the writer's error
                # path must have cleaned every staging file up.
                leftovers = [p.name for p in directory.iterdir()]
                assert leftovers == [], f"orphans after {op}#{index}: {leftovers}"
            outcomes[(op, index, kind)] = state if error is None else (
                f"{state}+typed"
            )
        # Zero silent wrong answers: every cell was asserted above.
        assert len(outcomes) == len(cases)


class TestReadFaultMatrix:
    """Every read of a query campaign × {eio, bitflip}: a typed error or
    byte-identical answers — never a changed answer."""

    @pytest.fixture(scope="class")
    def table(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("read-matrix")
        inventory = _inventory()
        path = directory / "t.sst"
        write_inventory(inventory, path)
        keys = sorted(
            (key for key, _ in inventory.items()), key=lambda k: k.sort_key()
        )
        return path, keys

    @staticmethod
    def _campaign(path, keys):
        with SSTableReader(path) as reader:
            point = [
                summary.records
                for summary in (reader.get(key) for key in keys)
                if summary is not None
            ]
            full = [
                (key.sort_key(), summary.records)
                for key, summary in reader.scan()
            ]
        return point, full

    def test_every_read_fault_is_typed_or_identical(self, table):
        path, keys = table
        baseline = self._campaign(path, keys)
        assert baseline[0] and baseline[1]
        counts = record_ops(lambda: self._campaign(path, keys))
        assert counts["read"] > 5
        for index in range(counts["read"]):
            for kind in ("eio", "bitflip"):
                plan = FaultPlan.single("read", index, kind, seed=index)
                with FaultInjector(plan) as injector:
                    try:
                        result = self._campaign(path, keys)
                    except SSTableError:
                        continue  # typed: CorruptionError/SSTableError
                assert injector.triggered, f"read fault #{index} never fired"
                assert result == baseline, (
                    f"silent wrong answer under read#{index} {kind}"
                )

    def test_bitflipped_block_names_the_block(self, table):
        path, keys = table
        # The first data-block read of a scan is after the open-time
        # header/footer/index reads; find it by sweeping until a
        # CorruptionError carries a block index.
        counts = record_ops(lambda: self._campaign(path, keys))
        saw_block_error = False
        for index in range(counts["read"]):
            plan = FaultPlan.single("read", index, "bitflip", seed=1)
            with FaultInjector(plan):
                try:
                    self._campaign(path, keys)
                except CorruptionError as exc:
                    if exc.block_index is not None:
                        saw_block_error = True
                        break
                except SSTableError:
                    continue
        assert saw_block_error


class TestKillAndResume:
    """Kill a windowed build mid-flight, resume it, and require output
    byte-identical to an uninterrupted build."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro import WorldConfig, generate_dataset

        return generate_dataset(
            WorldConfig(seed=77, n_vessels=8, days=6.0, report_interval_s=900.0)
        )

    @pytest.fixture(scope="class")
    def reference(self, world, tmp_path_factory):
        from repro import PipelineConfig, build_inventory

        out = tmp_path_factory.mktemp("reference") / "inv.sst"
        result = build_inventory(
            world.positions, world.fleet, world.ports,
            PipelineConfig(), output=out, windows=3,
        )
        return out, result

    def test_killed_build_resumes_byte_identical(
        self, world, reference, tmp_path, monkeypatch
    ):
        import repro.pipeline.run as run_mod
        from repro import PipelineConfig, build_inventory
        from repro.pipeline.manifest import manifest_path

        ref_out, ref_result = reference
        out = tmp_path / "inv.sst"
        # Renames per window: sidecar, table, manifest.  Crashing rename
        # #4 kills the build at window 1's table publish: window 0 is
        # durable and recorded, window 1 and 2 are not.
        plan = FaultPlan.single("rename", 4, "crash")
        with FaultInjector(plan) as injector:
            with pytest.raises(SimulatedCrash):
                build_inventory(
                    world.positions, world.fleet, world.ports,
                    PipelineConfig(), output=out, windows=3,
                )
        assert injector.crashed
        assert not out.exists()
        assert manifest_path(out).exists()  # the checkpoint survived
        assert (tmp_path / "inv.sst.w0").exists()

        # Resume: window 0 must be reused, windows 1 and 2 rebuilt.
        window_runs = []
        original = run_mod._build_window

        def counting(*args, **kwargs):
            window_runs.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(run_mod, "_build_window", counting)
        result = build_inventory(
            world.positions, world.fleet, world.ports,
            PipelineConfig(), output=out, windows=3, resume=True,
        )
        assert len(window_runs) == 2
        assert out.read_bytes() == ref_out.read_bytes()
        assert result.funnel == ref_result.funnel
        assert result.entries == ref_result.entries
        # Success cleaned the checkpoint and the staging tables up.
        assert not manifest_path(out).exists()
        assert not list(tmp_path.glob("inv.sst.w[0-9]"))

    def test_resume_discards_manifest_from_different_inputs(
        self, world, reference, tmp_path, monkeypatch
    ):
        import repro.pipeline.run as run_mod
        from repro import PipelineConfig, build_inventory

        ref_out, _ = reference
        out = tmp_path / "inv.sst"
        plan = FaultPlan.single("rename", 4, "crash")
        with FaultInjector(plan):
            with pytest.raises(SimulatedCrash):
                build_inventory(
                    world.positions, world.fleet, world.ports,
                    PipelineConfig(), output=out, windows=3,
                )
        # Resume with a different window split: the fingerprint differs,
        # so nothing is reused and every window runs.
        window_runs = []
        original = run_mod._build_window

        def counting(*args, **kwargs):
            window_runs.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(run_mod, "_build_window", counting)
        build_inventory(
            world.positions, world.fleet, world.ports,
            PipelineConfig(), output=out, windows=2, resume=True,
        )
        assert len(window_runs) == 2  # both windows of the new split

    def test_resume_with_damaged_window_rebuilds_it(
        self, world, reference, tmp_path
    ):
        from repro import PipelineConfig, build_inventory

        ref_out, _ = reference
        out = tmp_path / "inv.sst"
        plan = FaultPlan.single("rename", 7, "crash")  # kill in window 2
        with FaultInjector(plan):
            with pytest.raises(SimulatedCrash):
                build_inventory(
                    world.positions, world.fleet, world.ports,
                    PipelineConfig(), output=out, windows=3,
                )
        # Bit-rot one surviving staging table: resume must notice the
        # checksum mismatch and rebuild it rather than trust it.
        staged = tmp_path / "inv.sst.w0"
        payload = bytearray(staged.read_bytes())
        payload[len(payload) // 2] ^= 0x10
        staged.write_bytes(bytes(payload))
        build_inventory(
            world.positions, world.fleet, world.ports,
            PipelineConfig(), output=out, windows=3, resume=True,
        )
        assert out.read_bytes() == ref_out.read_bytes()

    def test_resume_without_output_rejected(self, world):
        from repro import PipelineConfig, build_inventory

        with pytest.raises(ValueError):
            build_inventory(
                world.positions, world.fleet, world.ports,
                PipelineConfig(), resume=True,
            )

    def test_resume_with_no_manifest_is_a_clean_build(
        self, world, reference, tmp_path
    ):
        from repro import PipelineConfig, build_inventory

        ref_out, _ = reference
        out = tmp_path / "inv.sst"
        build_inventory(
            world.positions, world.fleet, world.ports,
            PipelineConfig(), output=out, windows=3, resume=True,
        )
        assert out.read_bytes() == ref_out.read_bytes()


class TestWriterErrorPath:
    """Satellite regression: a raising ``with SSTableWriter`` body must
    not leave a partial table or an orphan ``.routes`` sidecar."""

    def test_body_exception_leaves_no_files(self, tmp_path):
        path = tmp_path / "t.sst"
        inventory = _inventory(cells=3)
        with pytest.raises(RuntimeError, match="boom"):
            with SSTableWriter(path) as writer:
                for key, summary in sorted(
                    inventory.items(), key=lambda kv: kv[0].sort_key()
                ):
                    writer.add(key, summary)
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []
        assert not path.exists()
        assert not route_index_path(path).exists()

    def test_close_failure_cleans_staging(self, tmp_path):
        path = tmp_path / "t.sst"
        plan = FaultPlan.single("write", 2, "enospc")
        inventory = _inventory(cells=3)
        with FaultInjector(plan):
            with pytest.raises(OSError):
                write_inventory(inventory, path)
        assert list(tmp_path.iterdir()) == []
