"""Tests for geofencing and trip-semantics extraction (§3.3.2)."""

import pytest

from repro.pipeline.geofence import PortIndex
from repro.pipeline.records import CleanRecord
from repro.pipeline.trips import annotate_trips
from repro.world.ports import PORTS, port_by_id


@pytest.fixture(scope="module")
def index():
    return PortIndex(PORTS)


class TestPortIndex:
    def test_port_center_resolves_to_port(self, index):
        for port_id in ["SGSIN", "NLRTM", "USLAX", "RULED", "CLVAP"]:
            port = port_by_id(port_id)
            found = index.port_at(port.lat, port.lon)
            assert found is not None and found.port_id == port_id

    def test_open_sea_resolves_to_none(self, index):
        assert index.port_at(40.0, -40.0) is None  # mid-Atlantic
        assert index.port_at(-50.0, 90.0) is None  # Southern Ocean

    def test_just_outside_radius_is_none(self, index):
        from repro.geo import destination_point

        port = port_by_id("SGSIN")
        lat, lon = destination_point(
            port.lat, port.lon, 180.0, port.radius_m + 4_000.0
        )
        found = index.port_at(lat, lon)
        assert found is None or found.port_id != "SGSIN"

    def test_just_inside_radius_found(self, index):
        from repro.geo import destination_point

        port = port_by_id("NLRTM")
        lat, lon = destination_point(port.lat, port.lon, 90.0, port.radius_m * 0.6)
        found = index.port_at(lat, lon)
        assert found is not None and found.port_id == "NLRTM"

    def test_high_latitude_port_found(self, index):
        # St Petersburg at 60°N exercises the projection-stretch handling.
        port = port_by_id("RULED")
        from repro.geo import destination_point

        lat, lon = destination_point(port.lat, port.lon, 0.0, port.radius_m * 0.7)
        found = index.port_at(lat, lon)
        assert found is not None and found.port_id == "RULED"

    def test_index_has_bounded_buckets(self, index):
        assert 0 < index.bucket_count() < 20_000


def _record(ts, lat, lon, mmsi=235000001, sog=10.0):
    return CleanRecord(
        mmsi=mmsi, ts=ts, lat=lat, lon=lon, sog=sog, cog=90.0,
        heading=90, status=0, vessel_type="cargo", grt=20_000,
    )


def _synthetic_voyage(index, origin_id, dest_id, n_sea=10):
    """Port-A stop (moored) → open-sea records → port-B stop (moored)."""
    origin = port_by_id(origin_id)
    dest = port_by_id(dest_id)
    records = [_record(0.0, origin.lat, origin.lon, sog=0.2),
               _record(600.0, origin.lat, origin.lon, sog=0.1)]
    for i in range(n_sea):
        frac = (i + 1) / (n_sea + 1)
        lat = origin.lat + frac * (dest.lat - origin.lat)
        lon = origin.lon + frac * (dest.lon - origin.lon)
        records.append(_record(1200.0 + i * 600.0, lat, lon))
    records.append(_record(1200.0 + n_sea * 600.0, dest.lat, dest.lon, sog=0.3))
    records.append(_record(1800.0 + n_sea * 600.0, dest.lat, dest.lon, sog=0.1))
    return records


class TestTripAnnotation:
    def test_basic_trip_extraction(self, index):
        records = _synthetic_voyage(index, "PLGDN", "SESTO")
        trips = annotate_trips(records, index)
        assert trips
        assert {t.origin for t in trips} == {"PLGDN"}
        assert {t.destination for t in trips} == {"SESTO"}
        assert len({t.trip_id for t in trips}) == 1
        # Only the open-sea records are annotated.
        assert len(trips) <= 10

    def test_eto_and_ata_are_complementary(self, index):
        records = _synthetic_voyage(index, "PLGDN", "SESTO")
        trips = annotate_trips(records, index)
        duration = trips[-1].ts - trips[0].ts
        for trip in trips:
            assert trip.eto_s >= 0.0
            assert trip.ata_s >= 0.0
            assert trip.eto_s + trip.ata_s == pytest.approx(duration)

    def test_two_consecutive_trips(self, index):
        leg1 = _synthetic_voyage(index, "PLGDN", "SESTO")
        offset = leg1[-1].ts + 600.0
        leg2 = [
            CleanRecord(
                mmsi=r.mmsi, ts=r.ts + offset, lat=r.lat, lon=r.lon, sog=r.sog,
                cog=r.cog, heading=r.heading, status=r.status,
                vessel_type=r.vessel_type, grt=r.grt,
            )
            for r in _synthetic_voyage(index, "SESTO", "FIHEL")
        ]
        trips = annotate_trips(leg1 + leg2, index)
        trip_ids = sorted({t.trip_id for t in trips})
        assert len(trip_ids) == 2
        destinations = {t.trip_id: t.destination for t in trips}
        assert sorted(destinations.values()) == ["FIHEL", "SESTO"]

    def test_leading_gap_without_origin_excluded(self, index):
        records = _synthetic_voyage(index, "PLGDN", "SESTO")
        # Drop the initial port visit: the gap has no known origin.
        no_origin = records[2:]
        trips = annotate_trips(no_origin, index)
        assert trips == []

    def test_trailing_gap_without_destination_excluded(self, index):
        records = _synthetic_voyage(index, "PLGDN", "SESTO")
        no_destination = records[:-2]
        trips = annotate_trips(no_destination, index)
        assert trips == []

    def test_same_port_return_is_not_a_trip(self, index):
        port = port_by_id("PLGDN")
        records = [
            _record(0.0, port.lat, port.lon, sog=0.1),
            _record(600.0, port.lat + 0.5, port.lon),  # brief excursion
            _record(1200.0, port.lat, port.lon, sog=0.1),
        ]
        assert annotate_trips(records, index) == []

    def test_vessel_never_leaving_port_has_no_trips(self, index):
        port = port_by_id("SGSIN")
        records = [
            _record(i * 600.0, port.lat, port.lon, sog=0.1) for i in range(10)
        ]
        assert annotate_trips(records, index) == []

    def test_transit_through_geofence_is_not_a_stop(self, index):
        # Port Said sits on the Suez approach: a vessel steaming through
        # its geofence at 12 kn must NOT have its trip split there.
        records = _synthetic_voyage(index, "GRPIR", "SAJED")
        said = port_by_id("EGPSD")
        # Inject an at-speed pass through the Port Said geofence mid-trip.
        mid_ts = records[len(records) // 2].ts + 1.0
        transit = _record(mid_ts, said.lat, said.lon, sog=12.0)
        with_transit = sorted(records + [transit], key=lambda r: r.ts)
        trips = annotate_trips(with_transit, index)
        assert trips
        assert {t.destination for t in trips} == {"SAJED"}
        assert len({t.trip_id for t in trips}) == 1
        # The transit record itself belongs to the trip.
        assert any(t.ts == mid_ts for t in trips)

    def test_stop_speed_threshold_is_configurable(self, index):
        port = port_by_id("PLGDN")
        crawl = [
            _record(0.0, port.lat, port.lon, sog=3.0),
            _record(600.0, port.lat + 1.5, port.lon),
            _record(1200.0, 59.35, 18.14, sog=3.0),  # Stockholm, crawling
        ]
        # At the default 2 kn threshold a 3-kn crawl is not a stop.
        assert annotate_trips(crawl, index) == []
        # Raising the threshold turns the crawls into stops.
        trips = annotate_trips(crawl, index, stop_speed_kn=4.0)
        assert trips and trips[0].origin == "PLGDN"

    def test_empty_input(self, index):
        assert annotate_trips([], index) == []

    def test_trip_id_embeds_mmsi(self, index):
        records = _synthetic_voyage(index, "PLGDN", "SESTO")
        trips = annotate_trips(records, index)
        assert all(t.trip_id.startswith("235000001-") for t in trips)
