"""Tests for the public hexgrid API: indexing, traversal, hierarchy."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import haversine_m
from repro.hexgrid import (
    are_neighbor_cells,
    cell_area_km2,
    cell_edge_length_km,
    cell_to_boundary,
    cell_to_center_child,
    cell_to_children,
    cell_to_latlng,
    cell_to_parent,
    cells_count,
    get_resolution,
    grid_disk,
    grid_distance,
    grid_path_cells,
    grid_ring,
    latlng_to_cell,
)

LATS = st.floats(min_value=-85.0, max_value=85.0)
# DESIGN.md documents a lattice seam at the antimeridian: cells whose
# center falls on the far side of ±180° re-index to the wrapped cell.
# Properties therefore hold away from the seam (one cell width); the
# dedicated seam test below pins the at-seam behaviour.
LONS = st.floats(min_value=-170.0, max_value=170.0)
RES = st.integers(min_value=1, max_value=9)


@given(lat=LATS, lon=LONS, res=RES)
def test_cell_center_reindexes_to_same_cell(lat, lon, res):
    cell = latlng_to_cell(lat, lon, res)
    center = cell_to_latlng(cell)
    assert latlng_to_cell(*center, res) == cell


def test_antimeridian_seam_behaviour_is_bounded():
    """At the seam the roundtrip may remap to the wrapped cell, but the
    wrapped cell's center must be geographically close (within a couple of
    cell widths) — the seam cuts topology, not geography."""
    from repro.hexgrid import cell_edge_length_km

    for lon in (179.9, -179.9, 180.0):
        for res in (4, 6, 8):
            cell = latlng_to_cell(0.0, lon, res)
            center = cell_to_latlng(cell)
            recell = latlng_to_cell(*center, res)
            recenter = cell_to_latlng(recell)
            assert haversine_m(*center, *recenter) < 4 * cell_edge_length_km(
                res
            ) * 1000.0


@given(lat=LATS, lon=LONS, res=st.integers(min_value=3, max_value=8))
def test_indexed_point_is_near_cell_center(lat, lon, res):
    cell = latlng_to_cell(lat, lon, res)
    center = cell_to_latlng(cell)
    # The equal-area projection stretches geodesic distance by 1/cos(lat)
    # at worst; within that factor the point must be a cell-size away.
    stretch = 1.0 / max(0.05, math.cos(math.radians(lat)))
    limit = 3.0 * cell_edge_length_km(res) * 1000.0 * stretch
    assert haversine_m(lat, lon, *center) < limit


def test_resolution_is_encoded():
    assert get_resolution(latlng_to_cell(10.0, 10.0, 7)) == 7


def test_boundary_has_six_vertices_around_center():
    cell = latlng_to_cell(40.0, -30.0, 6)
    boundary = cell_to_boundary(cell)
    assert len(boundary) == 6
    center = cell_to_latlng(cell)
    for vertex in boundary:
        assert haversine_m(*center, *vertex) < 3.0 * cell_edge_length_km(6) * 1000.0


@given(lat=LATS, lon=LONS)
def test_parent_contains_child_center(lat, lon):
    child = latlng_to_cell(lat, lon, 7)
    parent = cell_to_parent(child)
    assert get_resolution(parent) == 6
    center = cell_to_latlng(child)
    assert cell_to_parent(latlng_to_cell(*center, 7)) == parent


@given(lat=LATS, lon=LONS)
def test_children_partition_back_to_parent(lat, lon):
    parent = latlng_to_cell(lat, lon, 5)
    children = cell_to_children(parent)
    assert children  # aperture 7: expect exactly 7 on this lattice
    assert len(children) == 7
    for child in children:
        assert get_resolution(child) == 6
        assert cell_to_parent(child) == parent


def test_multilevel_children_count():
    parent = latlng_to_cell(30.0, 30.0, 4)
    grandchildren = cell_to_children(parent, 6)
    assert len(grandchildren) == 49
    assert all(cell_to_parent(g, 4) == parent for g in grandchildren)


def test_center_child_is_among_children():
    parent = latlng_to_cell(12.0, 77.0, 5)
    assert cell_to_center_child(parent) in cell_to_children(parent)


def test_parent_of_itself_is_itself():
    cell = latlng_to_cell(0.0, 0.0, 5)
    assert cell_to_parent(cell, 5) == cell
    assert cell_to_center_child(cell, 5) == cell


def test_parent_resolution_validation():
    cell = latlng_to_cell(0.0, 0.0, 5)
    with pytest.raises(ValueError):
        cell_to_parent(cell, 6)
    with pytest.raises(ValueError):
        cell_to_children(cell, 4)


@given(lat=LATS, lon=LONS, k=st.integers(min_value=0, max_value=4))
def test_grid_disk_and_ring_sizes(lat, lon, k):
    cell = latlng_to_cell(lat, lon, 6)
    disk = grid_disk(cell, k)
    assert len(disk) == 1 + 3 * k * (k + 1)
    ring = grid_ring(cell, k)
    assert len(ring) == (1 if k == 0 else 6 * k)
    for other in ring:
        assert grid_distance(cell, other) == k


def test_neighbors_share_an_edge_distance():
    cell = latlng_to_cell(55.0, 15.0, 6)
    for neighbor in grid_ring(cell, 1):
        assert are_neighbor_cells(cell, neighbor)
        assert not are_neighbor_cells(cell, cell)


def test_neighbor_check_rejects_mixed_resolutions():
    a = latlng_to_cell(10.0, 10.0, 5)
    b = latlng_to_cell(10.0, 10.0, 6)
    assert not are_neighbor_cells(a, b)
    with pytest.raises(ValueError):
        grid_distance(a, b)


@settings(max_examples=30)
@given(lat1=LATS, lon1=st.floats(min_value=-90, max_value=90),
       lat2=LATS, lon2=st.floats(min_value=-90, max_value=90))
def test_grid_path_is_contiguous(lat1, lon1, lat2, lon2):
    a = latlng_to_cell(lat1, lon1, 5)
    b = latlng_to_cell(lat2, lon2, 5)
    path = grid_path_cells(a, b)
    assert path[0] == a and path[-1] == b
    for u, v in zip(path, path[1:]):
        assert are_neighbor_cells(u, v)


def test_cell_areas_follow_aperture_seven():
    assert cell_area_km2(6) == pytest.approx(cell_area_km2(5) / 7.0)
    assert cell_area_km2(0) == pytest.approx(4_357_449.41)


def test_resolution_6_area_matches_h3_calibration():
    # H3's published res-6 average is 36.129 km²; ours is calibrated to the
    # same aperture-7 family: 4357449.41 / 7^6 ≈ 37.04 km².
    assert cell_area_km2(6) == pytest.approx(37.04, rel=0.01)


def test_cells_count_near_h3_published_totals():
    # H3 res 6 has ~14.1 M cells globally; the equal-area construction
    # should land within a few percent.
    assert cells_count(6) == pytest.approx(14_117_882, rel=0.05)


def test_same_point_different_resolutions_nest():
    fine = latlng_to_cell(48.5, -5.0, 8)
    coarse = latlng_to_cell(48.5, -5.0, 6)
    assert cell_to_parent(fine, 6) == coarse
