"""Trace-context propagation across threads, forks and asyncio tasks.

The tracer's value is that one trace follows a request or a build across
execution boundaries.  These tests pin the three boundaries the repo
actually crosses:

- **thread pools** (ThreadScheduler, the server's executor) — worker-side
  spans must parent under the span active at submit time;
- **forked workers** (ProcessScheduler) — child spans ride the result
  pipe and replay into the parent's sinks with correct lineage;
- **asyncio tasks** — concurrent tasks each keep their own context and
  never interleave trace ids, even across await points.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.engine import scheduler as sched
from repro.obs import trace as obs


class ListSink:
    """Thread-safe record collector."""

    def __init__(self):
        self.records = []
        self._lock = threading.Lock()

    def record(self, record):
        with self._lock:
            self.records.append(record)


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.disable()
    yield
    obs.disable()


def _partition_spans(sink):
    return [r for r in sink.records if r["name"] == "engine.partition"]


# -- thread pools ----------------------------------------------------------------


def test_thread_scheduler_spans_nest_under_caller():
    sink = ListSink()
    obs.configure(sink)
    scheduler = sched.ThreadScheduler(max_workers=4)
    try:
        with obs.span("job") as job:
            results = scheduler.run(
                lambda i, part: [x * 2 for x in part],
                [[1], [2], [3], [4], [5], [6]],
            )
            job_span_id = obs.current_context().span_id
    finally:
        scheduler.close()
    assert results == [[2], [4], [6], [8], [10], [12]]
    partitions = _partition_spans(sink)
    assert len(partitions) == 6
    (job_record,) = [r for r in sink.records if r["name"] == "job"]
    for record in partitions:
        assert record["trace"] == job_record["trace"]
        assert record["parent"] == job_span_id == job_record["span"]
    ids = [r["span"] for r in partitions]
    assert len(set(ids)) == len(ids)


def test_thread_scheduler_two_jobs_never_share_a_trace():
    sink = ListSink()
    obs.configure(sink)
    scheduler = sched.ThreadScheduler(max_workers=4)
    try:
        traces = []
        for _ in range(2):
            with obs.span("job"):
                scheduler.run(lambda i, part: part, [[1], [2], [3]])
                traces.append(obs.current_context().trace_id)
    finally:
        scheduler.close()
    assert traces[0] != traces[1]
    by_trace = {}
    for record in _partition_spans(sink):
        by_trace.setdefault(record["trace"], []).append(record)
    assert set(by_trace) == set(traces)
    assert all(len(records) == 3 for records in by_trace.values())


def test_retry_closes_an_error_span_per_failed_attempt():
    sink = ListSink()
    obs.configure(sink)
    attempts = {"n": 0}

    def flaky(index, partition):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise OSError("transient")
        return partition

    scheduler = sched.SerialScheduler(retries=2, backoff=0.0)
    before = sched.COUNTERS.value(sched.RETRIES_TOTAL)
    assert scheduler.run(flaky, [[7]]) == [[7]]
    assert sched.COUNTERS.value(sched.RETRIES_TOTAL) == before + 1
    partitions = _partition_spans(sink)
    assert [r["status"] for r in partitions] == ["error", "ok"]
    assert partitions[0]["attrs"]["attempt"] == 0
    assert partitions[1]["attrs"]["attempt"] == 1


# -- forked workers --------------------------------------------------------------


def test_process_scheduler_replays_child_spans_with_lineage():
    sink = ListSink()
    obs.configure(sink)
    scheduler = sched.ProcessScheduler(max_workers=2)
    with obs.span("forked.job") as job:
        results = scheduler.run(
            lambda i, part: [x + 100 for x in part], [[1], [2], [3], [4]]
        )
        job_ctx = obs.current_context()
    assert results == [[101], [102], [103], [104]]
    partitions = _partition_spans(sink)
    assert len(partitions) == 4
    for record in partitions:
        assert record["trace"] == job_ctx.trace_id
        assert record["parent"] == job_ctx.span_id
    ids = [r["span"] for r in partitions]
    assert len(set(ids)) == len(ids), "span ids must stay unique across forks"


def test_process_scheduler_failed_worker_still_ships_spans():
    sink = ListSink()
    obs.configure(sink)
    scheduler = sched.ProcessScheduler(max_workers=2)

    def poisoned(index, partition):
        if index == 1:
            raise RuntimeError("partition 1 is bad")
        return partition

    with pytest.raises(sched.WorkerError):
        with obs.span("doomed.job"):
            scheduler.run(poisoned, [[1], [2], [3], [4]])
    partitions = _partition_spans(sink)
    # every *attempted* partition reported a span, including the failed
    # one (the failing worker abandons the rest of its slice, so its
    # trailing partition is never attempted: slices are [0,2] and [1,3])
    assert len(partitions) == 3
    by_index = {r["attrs"]["index"]: r["status"] for r in partitions}
    assert by_index == {0: "ok", 1: "error", 2: "ok"}


def test_process_scheduler_untraced_run_stays_silent():
    scheduler = sched.ProcessScheduler(max_workers=2)
    assert scheduler.run(lambda i, p: p, [[1], [2], [3]]) == [[1], [2], [3]]
    assert not obs.enabled()


# -- threads without a pool (raw propagation) ------------------------------------


def test_threads_do_not_leak_context_between_each_other():
    sink = ListSink()
    obs.configure(sink)
    barrier = threading.Barrier(4)

    def work(tag):
        barrier.wait()
        with obs.span("thread.root", tag=tag):
            with obs.span("thread.child", tag=tag):
                pass

    threads = [
        threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    roots = [r for r in sink.records if r["name"] == "thread.root"]
    children = [r for r in sink.records if r["name"] == "thread.child"]
    assert len(roots) == len(children) == 4
    root_by_tag = {r["attrs"]["tag"]: r for r in roots}
    assert len({r["trace"] for r in roots}) == 4, "each thread is its own trace"
    for child in children:
        root = root_by_tag[child["attrs"]["tag"]]
        assert child["trace"] == root["trace"]
        assert child["parent"] == root["span"]


# -- asyncio tasks ---------------------------------------------------------------


def test_asyncio_tasks_keep_independent_traces():
    sink = ListSink()
    obs.configure(sink)

    async def request(tag):
        with obs.span("aio.request", tag=tag):
            await asyncio.sleep(0)  # force interleaving
            with obs.span("aio.step", tag=tag):
                await asyncio.sleep(0)
            await asyncio.sleep(0)
            with obs.span("aio.step2", tag=tag):
                pass

    async def main():
        await asyncio.gather(*(request(f"r{i}") for i in range(8)))

    asyncio.run(main())
    requests = [r for r in sink.records if r["name"] == "aio.request"]
    assert len(requests) == 8
    assert len({r["trace"] for r in requests}) == 8
    request_by_tag = {r["attrs"]["tag"]: r for r in requests}
    for name in ("aio.step", "aio.step2"):
        steps = [r for r in sink.records if r["name"] == name]
        assert len(steps) == 8
        for step in steps:
            parent = request_by_tag[step["attrs"]["tag"]]
            assert step["trace"] == parent["trace"], "no cross-task bleed"
            assert step["parent"] == parent["span"]


def test_asyncio_stress_with_thread_handoff():
    """Tasks that hop to worker threads (the server's shape) keep lineage."""
    import contextvars
    from concurrent.futures import ThreadPoolExecutor

    sink = ListSink()
    obs.configure(sink)
    executor = ThreadPoolExecutor(max_workers=4)

    async def request(tag):
        loop = asyncio.get_running_loop()
        with obs.span("hop.request", tag=tag):
            context = contextvars.copy_context()

            def handler():
                with obs.span("hop.handler", tag=tag):
                    return tag

            result = await loop.run_in_executor(executor, context.run, handler)
            assert result == tag

    async def main():
        await asyncio.gather(*(request(f"h{i}") for i in range(12)))

    try:
        asyncio.run(main())
    finally:
        executor.shutdown()
    requests = {r["attrs"]["tag"]: r
                for r in sink.records if r["name"] == "hop.request"}
    handlers = [r for r in sink.records if r["name"] == "hop.handler"]
    assert len(requests) == len(handlers) == 12
    for handler in handlers:
        parent = requests[handler["attrs"]["tag"]]
        assert handler["trace"] == parent["trace"]
        assert handler["parent"] == parent["span"]
