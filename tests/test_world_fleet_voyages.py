"""Tests for fleet synthesis and voyage scheduling."""

import random
from collections import Counter

import pytest

from repro.ais.vesseltypes import MarketSegment
from repro.world import SeaRouter, build_fleet, schedule_voyages
from repro.world.fleet import imo_check_digit, make_imo
from repro.world.voyages import pick_home_routes


class TestFleet:
    def test_size_and_determinism(self):
        fleet_a = build_fleet(50, seed=9)
        fleet_b = build_fleet(50, seed=9)
        assert len(fleet_a) == 50
        assert fleet_a == fleet_b

    def test_different_seeds_differ(self):
        assert build_fleet(20, seed=1) != build_fleet(20, seed=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_fleet(0)

    def test_mmsi_unique_and_nine_digits(self):
        fleet = build_fleet(200, seed=3)
        mmsis = [vessel.mmsi for vessel in fleet]
        assert len(set(mmsis)) == 200
        for mmsi in mmsis:
            assert 100_000_000 <= mmsi <= 999_999_999

    def test_imo_check_digits_valid(self):
        for vessel in build_fleet(100, seed=4):
            assert vessel.imo % 10 == imo_check_digit(vessel.imo // 10)

    def test_known_imo_check_digit(self):
        # IMO 9074729 is the canonical example: base 907472 → check 9.
        assert make_imo(907472) == 9074729

    def test_make_imo_validation(self):
        with pytest.raises(ValueError):
            make_imo(99_999)

    def test_segment_mix_roughly_respected(self):
        fleet = build_fleet(600, seed=5)
        counts = Counter(vessel.segment for vessel in fleet)
        assert counts[MarketSegment.CONTAINER] > counts[MarketSegment.TUG]
        commercial = sum(1 for v in fleet if v.is_commercial)
        assert 0.6 < commercial / 600 < 0.95

    def test_commercial_requires_tonnage(self):
        fleet = build_fleet(300, seed=6)
        for vessel in fleet:
            if vessel.segment is MarketSegment.FISHING:
                assert not vessel.is_commercial
            if vessel.is_commercial:
                assert vessel.grt >= 5_000

    def test_ship_type_codes_match_segments(self):
        from repro.ais.vesseltypes import segment_for_type

        for vessel in build_fleet(100, seed=7):
            assert segment_for_type(vessel.ship_type) is vessel.segment

    def test_speeds_plausible(self):
        for vessel in build_fleet(100, seed=8):
            assert 6.0 <= vessel.design_speed_kn <= 25.0


class TestVoyages:
    @pytest.fixture(scope="class")
    def router(self):
        return SeaRouter()

    def test_home_routes_are_sailable(self, router):
        rng = random.Random(1)
        routes = pick_home_routes(MarketSegment.CONTAINER, rng, router)
        assert 1 <= len(routes) <= 3
        for origin, destination in routes:
            assert origin != destination
            router.route_nodes(origin, destination)

    def test_passenger_routes_stay_short(self, router):
        from repro.geo import haversine_m
        from repro.world.ports import port_by_id

        rng = random.Random(2)
        for _ in range(5):
            routes = pick_home_routes(MarketSegment.PASSENGER, rng, router)
            for origin, destination in routes:
                a, b = port_by_id(origin), port_by_id(destination)
                assert haversine_m(a.lat, a.lon, b.lat, b.lon) <= 1_500_000

    def test_schedule_covers_window(self, router):
        rng = random.Random(3)
        plans = schedule_voyages(
            mmsi=235000001,
            segment=MarketSegment.CARGO,
            design_speed_kn=13.0,
            router=router,
            start_ts=0.0,
            end_ts=45 * 86_400.0,
            rng=rng,
        )
        assert plans
        departures = [plan.depart_ts for plan in plans]
        assert departures == sorted(departures)
        assert departures[0] < 3 * 86_400.0

    def test_consecutive_voyages_chain_positions(self, router):
        rng = random.Random(4)
        plans = schedule_voyages(
            mmsi=235000002,
            segment=MarketSegment.TANKER,
            design_speed_kn=13.5,
            router=router,
            start_ts=0.0,
            end_ts=90 * 86_400.0,
            rng=rng,
        )
        for previous, current in zip(plans, plans[1:]):
            assert current.origin == previous.destination

    def test_route_nodes_start_and_end_at_ports(self, router):
        rng = random.Random(5)
        plans = schedule_voyages(
            mmsi=235000003,
            segment=MarketSegment.CONTAINER,
            design_speed_kn=18.0,
            router=router,
            start_ts=0.0,
            end_ts=60 * 86_400.0,
            rng=rng,
        )
        for plan in plans:
            assert plan.route_nodes[0] == plan.origin
            assert plan.route_nodes[-1] == plan.destination
