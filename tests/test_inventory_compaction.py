"""Tests for SSTable compaction."""

import pytest

from repro.hexgrid import latlng_to_cell
from repro.inventory import GroupKey, Inventory, open_inventory, write_inventory
from repro.inventory.compaction import merge_tables
from repro.inventory.summary import CellSummary


def _summary(records, base=0):
    summary = CellSummary()
    for i in range(records):
        summary.update(
            mmsi=100_000_000 + base + i, sog=8.0 + i, cog=90.0, heading=90,
            trip_id=f"t{base + i}", eto_s=10.0, ata_s=20.0,
            origin="AAAAA", destination="BBBBB",
        )
    return summary


def _write(tmp_path, name, cells_and_counts, base=0):
    inventory = Inventory(resolution=6)
    for cell, count in cells_and_counts:
        inventory.put(GroupKey(cell=cell), _summary(count, base=base))
    path = tmp_path / name
    write_inventory(inventory, path)
    return path


def test_merge_requires_inputs(tmp_path):
    with pytest.raises(ValueError):
        merge_tables([], tmp_path / "out.sst")


def test_merge_rejects_output_aliasing_an_input(tmp_path):
    cell = latlng_to_cell(10.0, 10.0, 6)
    table = _write(tmp_path, "a.sst", [(cell, 3)])
    other = _write(tmp_path, "b.sst", [(cell, 2)])
    before = table.read_bytes()
    with pytest.raises(ValueError):
        merge_tables([other, table], table)
    # Relative-path alias of the same file is caught too.
    with pytest.raises(ValueError):
        merge_tables([other, table], tmp_path / "sub" / ".." / "a.sst")
    assert table.read_bytes() == before  # input never clobbered


def test_merge_closes_readers_when_an_input_is_invalid(tmp_path, monkeypatch):
    """A bad input mid-list must not leak the readers opened before it."""
    import repro.inventory.compaction as compaction

    opened = []
    real_reader = compaction.SSTableReader

    class TrackingReader(real_reader):
        def __init__(self, path):
            super().__init__(path)
            opened.append(self)
            self.closed = False

        def close(self):
            self.closed = True
            super().close()

    monkeypatch.setattr(compaction, "SSTableReader", TrackingReader)
    cell = latlng_to_cell(10.0, 10.0, 6)
    good = _write(tmp_path, "good.sst", [(cell, 3)])
    bad = tmp_path / "bad.sst"
    bad.write_bytes(b"definitely not an inventory table..........")
    with pytest.raises(ValueError):
        merge_tables([good, bad], tmp_path / "out.sst")
    assert len(opened) == 1
    assert all(reader.closed for reader in opened)


def test_disjoint_tables_concatenate(tmp_path):
    cell_a = latlng_to_cell(10.0, 10.0, 6)
    cell_b = latlng_to_cell(20.0, 20.0, 6)
    a = _write(tmp_path, "a.sst", [(cell_a, 3)])
    b = _write(tmp_path, "b.sst", [(cell_b, 5)])
    out = tmp_path / "merged.sst"
    assert merge_tables([a, b], out) == 2
    with open_inventory(out) as reader:
        assert reader.get(GroupKey(cell=cell_a)).records == 3
        assert reader.get(GroupKey(cell=cell_b)).records == 5


def test_overlapping_keys_merge_summaries(tmp_path):
    cell = latlng_to_cell(10.0, 10.0, 6)
    a = _write(tmp_path, "a.sst", [(cell, 3)], base=0)
    b = _write(tmp_path, "b.sst", [(cell, 4)], base=100)
    out = tmp_path / "merged.sst"
    assert merge_tables([a, b], out) == 1
    with open_inventory(out) as reader:
        merged = reader.get(GroupKey(cell=cell))
        assert merged.records == 7
        assert merged.ships.cardinality() == 7  # disjoint vessel ids


def test_output_stays_sorted(tmp_path):
    import random

    rng = random.Random(4)
    cells = [latlng_to_cell(rng.uniform(-60, 60), rng.uniform(-170, 170), 6)
             for _ in range(40)]
    a = _write(tmp_path, "a.sst", [(c, 1) for c in cells[:25]])
    b = _write(tmp_path, "b.sst", [(c, 2) for c in cells[20:]])
    out = tmp_path / "merged.sst"
    merge_tables([a, b], out)
    with open_inventory(out) as reader:
        keys = [key.sort_key() for key, _ in reader.scan()]
        assert keys == sorted(keys)


def test_single_input_is_a_copy(tmp_path):
    cell = latlng_to_cell(5.0, 5.0, 6)
    a = _write(tmp_path, "a.sst", [(cell, 2)])
    out = tmp_path / "copy.sst"
    assert merge_tables([a], out) == 1
    with open_inventory(out) as reader:
        assert reader.get(GroupKey(cell=cell)).records == 2


def test_windowed_builds_compact_to_whole(tmp_path, small_world):
    """The LSM claim end-to-end: per-window tables compacted equal one
    whole-archive build (for groups unaffected by window-boundary trip
    loss, i.e. build windows on trip boundaries by splitting vessels)."""
    from repro import PipelineConfig, build_inventory

    # Split by vessel (not time) so no trips straddle a window.
    mmsis = sorted({r.mmsi for r in small_world.positions})
    half = set(mmsis[: len(mmsis) // 2])
    window_a = [r for r in small_world.positions if r.mmsi in half]
    window_b = [r for r in small_world.positions if r.mmsi not in half]
    config = PipelineConfig()
    table_paths = []
    for name, window in [("a.sst", window_a), ("b.sst", window_b)]:
        inventory = build_inventory(
            window, small_world.fleet, small_world.ports, config
        ).inventory
        path = tmp_path / name
        write_inventory(inventory, path)
        table_paths.append(path)
    out = tmp_path / "compacted.sst"
    merge_tables(table_paths, out)

    whole = build_inventory(
        small_world.positions, small_world.fleet, small_world.ports, config
    ).inventory
    with open_inventory(out) as reader:
        compacted = {key: summary for key, summary in reader.scan()}
    assert len(compacted) == len(whole)
    for key, summary in whole.items():
        assert compacted[key].records == summary.records
