"""Routed answers are byte-identical to single-node answers.

The acceptance bar for the sharded tier: a client must not be able to
tell the router from a single server.  This suite stands up both against
the *same* built inventory — one reference server over the combined
table, three shard servers over the split tables fronted by the router —
and compares raw response payloads for every request type.  Summaries
travel the wire as base64 of the codec's bytes, so comparing responses
compares codec bytes exactly; ``route_cells`` additionally pins the
merged cell ordering against the single-node serialization order.

Error envelopes are compared too: validation errors must carry identical
codes, messages and details whether the backend is local or sharded.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.hexgrid import cell_to_latlng
from repro.inventory import SSTableInventory, write_inventory
from repro.inventory.keys import GroupKey, GroupingSet
from repro.inventory.sstable import write_inventory as _write
from repro.server import (
    InventoryClient,
    InventoryService,
    ServerConfig,
    ServerError,
    ServerThread,
    ShardedInventory,
)
from repro.server.protocol import summary_to_wire
from repro.server.sharding import publish_split

N_SHARDS = 3


@pytest.fixture(scope="module")
def cluster(tmp_path_factory, small_inventory):
    """One combined table + its 3-shard split, all served: yields
    (single client, routed client, sharded backend, inventory)."""
    tmp = tmp_path_factory.mktemp("equivalence")
    source = tmp / "inv.sst"
    write_inventory(small_inventory, source)
    placement = publish_split(source, resolution=6, shards=N_SHARDS)
    with contextlib.ExitStack() as stack:
        addresses = {}
        for spec in placement.shards:
            backend = stack.enter_context(
                SSTableInventory(tmp / spec.table, resolution=6)
            )
            handle = stack.enter_context(
                ServerThread(InventoryService(backend), ServerConfig())
            )
            addresses[spec.name] = [handle.address]
        reference_backend = stack.enter_context(SSTableInventory(source))
        reference = stack.enter_context(
            ServerThread(InventoryService(reference_backend), ServerConfig())
        )
        sharded = stack.enter_context(ShardedInventory(placement, addresses))
        router = stack.enter_context(
            ServerThread(InventoryService(sharded), ServerConfig())
        )
        single = stack.enter_context(InventoryClient(*reference.address))
        routed = stack.enter_context(InventoryClient(*router.address))
        yield single, routed, sharded, small_inventory


def _sample_keys(inventory, grouping_set, limit):
    keys = [
        key for key, _ in inventory.items() if key.grouping_set is grouping_set
    ]
    step = max(1, len(keys) // limit)
    return keys[::step][:limit]


class TestPointLookups:
    def test_summary_at_identical_across_grouping_sets(self, cluster):
        single, routed, _, inventory = cluster
        checked = 0
        for grouping_set in GroupingSet:
            for key in _sample_keys(inventory, grouping_set, 25):
                lat, lon = cell_to_latlng(key.cell)
                params = {"lat": lat, "lon": lon}
                if key.vessel_type is not None:
                    params["vessel_type"] = key.vessel_type
                if key.origin is not None:
                    params["origin"] = key.origin
                    params["destination"] = key.destination
                a = single.request("summary_at", **params)
                b = routed.request("summary_at", **params)
                assert a == b, f"summary_at diverged for {key}"
                assert a["summary"] is not None  # probe hit a real group
                checked += 1
        assert checked >= 30

    def test_get_codec_bytes_identical(self, cluster):
        """The backend-level contract: ShardedInventory.get returns the
        same codec bytes as the local backend for every stored key."""
        _, _, sharded, inventory = cluster
        checked = 0
        for grouping_set in GroupingSet:
            for key in _sample_keys(inventory, grouping_set, 15):
                local = inventory.get(key)
                remote = sharded.get(key)
                assert local is not None and remote is not None
                assert summary_to_wire(remote) == summary_to_wire(local)
                checked += 1
        assert checked >= 20

    def test_miss_is_identical(self, cluster):
        single, routed, _, _ = cluster
        a = single.request("summary_at", lat=0.0, lon=0.0)
        b = routed.request("summary_at", lat=0.0, lon=0.0)
        assert a == b == {"summary": None}

    def test_top_destinations_identical(self, cluster):
        single, routed, _, inventory = cluster
        for key in _sample_keys(inventory, GroupingSet.CELL, 20):
            lat, lon = cell_to_latlng(key.cell)
            assert single.request(
                "top_destinations_at", lat=lat, lon=lon
            ) == routed.request("top_destinations_at", lat=lat, lon=lon)

    def test_eta_identical(self, cluster):
        single, routed, _, inventory = cluster
        # Probe cells that actually carry arrival-time data, so at least
        # some comparisons exercise a non-None estimate.
        keys = [
            key
            for key, summary in inventory.items()
            if key.grouping_set is GroupingSet.CELL and summary.ata.count >= 3
        ]
        assert keys, "the small world must contain ATA-bearing cells"
        answered = 0
        for key in keys[:20]:
            lat, lon = cell_to_latlng(key.cell)
            a = single.request("eta", lat=lat, lon=lon)
            b = routed.request("eta", lat=lat, lon=lon)
            assert a == b
            answered += a["eta"] is not None
        assert answered > 0


class TestScatterGather:
    def test_route_cells_identical(self, cluster):
        """The scatter-gather path: disjoint per-shard partials union to
        the single-node answer, in the single-node cell order."""
        single, routed, _, inventory = cluster
        routes = sorted(
            {
                (key.origin, key.destination, key.vessel_type)
                for key, _ in inventory.items()
                if key.grouping_set is GroupingSet.CELL_OD_TYPE
            }
        )
        assert routes, "the small world must contain routes"
        for origin, destination, vessel_type in routes[:15]:
            a = single.request(
                "route_cells",
                origin=origin,
                destination=destination,
                vessel_type=vessel_type,
            )
            b = routed.request(
                "route_cells",
                origin=origin,
                destination=destination,
                vessel_type=vessel_type,
            )
            assert a == b
            # Byte-identity includes ordering: JSON objects are written
            # in insertion order, so pin it explicitly.
            assert list(a["cells"]) == list(b["cells"])
            assert a["cells"], "route probes must hit stored routes"

    def test_multi_get_identical(self, cluster):
        single, routed, _, inventory = cluster
        keys = []
        for key in _sample_keys(inventory, GroupingSet.CELL, 40):
            lat, lon = cell_to_latlng(key.cell)
            keys.append({"lat": lat, "lon": lon})
        keys.append({"lat": 0.0, "lon": 0.0})  # one miss rides along
        a = single.request("multi_get", keys=keys)
        b = routed.request("multi_get", keys=keys)
        assert a == b
        assert a["summaries"][-1] is None
        assert any(wire is not None for wire in a["summaries"])

    def test_multi_query_identical(self, cluster):
        single, routed, _, inventory = cluster
        key = _sample_keys(inventory, GroupingSet.CELL, 1)[0]
        lat, lon = cell_to_latlng(key.cell)
        requests = [
            {"type": "summary_at", "lat": lat, "lon": lon},
            {"type": "ping"},
            {"type": "summary_at", "lat": lat},  # per-item error entry
            {"type": "top_destinations_at", "lat": lat, "lon": lon},
        ]
        a = single.request("multi_query", requests=requests)
        b = routed.request("multi_query", requests=requests)
        assert a == b
        assert not a["responses"][2]["ok"]


class TestErrorEnvelopes:
    def _envelope(self, client, request_type, **params):
        try:
            client.request(request_type, **params)
        except ServerError as exc:
            return (exc.code, str(exc), exc.details)
        pytest.fail(f"{request_type} with {params} should have errored")

    @pytest.mark.parametrize(
        ("request_type", "params"),
        [
            ("summary_at", {"lat": 1.0, "lon": 2.0, "origin": "SIN"}),
            (
                "summary_at",
                {"lat": 1.0, "lon": 2.0, "origin": "SIN", "destination": "RTM"},
            ),
            ("summary_at", {"lat": "x", "lon": 2.0}),
            ("route_cells", {"origin": "SIN", "destination": "RTM"}),
            ("multi_get", {"keys": []}),
            ("multi_get", {"keys": [{"lat": 1.0}]}),
            ("multi_get", {"keys": [{"lat": 1.0, "lon": 2.0}, {"lat": 3.0}]}),
            (
                "multi_get",
                {"keys": [{"lat": 1.0, "lon": 2.0, "origin": "SIN"}]},
            ),
            ("nonsense", {}),
        ],
    )
    def test_error_envelopes_identical(self, cluster, request_type, params):
        single, routed, _, _ = cluster
        assert self._envelope(
            single, request_type, **params
        ) == self._envelope(routed, request_type, **params)
