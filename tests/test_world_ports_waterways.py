"""Integrity tests for the port database and the sea-lane graph."""

import pytest

from repro.geo import haversine_m
from repro.world import CANAL_EDGES, PORTS, SEA_EDGES, WAYPOINTS, port_by_id
from repro.world.ports import Port, ports_dataframe_rows


class TestPorts:
    def test_database_size(self):
        assert len(PORTS) >= 100

    def test_ids_unique(self):
        ids = [port.port_id for port in PORTS]
        assert len(ids) == len(set(ids))

    def test_coordinates_valid(self):
        for port in PORTS:
            assert -90.0 <= port.lat <= 90.0
            assert -180.0 <= port.lon <= 180.0

    def test_every_gateway_exists(self):
        for port in PORTS:
            assert port.gateways, port.port_id
            for gateway in port.gateways:
                assert gateway in WAYPOINTS, (port.port_id, gateway)

    def test_gateways_are_within_plausible_reach(self):
        # A gateway more than ~5000 km from its port would be a data bug.
        for port in PORTS:
            nearest = min(
                haversine_m(
                    port.lat, port.lon,
                    WAYPOINTS[g].lat, WAYPOINTS[g].lon,
                )
                for g in port.gateways
            )
            assert nearest < 5_000_000, port.port_id

    def test_lookup_by_id(self):
        assert port_by_id("NLRTM").name == "Rotterdam"
        with pytest.raises(KeyError):
            port_by_id("XXXXX")

    def test_famous_ports_present(self):
        for port_id in ["SGSIN", "CNSHA", "NLRTM", "USLAX", "AEJEA", "BRSSZ"]:
            port_by_id(port_id)

    def test_weight_and_radius_positive(self):
        for port in PORTS:
            assert port.weight > 0
            assert port.radius_m > 0

    def test_port_validation(self):
        with pytest.raises(ValueError):
            Port("BAD01", "Bad", "XX", 95.0, 0.0, 1.0, ("GIB",))
        with pytest.raises(ValueError):
            Port("BAD02", "Bad", "XX", 0.0, 0.0, 0.0, ("GIB",))

    def test_dataframe_rows(self):
        rows = ports_dataframe_rows()
        assert len(rows) == len(PORTS)
        assert set(rows[0]) == {
            "port_id", "name", "country", "lat", "lon", "weight", "radius_m"
        }

    def test_baltic_region_has_enough_ports_for_figure4(self):
        baltic = [
            p for p in PORTS
            if 53.0 <= p.lat <= 61.0 and 9.0 <= p.lon <= 31.0
        ]
        assert len(baltic) >= 10


class TestWaterways:
    def test_edges_reference_known_waypoints(self):
        for a, b in SEA_EDGES:
            assert a in WAYPOINTS, a
            assert b in WAYPOINTS, b

    def test_canal_edges_reference_known_waypoints(self):
        for a, b, tag in CANAL_EDGES:
            assert a in WAYPOINTS
            assert b in WAYPOINTS
            assert tag in ("suez", "panama")

    def test_no_duplicate_edges(self):
        seen = set()
        for a, b in SEA_EDGES:
            key = frozenset((a, b))
            assert key not in seen, (a, b)
            seen.add(key)

    def test_no_self_loops(self):
        for a, b in SEA_EDGES:
            assert a != b

    def test_canal_endpoints_are_close(self):
        for a, b, _tag in CANAL_EDGES:
            wa, wb = WAYPOINTS[a], WAYPOINTS[b]
            assert haversine_m(wa.lat, wa.lon, wb.lat, wb.lon) < 250_000

    def test_graph_is_connected(self):
        adjacency: dict[str, set[str]] = {}
        for a, b in list(SEA_EDGES) + [(a, b) for a, b, _ in CANAL_EDGES]:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        start = next(iter(WAYPOINTS))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(WAYPOINTS)
