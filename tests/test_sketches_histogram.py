"""Tests for the fixed-width direction histogram."""

import pytest

from repro.sketches import DirectionHistogram


def test_width_must_divide_360():
    with pytest.raises(ValueError):
        DirectionHistogram(bin_width_deg=50.0)
    with pytest.raises(ValueError):
        DirectionHistogram(bin_width_deg=0.0)


def test_default_is_paper_thirty_degree_bins():
    assert DirectionHistogram().num_bins == 12


def test_bin_boundaries():
    histogram = DirectionHistogram(30.0)
    assert histogram.bin_index(0.0) == 0
    assert histogram.bin_index(29.999) == 0
    assert histogram.bin_index(30.0) == 1
    assert histogram.bin_index(359.999) == 11
    assert histogram.bin_index(360.0) == 0  # wraps


def test_negative_angles_normalise():
    histogram = DirectionHistogram(30.0)
    assert histogram.bin_index(-10.0) == 11


def test_update_and_shares():
    histogram = DirectionHistogram(90.0)
    for angle in [10.0, 20.0, 100.0, 200.0]:
        histogram.update(angle)
    assert histogram.counts == [2, 1, 1, 0]
    assert histogram.share(0) == pytest.approx(0.5)
    assert histogram.share(3) == 0.0


def test_mode_bin_and_tiebreak():
    histogram = DirectionHistogram(90.0)
    assert histogram.mode_bin() is None
    histogram.update(50.0)
    histogram.update(100.0)
    assert histogram.mode_bin() == 0  # tie → lowest index


def test_bin_range():
    histogram = DirectionHistogram(30.0)
    assert histogram.bin_range(0) == (0.0, 30.0)
    assert histogram.bin_range(11) == (330.0, 360.0)
    with pytest.raises(ValueError):
        histogram.bin_range(12)


def test_merge_requires_same_width():
    with pytest.raises(ValueError):
        DirectionHistogram(30.0).merge(DirectionHistogram(90.0))


def test_merge_adds_binwise():
    a = DirectionHistogram(90.0)
    b = DirectionHistogram(90.0)
    a.update(45.0)
    b.update(45.0)
    b.update(135.0)
    a.merge(b)
    assert a.counts == [2, 1, 0, 0]
    assert a.total == 3


def test_weighted_update():
    histogram = DirectionHistogram(90.0)
    histogram.update(10.0, weight=5)
    assert histogram.counts[0] == 5


def test_dict_roundtrip():
    histogram = DirectionHistogram(30.0)
    for angle in range(0, 360, 7):
        histogram.update(float(angle))
    restored = DirectionHistogram.from_dict(histogram.to_dict())
    assert restored.counts == histogram.counts
    assert restored.total == histogram.total


def test_from_dict_validates_bin_count():
    with pytest.raises(ValueError):
        DirectionHistogram.from_dict({"width": 30.0, "counts": [1, 2]})
