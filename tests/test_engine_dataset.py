"""Tests for the Dataset operator algebra against in-memory references."""

import operator
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine, EngineConfig


@pytest.fixture()
def eng():
    with Engine(EngineConfig(num_partitions=4)) as engine:
        yield engine


def test_parallelize_partitions_evenly(eng):
    ds = eng.parallelize(range(10), num_partitions=3)
    parts = ds.collect_partitions()
    assert [len(p) for p in parts] == [4, 3, 3]
    assert ds.collect() == list(range(10))


def test_parallelize_fewer_records_than_partitions(eng):
    ds = eng.parallelize([1, 2])
    assert ds.count() == 2
    assert all(parts for parts in ds.collect_partitions())


def test_empty_dataset(eng):
    assert eng.empty().collect() == []
    assert eng.empty().count() == 0


def test_map_filter_flat_map(eng):
    ds = eng.parallelize(range(20))
    assert ds.map(lambda x: x * 2).collect() == [x * 2 for x in range(20)]
    assert ds.filter(lambda x: x % 3 == 0).collect() == [x for x in range(20) if x % 3 == 0]
    assert eng.parallelize([1, 2]).flat_map(lambda x: [x] * x).collect() == [1, 2, 2]


def test_map_partitions_receives_index(eng):
    ds = eng.parallelize(range(8), num_partitions=4)
    tagged = ds.map_partitions(lambda i, records: [(i, r) for r in records])
    indices = {i for i, _ in tagged.collect()}
    assert indices == {0, 1, 2, 3}


def test_key_by_map_values_flat_map_values(eng):
    ds = eng.parallelize(["aa", "b", "ccc"]).key_by(len)
    assert ds.collect() == [(2, "aa"), (1, "b"), (3, "ccc")]
    assert ds.map_values(str.upper).collect() == [(2, "AA"), (1, "B"), (3, "CCC")]
    doubled = ds.flat_map_values(lambda v: [v, v])
    assert doubled.count() == 6


def test_union(eng):
    a = eng.parallelize([1, 2])
    b = eng.parallelize([3])
    assert sorted(a.union(b).collect()) == [1, 2, 3]


def test_reduce_by_key_matches_reference(eng):
    rng = random.Random(0)
    data = [(rng.randrange(10), rng.randrange(100)) for _ in range(2000)]
    reference: dict = {}
    for key, value in data:
        reference[key] = reference.get(key, 0) + value
    result = dict(eng.parallelize(data).reduce_by_key(operator.add).collect())
    assert result == reference


def test_group_by_key_collects_all_values(eng):
    data = [(i % 3, i) for i in range(30)]
    groups = dict(eng.parallelize(data).group_by_key().collect())
    for key, values in groups.items():
        assert sorted(values) == [i for i in range(30) if i % 3 == key]


def test_combine_by_key_with_monoid(eng):
    data = [("a", 1.0), ("b", 2.0), ("a", 3.0)]
    result = dict(
        eng.parallelize(data)
        .combine_by_key(
            create=lambda v: [v],
            merge_value=lambda acc, v: acc + [v],
            merge_combiners=lambda x, y: x + y,
        )
        .collect()
    )
    assert sorted(result["a"]) == [1.0, 3.0]
    assert result["b"] == [2.0]


def test_distinct(eng):
    data = [1, 2, 2, 3, 3, 3, "x", "x"]
    assert sorted(eng.parallelize(data).distinct().collect(), key=str) == [1, 2, 3, "x"]


@settings(max_examples=25)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300))
def test_sort_by_total_order(values):
    with Engine(EngineConfig(num_partitions=3)) as engine:
        ds = engine.parallelize(values)
        assert ds.sort_by(lambda x: x).collect() == sorted(values)
        assert ds.sort_by(lambda x: x, ascending=False).collect() == sorted(
            values, reverse=True
        )


def test_repartition_preserves_records(eng):
    ds = eng.parallelize(range(100)).repartition(7)
    assert ds.num_partitions == 7
    assert sorted(ds.collect()) == list(range(100))
    # Re-evaluating must give the same routing (stateless round-robin).
    assert ds.collect_partitions() == ds.collect_partitions()


def test_repartition_validates(eng):
    with pytest.raises(ValueError):
        eng.parallelize([1]).repartition(0)


def test_join_types(eng):
    left = eng.parallelize([(1, "a"), (2, "b"), (3, "c")])
    right = eng.parallelize([(1, "x"), (1, "y"), (4, "z")])
    assert sorted(left.join(right).collect()) == [(1, ("a", "x")), (1, ("a", "y"))]
    assert sorted(left.left_join(right).collect()) == [
        (1, ("a", "x")), (1, ("a", "y")), (2, ("b", None)), (3, ("c", None)),
    ]
    cogrouped = dict(left.cogroup(right).collect())
    assert cogrouped[1] == (["a"], ["x", "y"])
    assert cogrouped[4] == ([], ["z"])


def test_actions_take_first_reduce_aggregate(eng):
    ds = eng.parallelize(range(10))
    assert ds.take(3) == [0, 1, 2]
    assert ds.take(0) == []
    assert ds.first() == 0
    assert ds.reduce(operator.add) == 45
    assert ds.aggregate(0, lambda acc, x: acc + 1, operator.add) == 10
    with pytest.raises(ValueError):
        ds.take(-1)
    with pytest.raises(ValueError):
        eng.empty().first()
    with pytest.raises(ValueError):
        eng.empty().reduce(operator.add)


def test_count_by_key_and_to_dict(eng):
    data = [("a", 1), ("b", 2), ("a", 3)]
    ds = eng.parallelize(data)
    assert ds.count_by_key() == {"a": 2, "b": 1}
    assert ds.to_dict() == {"a": 3, "b": 2}


def test_persist_avoids_recompute(eng):
    calls = []

    def probe(x):
        calls.append(x)
        return x

    ds = eng.parallelize(range(5)).map(probe).persist()
    ds.collect()
    ds.collect()
    assert len(calls) == 5  # second collect served from cache
    ds.unpersist()
    ds.collect()
    assert len(calls) == 10


def test_within_action_memoization(eng):
    calls = []

    def probe(x):
        calls.append(x)
        return (x % 2, x)

    keyed = eng.parallelize(range(6)).map(probe)
    joined = keyed.join(keyed)
    joined.collect()
    # Both join inputs share the same parent node: computed once.
    assert len(calls) == 6


def test_union_and_join_reject_foreign_engines(eng):
    with Engine(EngineConfig(num_partitions=2)) as other:
        foreign = other.parallelize([1])
        with pytest.raises(ValueError):
            eng.parallelize([1]).union(foreign)
        with pytest.raises(ValueError):
            eng.parallelize([(1, 2)]).join(foreign)
