"""Tests for repro.geo.distance."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    EARTH_RADIUS_M,
    cross_track_distance_m,
    destination_point,
    haversine_m,
    haversine_nm,
    initial_bearing_deg,
    speed_between_knots,
)

LATS = st.floats(min_value=-85.0, max_value=85.0)
LONS = st.floats(min_value=-180.0, max_value=180.0)


def test_one_degree_of_longitude_at_equator():
    assert haversine_m(0.0, 0.0, 0.0, 1.0) == pytest.approx(111_195, rel=1e-3)


def test_quarter_circumference_pole_to_equator():
    expected = math.pi * EARTH_RADIUS_M / 2.0
    assert haversine_m(0.0, 10.0, 90.0, 10.0) == pytest.approx(expected, rel=1e-9)


def test_antipodal_distance_is_half_circumference():
    expected = math.pi * EARTH_RADIUS_M
    assert haversine_m(0.0, 0.0, 0.0, 180.0) == pytest.approx(expected, rel=1e-9)


def test_zero_distance():
    assert haversine_m(42.5, -71.0, 42.5, -71.0) == 0.0


def test_nautical_mile_conversion():
    assert haversine_nm(0.0, 0.0, 0.0, 1.0) == pytest.approx(60.04, rel=1e-3)


@given(lat1=LATS, lon1=LONS, lat2=LATS, lon2=LONS)
def test_haversine_symmetry(lat1, lon1, lat2, lon2):
    forward = haversine_m(lat1, lon1, lat2, lon2)
    backward = haversine_m(lat2, lon2, lat1, lon1)
    assert forward == pytest.approx(backward, abs=1e-6)


@given(lat1=LATS, lon1=LONS, lat2=LATS, lon2=LONS)
def test_haversine_bounded_by_half_circumference(lat1, lon1, lat2, lon2):
    assert 0.0 <= haversine_m(lat1, lon1, lat2, lon2) <= math.pi * EARTH_RADIUS_M + 1.0


def test_bearing_due_north():
    assert initial_bearing_deg(10.0, 5.0, 20.0, 5.0) == pytest.approx(0.0, abs=1e-9)


def test_bearing_due_east_at_equator():
    assert initial_bearing_deg(0.0, 5.0, 0.0, 15.0) == pytest.approx(90.0, abs=1e-9)


def test_bearing_due_south():
    assert initial_bearing_deg(20.0, 5.0, 10.0, 5.0) == pytest.approx(180.0, abs=1e-9)


def test_bearing_due_west_at_equator():
    assert initial_bearing_deg(0.0, 15.0, 0.0, 5.0) == pytest.approx(270.0, abs=1e-9)


@given(lat=LATS, lon=LONS, bearing=st.floats(min_value=0, max_value=359.99),
       distance=st.floats(min_value=1.0, max_value=2_000_000.0))
def test_destination_point_roundtrip_distance(lat, lon, bearing, distance):
    lat2, lon2 = destination_point(lat, lon, bearing, distance)
    assert haversine_m(lat, lon, lat2, lon2) == pytest.approx(distance, rel=1e-6)


def test_destination_point_normalises_longitude():
    lat2, lon2 = destination_point(0.0, 179.5, 90.0, 200_000.0)
    assert -180.0 < lon2 <= 180.0
    assert lon2 < 0  # crossed the antimeridian


def test_cross_track_sign_and_magnitude():
    # Point due north of an eastbound track at the equator: left of track.
    offset = cross_track_distance_m(1.0, 5.0, 0.0, 0.0, 0.0, 10.0)
    assert offset == pytest.approx(-111_195, rel=1e-2)
    offset_south = cross_track_distance_m(-1.0, 5.0, 0.0, 0.0, 0.0, 10.0)
    assert offset_south == pytest.approx(111_195, rel=1e-2)


def test_point_on_track_has_zero_cross_track():
    assert cross_track_distance_m(0.0, 5.0, 0.0, 0.0, 0.0, 10.0) == pytest.approx(
        0.0, abs=1.0
    )


def test_speed_between_knots_basic():
    # One degree of longitude at the equator in one hour ≈ 60 knots.
    speed = speed_between_knots(0.0, 0.0, 0.0, 0.0, 1.0, 3600.0)
    assert speed == pytest.approx(60.04, rel=1e-3)


def test_speed_between_same_timestamp_different_position_is_infinite():
    assert speed_between_knots(0.0, 0.0, 100.0, 0.0, 1.0, 100.0) == math.inf


def test_speed_between_identical_points_is_zero():
    assert speed_between_knots(5.0, 5.0, 100.0, 5.0, 5.0, 100.0) == 0.0


def test_speed_is_direction_independent():
    forward = speed_between_knots(0.0, 0.0, 0.0, 0.5, 0.5, 1800.0)
    backward = speed_between_knots(0.5, 0.5, 0.0, 0.0, 0.0, 1800.0)
    assert forward == pytest.approx(backward)
