"""Cross-subsystem integration tests.

These exercise seams that the per-module suites cannot: NMEA wire format
feeding the pipeline, inventory persistence feeding the apps, split-window
inventory merging, and the Suez disruption round trip.
"""


import pytest

from repro import (
    PipelineConfig,
    WorldConfig,
    build_inventory,
    generate_dataset,
)
from repro.ais import decode_sentences, encode_message
from repro.apps import AnomalyDetector
from repro.inventory import open_inventory, write_inventory
from repro.inventory.keys import GroupingSet


def test_nmea_wire_roundtrip_feeds_pipeline(small_world):
    """Encode a slice of the archive to AIVDM sentences, decode it back,
    and verify the pipeline sees identical records."""
    slice_ = small_world.positions[:500]
    wire: list[str] = []
    for index, report in enumerate(slice_):
        wire.extend(encode_message(report, message_id=str(index % 10)))
    decoded = []
    for line, original in zip(wire, slice_):
        decoded.extend(decode_sentences([line], epoch_ts=original.epoch_ts))
    assert len(decoded) == len(slice_)
    for original, received in zip(slice_, decoded):
        assert received.mmsi == original.mmsi
        assert received.lat == pytest.approx(original.lat, abs=1e-5)
        assert received.sog == pytest.approx(original.sog, abs=0.06)


def test_split_window_inventories_merge_to_whole(small_world):
    """The monoid property at system level: building two half-window
    inventories and merging equals building one inventory."""
    positions = small_world.positions
    midpoint_ts = positions[len(positions) // 2].epoch_ts
    first = [r for r in positions if r.epoch_ts < midpoint_ts]
    second = [r for r in positions if r.epoch_ts >= midpoint_ts]
    config = PipelineConfig()

    whole = build_inventory(
        positions, small_world.fleet, small_world.ports, config
    ).inventory
    left = build_inventory(
        first, small_world.fleet, small_world.ports, config
    ).inventory
    right = build_inventory(
        second, small_world.fleet, small_world.ports, config
    ).inventory
    left.merge(right)

    # Trips spanning the split are lost on both sides (each half lacks one
    # endpoint), so the merged inventory is a subset — every group it DOES
    # have must be consistent with the whole, and coverage must be high.
    assert len(left) <= len(whole)
    # Ocean crossings take longer than half the window, so a large share
    # of trips straddle the split; a quarter surviving is already a lot.
    assert len(left) > 0.25 * len(whole)
    whole_keys = {key for key, _ in whole.items()}
    covered = sum(1 for key, _ in left.items() if key in whole_keys)
    assert covered / len(left) > 0.95


def test_persisted_inventory_supports_apps(tmp_path, small_inventory):
    """Round-trip the inventory through the SSTable and run a query app on
    the re-loaded copy."""
    path = tmp_path / "inventory.sst"
    write_inventory(small_inventory, path)
    from repro.inventory import Inventory

    reloaded = Inventory(resolution=small_inventory.resolution)
    with open_inventory(path) as reader:
        for key, summary in reader.scan():
            reloaded.put(key, summary)
    assert len(reloaded) == len(small_inventory)

    detector = AnomalyDetector(reloaded)
    from repro.hexgrid import cell_to_latlng

    key, summary = max(
        ((k, s) for k, s in reloaded.items()
         if k.grouping_set is GroupingSet.CELL),
        key=lambda pair: pair[1].records,
    )
    lat, lon = cell_to_latlng(key.cell)
    assert detector.score(
        lat, lon, sog=summary.speed.mean + 70.0, cog=0.0
    ).is_anomalous


def test_suez_scenario_detected_against_normalcy():
    """Build normalcy from undisrupted voyages, then verify a Cape-diverted
    voyage is flagged off-lane while a normal one is not."""
    from repro.world.routing import SeaRouter

    config = WorldConfig(seed=321, n_vessels=10, days=14.0,
                         report_interval_s=900.0, clean=True)
    data = generate_dataset(config)
    result = build_inventory(
        data.positions, data.fleet, data.ports, PipelineConfig(resolution=5)
    )
    inventory = result.inventory
    od_keys = [
        key for key, _ in inventory.items()
        if key.grouping_set is GroupingSet.CELL_OD_TYPE
    ]
    if not od_keys:
        pytest.skip("fixture produced no route-level groups")

    # Pick a route with Suez transit history if one exists, else any route.
    router = SeaRouter()
    key = next(
        (k for k in od_keys if router.uses_canal(k.origin, k.destination, "suez")),
        od_keys[0],
    )
    detector = AnomalyDetector(inventory)

    normal_track = [
        (lat, lon, 12.0, 90.0)
        for lat, lon in router.route_positions(key.origin, key.destination)
    ]
    normal_fraction = detector.score_track(
        normal_track, vessel_type=key.vessel_type,
        origin=key.origin, destination=key.destination,
    )

    blocked = SeaRouter(blocked_canals={"suez", "panama"})
    try:
        diverted_positions = blocked.route_positions(key.origin, key.destination)
    except Exception:
        pytest.skip("route unroutable without canals")
    diverted_track = [
        (lat, lon, 12.0, 90.0) for lat, lon in diverted_positions
    ]
    diverted_fraction = detector.score_track(
        diverted_track, vessel_type=key.vessel_type,
        origin=key.origin, destination=key.destination,
    )
    if normal_track == diverted_track:
        pytest.skip("route unaffected by canal blocking")
    # The diversion strays off the inventoried lane far more often.
    assert diverted_fraction > normal_fraction


def test_csv_archive_roundtrip_to_inventory(tmp_path, small_world):
    """Write the archive as CSV (the open-data interchange), read it back,
    and verify the pipeline builds the identical inventory."""
    from repro.ais import read_csv, write_csv

    path = tmp_path / "archive.csv"
    write_csv(path, small_world.positions)
    reloaded = list(read_csv(path))
    assert len(reloaded) == len(small_world.positions)

    config = PipelineConfig()
    from_memory = build_inventory(
        small_world.positions, small_world.fleet, small_world.ports, config
    )
    from_csv = build_inventory(
        reloaded, small_world.fleet, small_world.ports, config
    )
    # CSV rounds positions to 1e-6 deg and timestamps to seconds: cell
    # assignments are unchanged at resolution 6.
    assert from_csv.funnel["inventory_cells"] == pytest.approx(
        from_memory.funnel["inventory_cells"], rel=0.01
    )
