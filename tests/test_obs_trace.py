"""Tests for the span tracer core (repro.obs.trace) and its sinks.

Covers the contracts the instrumentation relies on: the disabled path is
a shared no-op object, enabled spans nest via contextvars and emit
complete records, errors close spans with status ``error`` without
swallowing the exception, and each sink shape (JSONL, ring, profile)
round-trips records faithfully.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import trace as obs
from repro.obs.sinks import (
    JsonlSink,
    ProfileSink,
    RingBufferSink,
    profile_records,
    read_trace,
    render_profile,
)


class ListSink:
    """Captures records in order; the simplest possible sink."""

    def __init__(self):
        self.records = []

    def record(self, record):
        self.records.append(record)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with the global tracer disabled."""
    obs.disable()
    yield
    obs.disable()


# -- disabled path ---------------------------------------------------------------


def test_disabled_by_default():
    assert not obs.enabled()
    assert obs.span("anything") is obs.NOOP_SPAN


def test_noop_span_is_shared_and_inert():
    first = obs.span("a", x=1)
    second = obs.span("b")
    assert first is second is obs.NOOP_SPAN
    with first as sp:
        sp.set("k", "v")   # must not raise, must not record
        sp.add("c", 3)
    assert obs.current_context() is None


def test_disable_drops_sinks():
    sink = ListSink()
    obs.configure(sink)
    assert obs.enabled()
    obs.disable()
    assert not obs.enabled()
    with obs.span("after"):
        pass
    assert sink.records == []


# -- enabled spans ---------------------------------------------------------------


def test_span_record_fields():
    sink = ListSink()
    obs.configure(sink)
    with obs.span("work", rows=10) as sp:
        sp.set("extra", "yes")
        sp.add("hits", 2)
        sp.add("hits", 3)
    (record,) = sink.records
    assert record["name"] == "work"
    assert record["status"] == "ok"
    assert record["parent"] is None
    assert record["wall_s"] >= 0.0
    assert record["cpu_s"] >= 0.0
    assert record["attrs"] == {"rows": 10, "extra": "yes"}
    assert record["counters"] == {"hits": 5}
    assert "error" not in record


def test_nesting_links_parent_and_trace():
    sink = ListSink()
    obs.configure(sink)
    with obs.span("outer"):
        outer_ctx = obs.current_context()
        with obs.span("inner"):
            inner_ctx = obs.current_context()
            assert inner_ctx.trace_id == outer_ctx.trace_id
            assert inner_ctx.span_id != outer_ctx.span_id
    assert obs.current_context() is None
    inner, outer = sink.records  # children close first
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["trace"] == outer["trace"]
    assert inner["parent"] == outer["span"]
    assert outer["parent"] is None


def test_siblings_share_parent_with_distinct_ids():
    sink = ListSink()
    obs.configure(sink)
    with obs.span("parent"):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
    a, b, parent = sink.records
    assert a["parent"] == b["parent"] == parent["span"]
    assert a["span"] != b["span"]


def test_separate_roots_get_separate_traces():
    sink = ListSink()
    obs.configure(sink)
    with obs.span("first"):
        pass
    with obs.span("second"):
        pass
    first, second = sink.records
    assert first["trace"] != second["trace"]


def test_error_status_and_propagation():
    sink = ListSink()
    obs.configure(sink)
    with pytest.raises(KeyError):
        with obs.span("boom"):
            raise KeyError("missing")
    (record,) = sink.records
    assert record["status"] == "error"
    assert record["error"].startswith("KeyError")
    assert obs.current_context() is None  # context restored despite the raise


def test_span_ids_are_unique():
    sink = ListSink()
    obs.configure(sink)
    for _ in range(200):
        with obs.span("s"):
            pass
    ids = [record["span"] for record in sink.records]
    assert len(set(ids)) == len(ids)


def test_multiple_sinks_all_receive():
    first, second = ListSink(), ListSink()
    obs.configure(first)
    obs.add_sink(second)
    with obs.span("both"):
        pass
    assert len(first.records) == len(second.records) == 1
    assert obs.find_sink(ListSink) is first


# -- traced decorator ------------------------------------------------------------


def test_traced_decorator_names_and_passthrough():
    sink = ListSink()
    obs.configure(sink)

    @obs.traced("custom.name", kind="test")
    def add(a, b):
        return a + b

    @obs.traced
    def bare():
        return "ok"

    assert add(2, 3) == 5
    assert bare() == "ok"
    custom, default = sink.records
    assert custom["name"] == "custom.name"
    assert custom["attrs"] == {"kind": "test"}
    assert default["name"].endswith("bare")


def test_traced_is_noop_when_disabled():
    @obs.traced("never.recorded")
    def fn():
        return 42

    assert fn() == 42  # no sink, no failure


# -- collect / replay (the fork transport) ---------------------------------------


def test_collect_and_replay_round_trip():
    sink = ListSink()
    obs.configure(sink)
    buffer = obs.begin_collect()
    with obs.span("in.child"):
        pass
    captured = obs.end_collect(buffer)
    assert [r["name"] for r in captured] == ["in.child"]
    assert sink.records == []  # redirected away from the original sink
    obs.configure(sink)
    obs.replay(captured)
    assert [r["name"] for r in sink.records] == ["in.child"]


def test_collect_disabled_is_none_and_replay_is_noop():
    assert obs.begin_collect() is None
    assert obs.end_collect(None) == []
    obs.replay([{"name": "ghost"}])  # disabled: silently dropped


# -- sinks -----------------------------------------------------------------------


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "spans.jsonl"
    sink = JsonlSink(path)
    obs.configure(sink)
    with obs.span("outer", n=1):
        with obs.span("inner"):
            pass
    obs.disable()
    sink.close()
    records = list(read_trace(path))
    assert [r["name"] for r in records] == ["inner", "outer"]
    # every line is standalone JSON
    for line in path.read_text().splitlines():
        json.loads(line)


def test_ring_buffer_evicts_oldest():
    ring = RingBufferSink(capacity=3)
    for i in range(5):
        ring.record({"name": f"s{i}"})
    assert [r["name"] for r in ring.spans()] == ["s2", "s3", "s4"]
    assert [r["name"] for r in ring.spans(2)] == ["s3", "s4"]
    assert len(ring) == 3
    ring.clear()
    assert ring.spans() == []


def test_ring_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_profile_sink_aggregates_by_name():
    sink = ProfileSink()
    for wall in (0.010, 0.020, 0.030):
        sink.record({"name": "fast", "wall_s": wall, "cpu_s": wall, "status": "ok"})
    sink.record({"name": "slow", "wall_s": 1.0, "cpu_s": 0.5, "status": "error"})
    rows = sink.rows()
    assert [row.name for row in rows] == ["slow", "fast"]  # by total time
    slow, fast = rows
    assert fast.count == 3 and fast.errors == 0
    assert fast.total_s == pytest.approx(0.060)
    assert slow.count == 1 and slow.errors == 1
    assert 10.0 <= fast.p50_ms <= 30.0


def test_profile_records_and_render(tmp_path):
    records = [
        {"name": "stage.a", "wall_s": 0.2, "cpu_s": 0.2, "status": "ok"},
        {"name": "stage.b", "wall_s": 0.1, "cpu_s": 0.1, "status": "ok"},
    ]
    rows = profile_records(records)
    lines = render_profile(rows)
    assert "span" in lines[0] and "p99" in lines[0]
    assert lines[1].startswith("stage.a")
    limited = render_profile(rows, limit=1)
    assert len(limited) == 3  # header + one row + "more" note
    assert "1 more span names" in limited[-1]
