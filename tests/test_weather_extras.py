"""Tests for the synthetic wind field and fused extra features (§5)."""

import pytest

from repro import PipelineConfig, build_inventory
from repro.inventory.keys import GroupingSet
from repro.inventory.summary import CellSummary, SummaryConfig
from repro.pipeline.extras import ExtraFeature, wind_features
from repro.world.weather import WindField


class TestWindField:
    def test_determinism(self):
        field = WindField(seed=3)
        a = field.wind_at(40.0, -30.0, 1_000_000.0)
        b = WindField(seed=3).wind_at(40.0, -30.0, 1_000_000.0)
        assert a == b

    def test_seeds_differ(self):
        a = WindField(seed=1).wind_at(40.0, -30.0)
        b = WindField(seed=2).wind_at(40.0, -30.0)
        assert a != b

    def test_speed_range_everywhere(self):
        field = WindField(seed=5)
        for lat in range(-88, 89, 11):
            for lon in range(-180, 180, 37):
                sample = field.wind_at(float(lat), float(lon), 3600.0)
                assert 0.0 < sample.speed_ms < 30.0
                assert 0.0 <= sample.direction_deg < 360.0

    def test_storm_tracks_windier_than_doldrums(self):
        import statistics

        field = WindField(seed=7)
        forties = [
            field.wind_at(-45.0, lon, 0.0).speed_ms for lon in range(-180, 180, 10)
        ]
        doldrums = [
            field.wind_at(2.0, lon, 0.0).speed_ms for lon in range(-180, 180, 10)
        ]
        assert statistics.fmean(forties) > 1.5 * statistics.fmean(doldrums)

    def test_trade_winds_blow_from_the_east(self):
        field = WindField(seed=9)
        directions = [
            field.wind_at(15.0, lon, 0.0).direction_deg
            for lon in range(-180, 180, 15)
        ]
        from repro.geo import angular_difference_deg

        easterly = sum(
            1 for d in directions if angular_difference_deg(d, 100.0) < 60.0
        )
        assert easterly / len(directions) > 0.7

    def test_pattern_drifts_with_time(self):
        field = WindField(seed=11)
        now = field.wind_at(40.0, 0.0, 0.0)
        later = field.wind_at(40.0, 0.0, 10 * 86_400.0)
        assert now != later

    def test_speed_kn_conversion(self):
        sample = WindField().wind_at(45.0, 0.0)
        assert sample.speed_kn == pytest.approx(sample.speed_ms / 0.514444)


class TestExtraFeatures:
    def test_name_validation(self):
        with pytest.raises(ValueError):
            ExtraFeature("", lambda lat, lon, ts: 1.0)
        with pytest.raises(ValueError):
            ExtraFeature("a/b", lambda lat, lon, ts: 1.0)

    def test_wind_features_sample(self):
        speed, northerly = wind_features(seed=1)
        value = speed.fn(40.0, -30.0, 0.0)
        assert 0.0 < value < 30.0
        component = northerly.fn(40.0, -30.0, 0.0)
        assert abs(component) <= value + 1e-9

    def test_summary_config_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            SummaryConfig(extra_names=("wind", "wind"))

    def test_summary_update_merge_and_roundtrip(self):
        config = SummaryConfig(extra_names=("wind", "waves"))
        left = CellSummary(config)
        right = CellSummary(config)
        left.update(mmsi=1, sog=10.0, cog=0.0, heading=0, extras=(5.0, 1.0))
        left.update(mmsi=1, sog=10.0, cog=0.0, heading=0, extras=(7.0, None))
        right.update(mmsi=2, sog=10.0, cog=0.0, heading=0, extras=(9.0, 3.0))
        left.merge(right)
        assert left.extras["wind"].count == 3
        assert left.extras["wind"].mean == pytest.approx(7.0)
        assert left.extras["waves"].count == 2
        restored = CellSummary.from_dict(left.to_dict())
        assert restored.extras["wind"].mean == pytest.approx(7.0)
        assert restored.config.extra_names == ("wind", "waves")

    def test_legacy_payload_without_extras_loads(self):
        plain = CellSummary()
        plain.update(mmsi=1, sog=10.0, cog=0.0, heading=0)
        payload = plain.to_dict()
        payload["config"].pop("extra_names")
        payload.pop("extras")
        restored = CellSummary.from_dict(payload)
        assert restored.records == 1
        assert restored.extras == {}


class TestPipelineFusion:
    def test_wind_statistics_reach_the_inventory(self, small_world):
        config = PipelineConfig(
            resolution=5, extra_features=wind_features(seed=4)
        )
        result = build_inventory(
            small_world.positions, small_world.fleet, small_world.ports,
            config,
        )
        inventory = result.inventory
        assert inventory.config.extra_names == (
            "wind_speed_ms", "wind_northerly_ms",
        )
        populated = 0
        for key, summary in inventory.items():
            if key.grouping_set is not GroupingSet.CELL:
                continue
            wind = summary.extras["wind_speed_ms"]
            assert wind.count == summary.records
            if wind.count:
                assert 0.0 < wind.mean < 30.0
                populated += 1
        assert populated > 0

    def test_windier_waters_show_higher_means(self, small_world):
        """Mid-latitude cells must report stronger wind than tropics —
        the fused statistic reflects the underlying field."""
        import statistics

        from repro.hexgrid import cell_to_latlng

        config = PipelineConfig(
            resolution=5, extra_features=wind_features(seed=4)
        )
        inventory = build_inventory(
            small_world.positions, small_world.fleet, small_world.ports,
            config,
        ).inventory
        tropics = []
        midlat = []
        for key, summary in inventory.items():
            if key.grouping_set is not GroupingSet.CELL:
                continue
            wind = summary.extras["wind_speed_ms"]
            if not wind.count:
                continue
            lat = cell_to_latlng(key.cell)[0]
            if abs(lat) < 25.0:
                tropics.append(wind.mean)
            elif 35.0 < abs(lat) < 60.0:
                midlat.append(wind.mean)
        if not tropics or not midlat:
            pytest.skip("fixture traffic misses one latitude band")
        assert statistics.fmean(midlat) > statistics.fmean(tropics)
