"""Tests for the COLREGS starboard lane offset in the simulator.

Opposing flows of the same route must separate laterally (rule 10 traffic
separation), which is what makes per-cell course statistics coherent —
the property Figures 1 and 4 rely on.
"""

import random

import pytest

from repro.geo.distance import cross_track_distance_m
from repro.world import SeaRouter, TrackSimulator
from repro.world.voyages import VoyagePlan


@pytest.fixture(scope="module")
def router():
    return SeaRouter()


def _plan(router, origin, destination):
    return VoyagePlan(
        mmsi=235000001, origin=origin, destination=destination,
        depart_ts=0.0, speed_kn=14.0,
        route_nodes=tuple(router.route_nodes(origin, destination)),
    )


def _mid_ocean_offsets(router, track, node_a, node_b):
    """Signed cross-track offsets of track points from the leg A→B.

    Points are windowed to the leg's interior by longitude so that other
    (nearly collinear) legs of the same route don't leak in.
    """
    lat_a, lon_a = router.node_position(node_a)
    lat_b, lon_b = router.node_position(node_b)
    lon_lo, lon_hi = sorted((lon_a, lon_b))
    margin = 0.15 * (lon_hi - lon_lo)
    offsets = []
    for report in track:
        if not lon_lo + margin < report.lon < lon_hi - margin:
            continue
        offsets.append(
            cross_track_distance_m(
                report.lat, report.lon, lat_a, lon_a, lat_b, lon_b
            )
        )
    return offsets


def test_opposing_directions_take_opposite_sides(router):
    simulator = TrackSimulator(router, report_interval_s=600.0)
    rng = random.Random(1)
    # A mid-length route with a long open-water leg.
    eastbound = simulator.voyage_track(
        _plan(router, "ESALG", "GRPIR"), end_ts=1e12, rng=rng
    )
    westbound = simulator.voyage_track(
        _plan(router, "GRPIR", "ESALG"), end_ts=1e12, rng=rng
    )
    # Offsets relative to the same directed leg GIB→MEDC.
    east_offsets = _mid_ocean_offsets(router, eastbound, "GIB", "MEDC")
    west_offsets = _mid_ocean_offsets(router, westbound, "GIB", "MEDC")
    assert east_offsets and west_offsets
    import statistics

    east_mean = statistics.fmean(east_offsets)
    west_mean = statistics.fmean(west_offsets)
    # Starboard-of-own-course puts the two flows on opposite signed sides
    # of the shared centerline.
    assert east_mean * west_mean < 0
    assert abs(east_mean - west_mean) > 2_000


def test_offset_tapers_at_ports(router):
    from repro.geo import haversine_m
    from repro.world.ports import port_by_id

    simulator = TrackSimulator(router, report_interval_s=600.0)
    track = simulator.voyage_track(
        _plan(router, "ESALG", "GRPIR"), end_ts=1e12, rng=random.Random(2)
    )
    origin = port_by_id("ESALG")
    destination = port_by_id("GRPIR")
    # First and last reports are inside the geofences despite the offset.
    assert haversine_m(track[0].lat, track[0].lon,
                       origin.lat, origin.lon) <= origin.radius_m
    assert haversine_m(track[-1].lat, track[-1].lon,
                       destination.lat, destination.lon) <= destination.radius_m


def test_per_cell_course_coherence_emerges(router):
    """Both directions sailed repeatedly: per-cell circular course spread
    stays small because directions occupy different cells.

    Resolution 7 (4.3 km cell spacing) fully separates the ±3.5 km
    starboard offsets; at res 6 the separation is marginal (≈7 km of lane
    separation vs 10.4 km cells) and coherence only emerges with the wider
    per-vessel spread of a full fleet (verified in the Figure 1 benchmark).
    """
    from repro.hexgrid import latlng_to_cell
    from repro.sketches import CircularMoments

    simulator = TrackSimulator(router, report_interval_s=600.0)
    rng = random.Random(3)
    cells: dict[int, CircularMoments] = {}
    for _ in range(3):
        for origin, destination in [("ESALG", "GRPIR"), ("GRPIR", "ESALG")]:
            for report in simulator.voyage_track(
                _plan(router, origin, destination), end_ts=1e12, rng=rng
            ):
                cell = latlng_to_cell(report.lat, report.lon, 7)
                cells.setdefault(cell, CircularMoments()).update(report.cog)
    dense = [m for m in cells.values() if m.count >= 3]
    assert dense
    coherent = sum(1 for m in dense if (m.std_deg or 180.0) < 45.0)
    assert coherent / len(dense) > 0.8
