"""docs/METRICS.md must equal what the registry generates — exactly.

The reference is generated (``python -m repro.obs.registry``), so any
new counter/span registration, renamed metric or edited description
must be accompanied by a regenerated file; this test fails on drift in
either direction.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import registry

DOC = Path(__file__).resolve().parents[1] / "docs" / "METRICS.md"


def test_metrics_doc_matches_registry_exactly():
    generated = registry.generate_metrics_doc()
    committed = DOC.read_text(encoding="utf-8")
    assert generated == committed, (
        "docs/METRICS.md is out of date with the registry; regenerate it:\n"
        "  PYTHONPATH=src python -m repro.obs.registry > docs/METRICS.md"
    )


def test_registry_is_nonempty_and_covers_the_tentpole_names():
    registry.import_instrumented()
    spans = registry.registered_spans()
    counters = registry.registered_counters()
    # the names the operator docs and the CLI lean on must stay registered
    for span in (
        "pipeline.clean", "pipeline.enrich", "pipeline.trips",
        "pipeline.project", "pipeline.aggregate", "pipeline.build",
        "engine.partition", "sstable.read_block", "inventory.get",
        "server.request", "server.handle",
    ):
        assert span in spans, f"span {span!r} vanished from the registry"
    for counter in (
        "block_cache.hits", "block_cache.misses", "engine.retries",
        "server.requests", "server.errors", "server.requests.slow",
    ):
        assert counter in counters, f"counter {counter!r} vanished"
    # every registered name has a real description
    assert all(desc.strip() for desc in spans.values())
    assert all(desc.strip() for desc in counters.values())


def test_duplicate_registration_with_conflicting_description_raises():
    import pytest

    name = registry.register_span("test.dup", "one meaning")
    assert name == "test.dup"
    # idempotent with the same description
    registry.register_span("test.dup", "one meaning")
    with pytest.raises(ValueError):
        registry.register_span("test.dup", "a different meaning")
    registry._SPANS.pop("test.dup", None)  # leave the registry clean
