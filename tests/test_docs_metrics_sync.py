"""docs/METRICS.md must equal what the registry generates — exactly.

The reference is generated (``python -m repro.obs.registry``), so any
new counter/span registration, renamed metric or edited description
must be accompanied by a regenerated file; this test fails on drift in
either direction.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.project import Project
from repro.analysis.rules.registry_sync import collect_declarations
from repro.analysis.runner import default_root
from repro.obs import registry

DOC = Path(__file__).resolve().parents[1] / "docs" / "METRICS.md"


def test_metrics_doc_matches_registry_exactly():
    generated = registry.generate_metrics_doc()
    committed = DOC.read_text(encoding="utf-8")
    assert generated == committed, (
        "docs/METRICS.md is out of date with the registry; regenerate it:\n"
        "  PYTHONPATH=src python -m repro.obs.registry > docs/METRICS.md"
    )


def test_runtime_registry_matches_static_declarations():
    """The runtime registry and the REP003 static collector agree.

    The analyzer's declaration collector (``repro.analysis``) discovers
    every ``register_span``/``register_counter`` call site without
    importing anything; the runtime registry is what actually imports.
    Requiring them to coincide replaces the hand-maintained name list
    this test used to carry — a new registration is covered the moment
    it is written, and a vanished one fails in both directions.
    """
    registry.import_instrumented()
    spans = registry.registered_spans()
    counters = registry.registered_counters()

    declarations = collect_declarations(Project.load(default_root()))
    static = {
        kind: {d.name for d in declarations if d.kind == kind and not d.dynamic}
        for kind in ("span", "counter")
    }
    heads = {
        kind: {d.name for d in declarations if d.kind == kind and d.dynamic}
        for kind in ("span", "counter")
    }
    assert static["span"] and static["counter"], (
        "the static collector found no registrations — the analyzer and "
        "the registry have drifted apart"
    )

    # statically declared ⇒ registered at import time
    assert static["span"] <= set(spans)
    assert static["counter"] <= set(counters)

    # registered at import time ⇒ statically visible (a literal, or an
    # instance of a declared dynamic f-string family)
    def covered(name: str, kind: str) -> bool:
        return name in static[kind] or any(
            name.startswith(head) for head in heads[kind]
        )

    rogue_spans = sorted(n for n in spans if not covered(n, "span"))
    rogue_counters = sorted(n for n in counters if not covered(n, "counter"))
    assert not rogue_spans, f"spans registered only dynamically: {rogue_spans}"
    assert not rogue_counters, (
        f"counters registered only dynamically: {rogue_counters}"
    )

    # every registered name has a real description
    assert all(desc.strip() for desc in spans.values())
    assert all(desc.strip() for desc in counters.values())


def test_duplicate_registration_with_conflicting_description_raises():
    import pytest

    name = registry.register_span("test.dup", "one meaning")
    assert name == "test.dup"
    # idempotent with the same description
    registry.register_span("test.dup", "one meaning")
    with pytest.raises(ValueError):
        registry.register_span("test.dup", "a different meaning")
    registry._SPANS.pop("test.dup", None)  # leave the registry clean
