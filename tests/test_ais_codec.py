"""Round-trip tests for the AIS message codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ais import decode_payload, decode_sentences, encode_message
from repro.ais.messages import (
    ClassBPositionReport,
    PositionReport,
    StaticDataReportA,
    StaticDataReportB,
    StaticVoyageData,
)
from repro.ais.nmea import parse_sentence


MMSI = st.integers(min_value=100_000_000, max_value=999_999_999)
LAT = st.floats(min_value=-89.9, max_value=89.9)
LON = st.floats(min_value=-179.9, max_value=179.9)
SOG = st.floats(min_value=0.0, max_value=102.2)
COG = st.floats(min_value=0.0, max_value=359.9)


@settings(max_examples=80)
@given(mmsi=MMSI, lat=LAT, lon=LON, sog=SOG, cog=COG,
       heading=st.integers(min_value=0, max_value=359),
       status=st.integers(min_value=0, max_value=15),
       msg_type=st.sampled_from([1, 2, 3]))
def test_position_roundtrip_within_protocol_precision(
    mmsi, lat, lon, sog, cog, heading, status, msg_type
):
    message = PositionReport(
        mmsi=mmsi, epoch_ts=1_650_000_000.0, lat=lat, lon=lon, sog=sog,
        cog=cog, heading=heading, status=status, msg_type=msg_type,
    )
    lines = encode_message(message)
    assert len(lines) == 1
    decoded = next(iter(decode_sentences(lines, epoch_ts=message.epoch_ts)))
    assert decoded.mmsi == mmsi
    assert decoded.msg_type == msg_type
    assert decoded.status == status
    assert decoded.heading == heading
    # Protocol precision: 1/10000 arc-minute, 0.1 kn, 0.1°.
    assert decoded.lat == pytest.approx(lat, abs=1e-5)
    assert decoded.lon == pytest.approx(lon, abs=1e-5)
    assert decoded.sog == pytest.approx(sog, abs=0.051)
    assert decoded.cog == pytest.approx(cog, abs=0.051)


def test_position_payload_is_168_bits():
    message = PositionReport(
        mmsi=235000001, epoch_ts=0.0, lat=50.0, lon=0.0, sog=10.0, cog=90.0
    )
    sentence = parse_sentence(encode_message(message)[0])
    assert len(sentence.payload) * 6 - sentence.fill_bits == 168


def test_position_report_rejects_bad_type():
    with pytest.raises(ValueError):
        PositionReport(mmsi=1, epoch_ts=0, lat=0, lon=0, sog=0, cog=0, msg_type=4)


def test_class_b_roundtrip():
    message = ClassBPositionReport(
        mmsi=338123456, epoch_ts=1_650_000_000.0, lat=21.3, lon=-157.8,
        sog=6.2, cog=245.0, heading=244,
    )
    decoded = next(iter(decode_sentences(encode_message(message), epoch_ts=1.0)))
    assert isinstance(decoded, ClassBPositionReport)
    assert decoded.mmsi == message.mmsi
    assert decoded.lat == pytest.approx(message.lat, abs=1e-5)
    assert decoded.sog == pytest.approx(6.2, abs=0.05)


def test_static_voyage_roundtrip_multifragment():
    message = StaticVoyageData(
        mmsi=235009812, imo=9321483, callsign="GBXX5", shipname="EVER GIVEN",
        ship_type=71, dim_bow=200, dim_stern=200, dim_port=29,
        dim_starboard=30, draught=14.5, destination="ROTTERDAM",
        eta_month=3, eta_day=23, eta_hour=5, eta_minute=30,
    )
    lines = encode_message(message, message_id="4")
    assert len(lines) == 2  # 424 bits never fit one sentence
    decoded = next(iter(decode_sentences(lines)))
    assert isinstance(decoded, StaticVoyageData)
    assert decoded.imo == 9321483
    assert decoded.shipname == "EVER GIVEN"
    assert decoded.destination == "ROTTERDAM"
    assert decoded.callsign == "GBXX5"
    assert decoded.ship_type == 71
    assert decoded.draught == pytest.approx(14.5, abs=0.05)
    assert (decoded.eta_month, decoded.eta_day) == (3, 23)
    assert decoded.length_m == 400
    assert decoded.beam_m == 59


def test_static_data_report_a_roundtrip():
    message = StaticDataReportA(mmsi=367000001, shipname="LADY FORTUNE")
    decoded = next(iter(decode_sentences(encode_message(message))))
    assert isinstance(decoded, StaticDataReportA)
    assert decoded.shipname == "LADY FORTUNE"
    assert decoded.part_number == 0


def test_static_data_report_b_roundtrip():
    message = StaticDataReportB(
        mmsi=367000002, ship_type=30, vendor_id="SIMRAD", callsign="WX9999",
        dim_bow=12, dim_stern=6, dim_port=3, dim_starboard=3,
    )
    decoded = next(iter(decode_sentences(encode_message(message))))
    assert isinstance(decoded, StaticDataReportB)
    assert decoded.ship_type == 30
    assert decoded.callsign == "WX9999"
    assert decoded.part_number == 1


def test_decode_payload_rejects_unknown_type():
    from repro.ais.sixbit import BitWriter, armor

    writer = BitWriter()
    writer.write_uint(9, 6)  # SAR aircraft report: unsupported
    writer.write_uint(0, 162)
    payload, fill = armor(writer.to_bits())
    with pytest.raises(ValueError):
        decode_payload(payload, fill)


def test_decode_sentences_skips_corrupt_lines():
    good = encode_message(
        PositionReport(mmsi=235000001, epoch_ts=0.0, lat=1.0, lon=1.0, sog=5.0, cog=5.0)
    )
    stream = ["garbage", good[0][:-1] + "Z", good[0], "!AIVDM,bad*00"]
    decoded = list(decode_sentences(stream))
    assert len(decoded) == 1


def test_decode_stream_of_mixed_messages():
    messages = [
        PositionReport(mmsi=235000001, epoch_ts=0.0, lat=1.0, lon=1.0, sog=5.0, cog=5.0),
        StaticVoyageData(mmsi=235000001, imo=9000005, callsign="AB1",
                         shipname="TEST", ship_type=70),
        PositionReport(mmsi=235000002, epoch_ts=0.0, lat=2.0, lon=2.0, sog=6.0, cog=6.0),
    ]
    stream = []
    for index, message in enumerate(messages):
        stream.extend(encode_message(message, message_id=str(index)))
    decoded = list(decode_sentences(stream))
    assert len(decoded) == 3
    assert isinstance(decoded[1], StaticVoyageData)
