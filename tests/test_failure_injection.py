"""Failure-injection tests: corrupted storage, hostile inputs.

A database artefact must fail loudly and precisely on damaged inputs —
silent misreads are worse than crashes.  These tests damage the on-disk
inventory and feed the codec random garbage, asserting the failures are
the *declared* exception types, never silent wrong answers or foreign
exceptions (IndexError, UnicodeDecodeError leaking from internals).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hexgrid import latlng_to_cell
from repro.inventory import (
    GroupKey,
    Inventory,
    SSTableError,
    SSTableReader,
    write_inventory,
)
from repro.inventory.codec import CodecError, decode
from repro.inventory.summary import CellSummary


def _table(tmp_path, cells=30):
    inventory = Inventory(resolution=6)
    for i in range(cells):
        summary = CellSummary()
        summary.update(mmsi=100_000_000 + i, sog=10.0, cog=90.0, heading=90)
        inventory.put(
            GroupKey(cell=latlng_to_cell(10.0 + i * 0.3, 100.0, 6)), summary
        )
    path = tmp_path / "inventory.sst"
    write_inventory(inventory, path)
    return path, inventory


class TestDamagedTables:
    def test_truncated_footer(self, tmp_path):
        path, _ = _table(tmp_path)
        payload = path.read_bytes()
        path.write_bytes(payload[:-10])
        with pytest.raises(ValueError):
            SSTableReader(path)

    def test_truncated_to_nothing(self, tmp_path):
        path, _ = _table(tmp_path)
        path.write_bytes(b"PO")
        with pytest.raises(ValueError):
            SSTableReader(path)

    def test_wrong_magic(self, tmp_path):
        path, _ = _table(tmp_path)
        payload = bytearray(path.read_bytes())
        payload[:8] = b"NOTMAGIC"
        path.write_bytes(bytes(payload))
        with pytest.raises(ValueError):
            SSTableReader(path)

    def test_corrupted_footer_magic(self, tmp_path):
        path, _ = _table(tmp_path)
        payload = bytearray(path.read_bytes())
        payload[-4:] = b"XXXX"
        path.write_bytes(bytes(payload))
        with pytest.raises(ValueError):
            SSTableReader(path)

    def test_corrupted_data_block_fails_loudly_on_read(self, tmp_path):
        path, inventory = _table(tmp_path)
        payload = bytearray(path.read_bytes())
        # Scribble over the first data block (after the 8-byte magic).
        for offset in range(40, 90):
            payload[offset] ^= 0xFF
        path.write_bytes(bytes(payload))
        reader = SSTableReader(path)  # index+footer intact
        keys = sorted(
            (key for key, _ in inventory.items()),
            key=lambda key: key.sort_key(),
        )
        with pytest.raises((CodecError, ValueError, KeyError)):
            # Reading through the damaged region must raise a declared
            # error, not return a wrong summary.
            for key in keys:
                reader.get(key)
        reader.close()


@pytest.fixture(scope="module")
def flip_table(tmp_path_factory):
    """A table, its pristine bytes, its keys and the baseline answers
    (both point lookups and a full scan)."""
    directory = tmp_path_factory.mktemp("byteflip")
    path, inventory = _table(directory, cells=8)
    keys = sorted(
        (key for key, _ in inventory.items()), key=lambda key: key.sort_key()
    )
    baseline = _flip_campaign(path, keys)
    return path, path.read_bytes(), keys, baseline


def _flip_campaign(path, keys):
    """Every lookup plus a full scan, reduced to comparable values."""
    with SSTableReader(path) as reader:
        point = [
            None if summary is None else summary.records
            for summary in (reader.get(key) for key in keys)
        ]
        full = [
            (key.sort_key(), summary.records) for key, summary in reader.scan()
        ]
    return point, full


class TestSingleByteFlips:
    """The integrity contract, stated as a property: flipping any single
    byte of a written table either raises the declared error types or
    leaves every answer byte-identical — never a changed answer."""

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_random_single_byte_flip_is_error_or_identical(
        self, flip_table, data
    ):
        path, original, keys, baseline = flip_table
        offset = data.draw(st.integers(0, len(original) - 1), label="offset")
        bit = data.draw(st.integers(0, 7), label="bit")
        mutated = bytearray(original)
        mutated[offset] ^= 1 << bit
        path.write_bytes(bytes(mutated))
        try:
            try:
                result = _flip_campaign(path, keys)
            except SSTableError:
                return  # the declared failure mode (CorruptionError ⊂)
            assert result == baseline, (
                f"flip at byte {offset} bit {bit} changed an answer silently"
            )
        finally:
            path.write_bytes(original)

    def test_exhaustive_byte_sweep_is_error_or_identical(self, flip_table):
        """Every byte position (one bit each): no offset hides a silent
        wrong answer, not just the sampled ones."""
        path, original, keys, baseline = flip_table
        try:
            for offset in range(len(original)):
                mutated = bytearray(original)
                mutated[offset] ^= 1 << (offset % 8)
                path.write_bytes(bytes(mutated))
                try:
                    result = _flip_campaign(path, keys)
                except SSTableError:
                    continue
                assert result == baseline, (
                    f"flip at byte {offset} changed an answer silently"
                )
        finally:
            path.write_bytes(original)


class TestHostileCodecInputs:
    @given(payload=st.binary(max_size=200))
    def test_random_bytes_never_raise_foreign_exceptions(self, payload):
        try:
            decode(payload)
        except CodecError:
            pass  # the declared failure mode

    def test_deep_nesting_is_handled(self):
        from repro.inventory.codec import encode

        value = [1]
        for _ in range(60):
            value = [value]
        assert decode(encode(value)) == value

    def test_huge_declared_length_is_truncation_not_memory_bomb(self):
        # 'l' tag + varint claiming 2^40 elements, then nothing.
        payload = b"l" + bytes([0x80, 0x80, 0x80, 0x80, 0x80, 0x01])
        with pytest.raises(CodecError):
            decode(payload)


class TestDirtyArchives:
    def test_pipeline_survives_pathological_archive(self):
        """An archive of nothing but garbage rows yields an empty, valid
        inventory instead of crashing."""
        from repro import PipelineConfig, build_inventory
        from repro.ais.messages import PositionReport
        from repro.world.fleet import build_fleet
        from repro.world.ports import PORTS

        rng = random.Random(0)
        garbage = [
            PositionReport(
                mmsi=rng.randrange(10**9),
                epoch_ts=rng.uniform(0, 10),
                lat=rng.choice([91.0, -95.0, 200.0]),
                lon=rng.choice([181.0, -999.0]),
                sog=rng.choice([102.3, -5.0]),
                cog=360.0,
                heading=511,
                status=rng.randrange(16),
            )
            for _ in range(500)
        ]
        result = build_inventory(
            garbage, build_fleet(5, seed=1), PORTS, PipelineConfig()
        )
        assert result.funnel["valid_fields"] == 0
        assert len(result.inventory) == 0

    def test_single_report_archive(self):
        from repro import PipelineConfig, build_inventory
        from repro.ais.messages import PositionReport
        from repro.world.fleet import build_fleet
        from repro.world.ports import PORTS

        fleet = build_fleet(5, seed=2)
        commercial = next(v for v in fleet if v.is_commercial)
        lone = PositionReport(
            mmsi=commercial.mmsi, epoch_ts=0.0, lat=30.0, lon=-40.0,
            sog=12.0, cog=90.0, heading=90, status=0,
        )
        result = build_inventory([lone], fleet, PORTS, PipelineConfig())
        # One mid-ocean report has no trip: excluded, empty inventory.
        assert result.funnel["commercial"] == 1
        assert result.funnel["with_trip_semantics"] == 0

    def test_empty_archive(self):
        from repro import PipelineConfig, build_inventory
        from repro.world.fleet import build_fleet
        from repro.world.ports import PORTS

        result = build_inventory(
            [], build_fleet(3, seed=3), PORTS, PipelineConfig()
        )
        assert result.funnel["raw"] == 0
        assert len(result.inventory) == 0
