"""The live write path's fault matrix: kill ingestion at every
filesystem operation and require the recovery contract.

Invariants, per cell of the matrix:

- **Acked-prefix durability** — every record whose ingest ack reported
  ``durable`` is served after reopening (asserted for every fault kind
  whose ack is honest; ``short`` writes and ``dropped`` fsyncs *lie* to
  the writer, so for those the assertion is consistency, not the ack).
- **Prefix visibility** — what survives is always a prefix of the
  appended record sequence: no record is half-visible, none is invented,
  none is double-counted (the crash-between-flush-publish-and-retire
  window must not replay retired-but-undeleted segments).
- **Never silent** — recovery either reproduces a valid prefix or
  raises a typed :class:`SSTableError`; ``verify_wal`` triages the same
  directory the same way.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.inventory import SSTableError, verify_table
from repro.inventory.keys import GroupingSet
from repro.inventory.live import LiveInventory, manifest_tables
from repro.inventory.memtable import IngestRecord, Memtable
from repro.inventory.wal import list_segments, verify_wal
from repro.testing import Fault, FaultInjector, FaultPlan, SimulatedCrash, record_ops

RESOLUTION = 6
#: Fault kinds whose ack can be trusted (the disk did what it said).
HONEST = frozenset({"torn", "enospc", "crash"})


def _record(i):
    on_trip = i % 3 != 2
    return IngestRecord(
        mmsi=200_000_000 + (i % 5),
        ts=1_700_000_000.0 + i * 60.0,
        lat=1.0 + (i % 7) * 0.5,
        lon=103.0 + (i % 4) * 0.5,
        sog=8.0 + (i % 6),
        cog=float((i * 53) % 360),
        vessel_type="cargo" if i % 2 else "tanker",
        origin="SGSIN" if on_trip else None,
        destination="NLRTM" if on_trip else None,
        trip_id=f"t{i % 3}" if on_trip else None,
    )


def _batches(sizes):
    out, i = [], 0
    for size in sizes:
        out.append([_record(j) for j in range(i, i + size)])
        i += size
    return out


def _campaign(directory, batches, state, flush_after=None, background=False):
    """Ingest ``batches`` (flushing after batch ``flush_after``),
    updating ``state`` as acks land so a crash mid-campaign leaves the
    bookkeeping of everything that completed.

    ``background=True`` runs flush/compaction jobs on the maintenance
    worker thread instead of inline; ``wait_maintenance`` after every
    batch keeps the global filesystem-op order deterministic (the worker
    only touches disk while the campaign thread is parked), so the same
    fault plans sweep both modes.  A fault that fires inside a
    background job resurfaces — the same exception instance — from the
    ``flush()``/``wait_maintenance()``/``ingest()`` call that observes
    it, which is exactly the never-silent contract under test.
    """
    with LiveInventory(
        directory,
        resolution=RESOLUTION,
        tier_fanout=0,
        background_maintenance=background,
    ) as inventory:
        for i, batch in enumerate(batches):
            state["attempted"] += len(batch)
            ack = inventory.ingest(batch)
            if ack.durable:
                state["acked"] += ack.accepted
            if i == flush_after:
                inventory.flush()
            if background:
                inventory.wait_maintenance()


def _served_records(inventory):
    """How many records the inventory serves, with the cross-grouping
    consistency check: every record feeds CELL and CELL_TYPE alike, so
    a divergence means a half-applied record."""
    by_set = {}
    for key, summary in inventory.items():
        by_set[key.grouping_set] = by_set.get(key.grouping_set, 0) + summary.records
    cell = by_set.get(GroupingSet.CELL, 0)
    assert cell == by_set.get(GroupingSet.CELL_TYPE, 0), (
        "record applied to one grouping set but not another"
    )
    return cell


def _assert_prefix_equivalence(inventory, served):
    """The served answers equal an in-memory fold of the first
    ``served`` records — the prefix-visibility contract, checked per
    group against the reference memtable."""
    reference = Memtable(RESOLUTION)
    for i in range(served):
        reference.apply(_record(i))
    got = {key: summary.records for key, summary in inventory.items()}
    want = {key: summary.records for key, summary in reference.groups.items()}
    assert got == want


def _verify_recovery(directory, kind, state):
    """Reopen (no injector) and enforce the matrix invariants."""
    try:
        # resolution is passed explicitly: a crash before the very first
        # manifest write leaves a directory with no remembered config.
        with LiveInventory(directory, resolution=RESOLUTION) as inventory:
            served = _served_records(inventory)
            _assert_prefix_equivalence(inventory, served)
    except SSTableError:
        # Typed refusal — acceptable only when the hardware lied (a
        # short append or dropped fsync leaves interior damage no crash
        # could produce); fsck must agree, in whichever file the hole
        # landed: the WAL or a committed table.
        assert kind not in HONEST, f"typed failure from honest fault {kind!r}"
        wal_bad = verify_wal(directory).hard_corruption
        try:
            table_bad = any(
                not verify_table(path).ok for path in manifest_tables(directory)
            )
        except SSTableError:
            table_bad = True  # the manifest itself took the hit
        assert wal_bad or table_bad, "typed error but fsck sees nothing wrong"
        return "typed-error"
    if kind in HONEST:
        assert served >= state["acked"], (
            f"acked record lost: served {served} < acked {state['acked']}"
        )
    assert served <= state["attempted"], (
        f"records invented or double-counted: {served} > {state['attempted']}"
    )
    assert verify_wal(directory).ok  # reopen repaired any torn tail
    return "recovered"


class TestIngestFaultMatrix:
    BATCH_SIZES = (4, 4, 4)
    FLUSH_AFTER = 1

    def _run(self, directory, plan=None, state=None, background=False):
        state = state if state is not None else {"attempted": 0, "acked": 0}
        _campaign(
            directory,
            _batches(self.BATCH_SIZES),
            state,
            flush_after=self.FLUSH_AFTER,
            background=background,
        )
        return state

    # The same sweep runs twice: jobs inline on the campaign thread, and
    # on the maintenance worker — a crash inside a background flush must
    # land in recovered-or-typed exactly like an inline one.
    @pytest.mark.parametrize("background", [False, True], ids=["inline", "background"])
    def test_matrix(self, tmp_path, background):
        probe = tmp_path / "probe"
        counts = record_ops(lambda: self._run(probe, background=background))
        assert counts["write"] > 10 and counts["fsync"] > 10
        assert counts["rename"] >= 2 and counts["unlink"] >= 1
        cases = [
            ("write", index, kind)
            for index in range(counts["write"])
            for kind in ("torn", "short", "crash", "enospc")
        ]
        cases += [
            ("fsync", index, kind)
            for index in range(counts["fsync"])
            for kind in ("crash", "dropped")
        ]
        cases += [("rename", index, "crash") for index in range(counts["rename"])]
        cases += [("unlink", index, "crash") for index in range(counts["unlink"])]

        outcomes = {"recovered": 0, "typed-error": 0}
        for op, index, kind in cases:
            directory = tmp_path / f"{op}{index}-{kind}"
            state = {"attempted": 0, "acked": 0}
            plan = FaultPlan.single(op, index, kind, seed=index)
            with FaultInjector(plan) as injector:
                try:
                    self._run(directory, state=state, background=background)
                except SSTableError:
                    # The write path read its own flush back and caught
                    # the damage in-process — only lying hardware can
                    # produce a hole a crash-free build then trips on.
                    assert kind not in HONEST, (
                        f"in-process corruption from honest fault {kind!r}"
                    )
                except (SimulatedCrash, OSError):
                    pass
            assert injector.triggered, f"fault {op}#{index} never fired"
            outcomes[_verify_recovery(directory, kind, state)] += 1
        # The matrix exercised both legal outcomes and nothing else.
        assert outcomes["recovered"] > len(cases) // 2
        assert sum(outcomes.values()) == len(cases)

    @pytest.mark.parametrize("background", [False, True], ids=["inline", "background"])
    def test_completed_campaign_is_fully_served(self, tmp_path, background):
        state = self._run(tmp_path / "clean", background=background)
        assert state["acked"] == state["attempted"] == sum(self.BATCH_SIZES)
        with LiveInventory(tmp_path / "clean") as inventory:
            served = _served_records(inventory)
            assert served == state["acked"]
            _assert_prefix_equivalence(inventory, served)


class TestTargetedWindows:
    """The three scenarios the fault kinds were added for."""

    def test_short_append_is_caught_never_silent(self, tmp_path):
        """A short WAL append with appends after it leaves interior
        damage; recovery must raise typed (or, if the hole happened to
        land at the tail, truncate) — never serve a silently wrong set."""
        outcomes = set()
        for index in range(1, 14):
            directory = tmp_path / f"short{index}"
            state = {"attempted": 0, "acked": 0}
            plan = FaultPlan.single("write", index, "short", seed=index)
            with FaultInjector(plan) as injector:
                try:
                    _campaign(directory, _batches((6, 6)), state)
                except (SimulatedCrash, OSError, SSTableError):
                    pass
            if not injector.triggered:
                continue
            outcomes.add(_verify_recovery(directory, "short", state))
        # Across the sweep both a typed refusal (interior hole) and a
        # clean recovery (hole at the tail) must appear.
        assert "typed-error" in outcomes

    def test_fsync_dropped_then_crash_stays_consistent(self, tmp_path):
        """The disk drops an fsync, the process dies later: the ack for
        the dropped batch is betrayed by the hardware, but recovery must
        still produce a consistent prefix or a typed error."""
        directory = tmp_path / "lying"
        state = {"attempted": 0, "acked": 0}
        plan = FaultPlan(
            faults=(Fault("fsync", 3, "dropped"), Fault("write", 9, "crash")),
            seed=5,
        )
        with FaultInjector(plan) as injector:
            with pytest.raises(SimulatedCrash):
                _campaign(directory, _batches((4, 4, 4)), state)
        assert len(injector.triggered) == 2
        _verify_recovery(directory, "dropped", state)

    def test_crash_between_flush_publish_and_retire(self, tmp_path):
        """The manifest commits the flushed table, then the process dies
        before the sealed WAL segments are unlinked.  Reopening must
        serve every record exactly once — the stale segments are below
        the manifest's WAL floor and must not replay."""
        directory = tmp_path / "window"
        state = {"attempted": 0, "acked": 0}
        plan = FaultPlan.single("unlink", 0, "crash")
        with FaultInjector(plan) as injector:
            with pytest.raises(SimulatedCrash):
                _campaign(directory, _batches((5, 5)), state, flush_after=0)
        assert injector.crashed
        # The window is real: the table is committed AND the sealed
        # segment is still on disk.
        assert list(Path(directory).glob("tab-*.sst"))
        stale = [seq for seq, _ in list_segments(directory)]
        assert len(stale) >= 2
        with LiveInventory(directory) as inventory:
            served = _served_records(inventory)
            assert served == state["acked"] == 5  # once each, not twice
            _assert_prefix_equivalence(inventory, served)
        # Recovery finished the interrupted retirement: the sealed
        # segment below the manifest's WAL floor is gone (a fresh active
        # segment may have been opened, so compare membership, not count).
        remaining = [seq for seq, _ in list_segments(directory)]
        assert stale[0] not in remaining


class TestCrashAnywhereProperty:
    """Hypothesis drives the campaign shape *and* the crash point."""

    @settings(max_examples=25, deadline=None)
    @given(
        fault=st.sampled_from(
            [
                ("write", "torn"),
                ("write", "crash"),
                ("fsync", "crash"),
                ("rename", "crash"),
                ("unlink", "crash"),
            ]
        ),
        index=st.integers(min_value=0, max_value=50),
        seed=st.integers(min_value=0, max_value=999),
        sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4),
        flush_after=st.integers(min_value=0, max_value=3),
        background=st.booleans(),
    )
    def test_acked_prefix_survives_any_crash(
        self, fault, index, seed, sizes, flush_after, background
    ):
        op, kind = fault
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "live"
            state = {"attempted": 0, "acked": 0}
            plan = FaultPlan.single(op, index, kind, seed=seed)
            with FaultInjector(plan) as injector:
                try:
                    _campaign(
                        directory,
                        _batches(sizes),
                        state,
                        flush_after=min(flush_after, len(sizes) - 1),
                        background=background,
                    )
                except (SimulatedCrash, OSError):
                    pass
            if not injector.triggered:
                # Index beyond the campaign's op count: it completed.
                assert state["acked"] == state["attempted"]
            _verify_recovery(directory, kind, state)
