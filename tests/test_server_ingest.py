"""The server's write path: ``ingest`` requests against a ``--live``
backend.

The contract mirrors the read side's: remote equals local (an ingested
batch is served by ``summary_at`` exactly as an in-process
:meth:`LiveInventory.ingest` would), errors are typed (read-only
backends and malformed records answer ``bad_request`` naming the
problem, oversized batches answer the fan-out cap), and the connection
survives its own rejected requests.
"""

from __future__ import annotations

import pytest

from repro.hexgrid import latlng_to_cell
from repro.inventory import GroupKey, Inventory
from repro.inventory.live import LiveInventory
from repro.inventory.summary import CellSummary
from repro.server import (
    InventoryClient,
    InventoryService,
    ServerError,
    ServerThread,
)
from repro.server import protocol

RESOLUTION = 6
LAT, LON = 1.25, 103.8  # every test record lands in this one cell


def _wire(i: int) -> dict:
    record = {
        "mmsi": 563_000_000 + (i % 4),
        "ts": 1_700_000_000.0 + i * 30.0,
        "lat": LAT,
        "lon": LON,
        "sog": 9.0 + (i % 5),
        "cog": float((i * 37) % 360),
        "vessel_type": "cargo" if i % 2 else "tanker",
    }
    if i % 3 != 2:
        record.update(origin="SGSIN", destination="NLRTM", trip_id=f"t{i % 3}")
    return record


@pytest.fixture()
def live_server(tmp_path):
    with LiveInventory(tmp_path / "live", resolution=RESOLUTION) as backend:
        service = InventoryService(backend, max_multi_items=16)
        with ServerThread(service) as handle:
            yield handle.address, backend


@pytest.fixture()
def client(live_server):
    address, _ = live_server
    with InventoryClient(*address) as connection:
        yield connection


class TestIngestOverTheWire:
    def test_ack_shape(self, client):
        ack = client.ingest([_wire(i) for i in range(3)])
        assert ack == {"accepted": 3, "durable": True, "flushed": False}

    def test_empty_batch_is_rejected_typed(self, client):
        # The fan-out rule of the multi requests applies: an empty list
        # is a malformed request, not a silent no-op.
        with pytest.raises(ServerError) as excinfo:
            client.ingest([])
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        assert client.ping() is True

    def test_ingested_records_are_served(self, live_server, client):
        _, backend = live_server
        client.ingest([_wire(i) for i in range(8)])
        remote = client.summary_at(LAT, LON)
        local = backend.summary_at(LAT, LON)
        assert remote is not None and local is not None
        assert remote.to_dict() == local.to_dict()
        assert remote.records == 8

    def test_remote_equals_local_ingest(self, live_server, client, tmp_path):
        """The same batch through TCP and through the in-process API
        produces byte-identical cells."""
        batch = [_wire(i) for i in range(12)]
        client.ingest(batch)
        _, backend = live_server
        with LiveInventory(tmp_path / "ref", resolution=RESOLUTION) as reference:
            reference.ingest_records(batch)
            key = GroupKey(cell=latlng_to_cell(LAT, LON, RESOLUTION))
            assert backend.get(key).to_dict() == reference.get(key).to_dict()

    def test_bad_record_names_the_index(self, client):
        records = [_wire(0), {"mmsi": 1, "ts": 0.0}]
        with pytest.raises(ServerError) as excinfo:
            client.ingest(records)
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        assert "records[1]" in str(excinfo.value)
        # A rejected batch is atomic: nothing from it was applied, and
        # the connection is still usable.
        assert client.ping() is True
        assert client.summary_at(LAT, LON) is None

    def test_fanout_cap_applies(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.ingest([_wire(i) for i in range(17)])
        assert excinfo.value.code == protocol.ERR_FRAME_TOO_LARGE
        assert client.ping() is True

    def test_stats_reports_the_write_path(self, client):
        client.ingest([_wire(i) for i in range(5)])
        stats = client.stats()["inventory"]["ingest"]
        assert stats["records_ingested"] == 5
        assert stats["memtable_records"] == 5
        assert stats["tables"] == 0 and stats["flushes"] == 0
        assert stats["wal_segment"] >= 1

    def test_batched_fsync_acks_not_durable(self, tmp_path):
        with LiveInventory(
            tmp_path / "lazy", resolution=RESOLUTION, sync_every=1000
        ) as backend:
            with ServerThread(InventoryService(backend)) as handle:
                with InventoryClient(*handle.address) as connection:
                    ack = connection.ingest([_wire(0)])
                    assert ack["accepted"] == 1
                    assert ack["durable"] is False


class TestReadOnlyBackend:
    def test_ingest_into_readonly_backend_is_bad_request(self):
        inventory = Inventory(resolution=RESOLUTION)
        summary = CellSummary()
        summary.update(
            mmsi=100_000_000, sog=8.0, cog=45.0, heading=45,
            trip_id="t0", eto_s=60.0, ata_s=120.0,
            origin="CNSHA", destination="NLRTM", next_cell=None,
        )
        inventory.put(
            GroupKey(cell=latlng_to_cell(LAT, LON, RESOLUTION)), summary
        )
        with ServerThread(InventoryService(inventory)) as handle:
            with InventoryClient(*handle.address) as connection:
                with pytest.raises(ServerError) as excinfo:
                    connection.ingest([_wire(0)])
                assert excinfo.value.code == protocol.ERR_BAD_REQUEST
                assert "read-only" in str(excinfo.value)
                # Reads still work on the same connection.
                assert connection.summary_at(LAT, LON) is not None


class TestFlushVisibility:
    def test_server_triggered_flush_changes_no_answer(self, tmp_path):
        """Crossing the flush threshold mid-serving must not change any
        served summary: the snapshot swap is invisible to clients."""
        with LiveInventory(
            tmp_path / "flushy", resolution=RESOLUTION, flush_records=10
        ) as backend:
            with ServerThread(InventoryService(backend)) as handle:
                with InventoryClient(*handle.address) as connection:
                    before_flush = connection.ingest([_wire(i) for i in range(9)])
                    assert before_flush["flushed"] is False
                    pre = connection.summary_at(LAT, LON).to_dict()
                    tripped = connection.ingest([_wire(9)])
                    assert tripped["flushed"] is True
                    post = connection.summary_at(LAT, LON).to_dict()
                    # The table write happens on the maintenance thread;
                    # drain it so the stats assertions are stable.
                    backend.wait_maintenance()
                    stats = connection.stats()["inventory"]["ingest"]
        assert post["records"] == pre["records"] + 1
        assert stats["flushes"] == 1 and stats["tables"] == 1
        assert stats["memtable_records"] == 0
