"""Tests for the map rendering app."""

import pytest

from repro.apps import (
    COLORMAPS,
    RasterGrid,
    ascii_map,
    raster_from_inventory,
    write_pgm,
    write_ppm,
)
from repro.geo.polygon import BoundingBox


@pytest.fixture(scope="module")
def speed_raster(small_inventory):
    bbox = BoundingBox(-60.0, 70.0, -180.0, 180.0)
    return raster_from_inventory(
        small_inventory, lambda s: s.mean_speed_kn(), bbox, width=120, height=60
    )


def test_raster_dimensions(speed_raster):
    assert speed_raster.width == 120
    assert speed_raster.height == 60
    assert len(speed_raster.values) == 60
    assert all(len(row) == 120 for row in speed_raster.values)


def test_raster_has_lanes_but_mostly_empty_ocean(speed_raster):
    coverage = speed_raster.coverage()
    assert 0.0 < coverage < 0.3  # lanes are thin at cell resolution


def test_raster_value_range_is_plausible_speed(speed_raster):
    lo, hi = speed_raster.value_range()
    assert 0.0 <= lo <= hi <= 30.0


def test_vessel_type_filter_reduces_coverage(small_inventory, speed_raster):
    bbox = BoundingBox(-60.0, 70.0, -180.0, 180.0)
    cargo = raster_from_inventory(
        small_inventory, lambda s: s.mean_speed_kn(), bbox,
        width=120, height=60, vessel_type="cargo",
    )
    assert cargo.coverage() <= speed_raster.coverage()


def test_empty_raster_handles_no_values():
    raster = RasterGrid(
        bbox=BoundingBox(0.0, 1.0, 0.0, 1.0), width=2, height=2,
        values=[[None, None], [None, None]],
    )
    assert raster.value_range() is None
    assert raster.coverage() == 0.0


def test_write_ppm_all_colormaps(tmp_path, speed_raster):
    for name in COLORMAPS:
        path = write_ppm(speed_raster, tmp_path / f"{name}.ppm", colormap=name)
        payload = path.read_bytes()
        assert payload.startswith(b"P6\n120 60\n255\n")
        assert len(payload) == len(b"P6\n120 60\n255\n") + 120 * 60 * 3


def test_write_pgm(tmp_path, speed_raster):
    path = write_pgm(speed_raster, tmp_path / "gray.pgm")
    payload = path.read_bytes()
    assert payload.startswith(b"P5\n120 60\n255\n")
    assert len(payload) == len(b"P5\n120 60\n255\n") + 120 * 60


def test_ascii_map_preview(speed_raster):
    art = ascii_map(speed_raster, max_width=60)
    lines = art.splitlines()
    assert lines
    assert all(len(line) <= 61 for line in lines)
    # Some lane pixels must render as non-space.
    assert any(char != " " for line in lines for char in line)


def test_antimeridian_raster():
    from repro.inventory import Inventory

    raster = raster_from_inventory(
        Inventory(resolution=6), lambda s: 1.0,
        BoundingBox(-10.0, 10.0, 170.0, -170.0), width=10, height=10,
    )
    assert raster.coverage() == 0.0  # empty inventory, but no crash
